"""Interval abstract interpreter over the fused/re-packed deploy graph.

The engine proves, from weights and layer contracts alone (no input data),
a value interval for every tensor on the integer deploy path and the
worst-case accumulator range of every MAC site — vanilla ``Conv2d`` /
``Linear`` layers and the two activation-activation matmuls of the ViT
attention path (the same MAC sites :mod:`repro.core.profiling` counts).
Each accumulator row carries the minimum safe register width, and a
``datapath.accum-overflow`` ERROR fires when the proven range exceeds the
configured width (int32 by default).

The walk is architecture-aware, mirroring the deploy ``forward`` of each
module class; handlers dispatch on the MRO so custom subclasses inherit the
stock behaviour, and :meth:`IntervalEngine.register` lets toolkit users wire
handlers for their own modules — the same extension point the fuser registry
offers.  Both the fused Q-model (``T2C.fuse()`` output) and the re-packed
vanilla model are supported: fused layers read their ``wint`` buffer, the
re-packed ones their integer ``weight``.
"""
from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Type

import numpy as np

from repro import nn
from repro.core.lut import LUTGelu, LUTSoftmax
from repro.core.mulquant import MulQuant
from repro.core.qbase import IdentityQuantizer, _QBase
from repro.core.qlayers import QConv2d, QLinear
from repro.core.qmodels import (
    QBasicBlock,
    QBottleneck,
    QConvBNReLU,
    QLinearUnit,
    QMobileNetV1,
    QResNet,
)
from repro.core.qvgg import QVGG
from repro.core.qvit import QAttention, QLNUnit, QMLP, QViTBlock, QVisionTransformer
from repro.core.vanilla import GridRange, InputQuant
from repro.lint.findings import Finding, make_finding
from repro.lint.intervals import Interval, accum_bounds, min_signed_bits
from repro.nn.module import Module


@dataclass
class IntervalReport:
    """Per-layer accumulator rows + findings from one engine run."""

    rows: List[Dict] = field(default_factory=list)
    findings: List[Finding] = field(default_factory=list)
    output: Optional[Interval] = None

    def min_accum_bits(self) -> Dict[str, int]:
        """Layer path -> proven minimum safe accumulator width."""
        return {r["layer"]: r["min_accum_bits"] for r in self.rows}

    def overflows(self, accum_bits: int = 32) -> List[str]:
        return [r["layer"] for r in self.rows if r["min_accum_bits"] > accum_bits]


class IntervalEngine:
    """Walks a deploy-mode model propagating value intervals.

    Parameters
    ----------
    accum_bits:
        Accumulator register width the hardware provides; proven ranges
        beyond it raise ``datapath.accum-overflow`` findings.
    """

    _handlers: Dict[Type, Callable] = {}

    def __init__(self, accum_bits: int = 32):
        self.accum_bits = accum_bits
        self.report = IntervalReport()
        self.ctx: Dict = {}

    # --------------------------------------------------------- registry
    @classmethod
    def register(cls, *types: Type):
        """Decorator: wire an interval handler for one or more module types.

        The handler signature is ``fn(engine, name, module, x) -> Interval``.
        """
        def deco(fn: Callable) -> Callable:
            for t in types:
                cls._handlers[t] = fn
            return fn
        return deco

    def _lookup(self, mod: Module) -> Optional[Callable]:
        for klass in type(mod).__mro__:
            if klass in self._handlers:
                return self._handlers[klass]
        return None

    # ------------------------------------------------------------- walk
    def visit(self, name: str, mod: Module, x: Interval) -> Interval:
        handler = self._lookup(mod)
        if handler is not None:
            return handler(self, name, mod, x)
        if not list(mod.children()) and not list(mod.parameters()):
            return x  # stateless leaf (activation wrapper, dropout, ...)
        self.finding("lint.unhandled-module", name,
                     f"{type(mod).__name__} has no interval handler; "
                     "range assumed preserved")
        return x

    def run(self, model: Module, input_interval: Optional[Interval] = None,
            tokens: Optional[int] = None) -> IntervalReport:
        """Interpret ``model``; returns the accumulated report.

        ``input_interval`` bounds the raw model input; models that start with
        an input quantizer do not need it (the ADC grid bounds everything).
        ``tokens`` overrides the sequence length used for attention
        accumulator bounds (derived from ``pos_int`` on full ViT models).
        """
        self.report = IntervalReport()
        if tokens is not None:
            self.ctx["tokens"] = tokens
        x = input_interval if input_interval is not None else Interval.unbounded()
        self.report.output = self.visit("", model, x)
        return self.report

    # ---------------------------------------------------------- helpers
    def finding(self, rule: str, where: str, message: str) -> None:
        self.report.findings.append(make_finding(rule, where, message))

    def record_accum(self, name: str, kind: str, acc: Interval) -> None:
        """Record a MAC-site accumulator row and check the register width."""
        lo, hi = acc.bounds()
        # The register passes through 0 (reset state) between accumulations.
        bits = min_signed_bits(min(lo, 0.0), max(hi, 0.0))
        self.report.rows.append({
            "layer": name, "kind": kind,
            "acc_lo": lo, "acc_hi": hi, "min_accum_bits": bits,
        })
        if bits > self.accum_bits:
            self.finding(
                "datapath.accum-overflow", name,
                f"proven accumulator range [{lo:.0f}, {hi:.0f}] needs {bits} bits "
                f"(> {self.accum_bits}-bit accumulator)")

    def _weighted(self, name: str, kind: str, weight: np.ndarray,
                  x: Interval, bias: Optional[np.ndarray]) -> Interval:
        if not x.is_bounded:
            self.finding("datapath.unbounded-input", name,
                         "no input quantizer upstream bounds this layer; pass "
                         "input_interval explicitly")
            x = Interval.grid(-1.0, 1.0)  # keep walking with a token range
        if not np.allclose(weight, np.round(weight)):
            self.finding("contract.non-integer-weight", name,
                         f"{kind} weight is not integer-valued")
        acc = accum_bounds(weight.reshape(weight.shape[0], -1), x)
        if bias is not None:
            b = np.asarray(bias, dtype=np.float64).reshape(-1)
            acc = Interval(acc.lo + b, acc.hi + b)
        self.record_accum(name, kind, acc)
        return acc

    def _check_grid(self, name: str, x: Interval, qlb: float, qub: float,
                    what: str) -> None:
        lo, hi = x.bounds()
        if lo < qlb or hi > qub:
            self.finding(
                "contract.bitwidth-mismatch", name,
                f"producer range [{lo:.0f}, {hi:.0f}] exceeds the {what} "
                f"grid [{qlb:.0f}, {qub:.0f}]")


# ====================================================================== #
# leaf handlers                                                          #
# ====================================================================== #

@IntervalEngine.register(InputQuant)
def _h_input_quant(eng, name, mod, x):
    return Interval.grid(mod.qlb, mod.qub)


@IntervalEngine.register(IdentityQuantizer)
def _h_identity_quant(eng, name, mod, x):
    return x


@IntervalEngine.register(_QBase)
def _h_qbase(eng, name, mod, x):
    # deploy-path evalFunc rounds and clamps onto the integer grid
    return Interval.grid(mod.qlb, mod.qub)


@IntervalEngine.register(GridRange)
def _h_grid_range(eng, name, mod, x):
    return x.clamp(float(mod.qlb), float(mod.qub))


@IntervalEngine.register(nn.Identity, nn.Flatten, nn.Dropout)
def _h_identity(eng, name, mod, x):
    return x


@IntervalEngine.register(nn.MaxPool2d, nn.AvgPool2d, nn.AdaptiveAvgPool2d)
def _h_pool(eng, name, mod, x):
    # max/avg of values in [lo, hi] stays in [lo, hi] (avg may be fractional;
    # the downstream MulQuant re-rounds it)
    return x


@IntervalEngine.register(nn.ReLU)
def _h_relu(eng, name, mod, x):
    return Interval(np.maximum(x.lo, 0.0), np.maximum(x.hi, 0.0))


@IntervalEngine.register(nn.Sequential)
def _h_sequential(eng, name, mod, x):
    for i, child in enumerate(mod):
        x = eng.visit(f"{name}.{i}" if name else str(i), child, x)
    return x


@IntervalEngine.register(nn.Conv2d)
def _h_conv(eng, name, mod, x):
    if getattr(mod, "padding", 0):
        x = x.hull_zero()  # zero padding injects 0-codes into every window
    bias = mod.bias.data if getattr(mod, "bias", None) is not None else None
    return eng._weighted(name, "Conv2d", mod.weight.data, x.scalar(), bias)


@IntervalEngine.register(nn.Linear)
def _h_linear(eng, name, mod, x):
    bias = mod.bias.data if getattr(mod, "bias", None) is not None else None
    return eng._weighted(name, "Linear", mod.weight.data, x.scalar(), bias)


def _q_weight(eng, name, mod) -> np.ndarray:
    w = mod.wint.data
    if not np.any(w) and np.any(mod.weight.data):
        eng.finding("contract.unfrozen-weight", name,
                    "wint buffer is all-zero; freeze_int_weight() never ran")
    return w


def _q_input(eng, name, mod, x) -> Interval:
    """Fused-layer input: check the consumer grid, apply the zp subtract."""
    eng._check_grid(name, x, mod.aq.qlb, mod.aq.qub, "input-activation")
    zp_raw = getattr(mod.aq.zero_point, "data", mod.aq.zero_point)
    zp = float(np.asarray(zp_raw).reshape(-1)[0])
    return x.scalar().shift(-zp) if zp else x.scalar()


@IntervalEngine.register(QConv2d)
def _h_qconv(eng, name, mod, x):
    x = _q_input(eng, name, mod, x)
    if mod.padding:
        x = x.hull_zero()
    # deploy forward drops the float bias (it lives in the MulQuant)
    return eng._weighted(name, "QConv2d", _q_weight(eng, name, mod), x, None)


@IntervalEngine.register(QLinear)
def _h_qlinear(eng, name, mod, x):
    x = _q_input(eng, name, mod, x)
    return eng._weighted(name, "QLinear", _q_weight(eng, name, mod), x, None)


@IntervalEngine.register(MulQuant)
def _h_mulquant(eng, name, mod, x):
    m = np.asarray(mod.effective_scale, dtype=np.float64)
    b = np.asarray(mod.effective_bias, dtype=np.float64)
    if x.lo.size == m.size and m.ndim <= 1:
        v = Interval(x.lo.reshape(m.shape), x.hi.reshape(m.shape))
    else:
        v = x.scalar()  # collapse: bound shape does not match the scale table
    v = v.scale(m)
    try:
        v = Interval(v.lo + b, v.hi + b)
    except ValueError:  # bias table not broadcastable against the bounds
        lo, hi = v.bounds()
        v = Interval(lo + np.min(b), hi + np.max(b))
    v = v.round_half_away()
    return v.clamp(float(mod.out_lo), float(mod.out_hi))


@IntervalEngine.register(LUTSoftmax)
def _h_lut_softmax(eng, name, mod, x):
    span = len(mod.table.data) - 1
    lo, hi = x.bounds()
    if hi - lo > span:
        eng._check_grid(name, Interval(0.0, hi - lo), 0, span, "softmax LUT")
    # probs = round(e * 2^pb / sum(e)) <= 2^pb (one-hot row saturates it)
    return Interval(0.0, float(1 << mod.prob_bits))


@IntervalEngine.register(LUTGelu)
def _h_lut_gelu(eng, name, mod, x):
    eng._check_grid(name, x, mod.in_qlb, mod.in_qub, "GELU LUT input")
    return Interval.of_array(mod.table.data)  # exact: the table is the layer


# ====================================================================== #
# unit / block handlers                                                  #
# ====================================================================== #

def _visit_mq(eng, name, mq, x) -> Interval:
    if mq is None:
        eng.finding("contract.missing-mulquant", name,
                    "deploy unit has no MulQuant wired")
        return x
    return eng.visit(name, mq, x)


@IntervalEngine.register(QConvBNReLU)
def _h_unit(eng, name, mod, x):
    x = eng.visit(f"{name}.conv", mod.conv, x)
    return _visit_mq(eng, f"{name}.mq", mod.mq, x)


@IntervalEngine.register(QLinearUnit)
def _h_linear_unit(eng, name, mod, x):
    x = eng.visit(f"{name}.linear", mod.linear, x)
    return _visit_mq(eng, f"{name}.mq", mod.mq, x)


def _merge_residual(a: Interval, s: Interval, res_scale: float,
                    clamp) -> Interval:
    v = (a.scalar() + s.scalar()).divide(float(res_scale))
    return v.round_half_away().clamp(float(clamp[0]), float(clamp[1]))


def _h_resblock(eng, name, mod, x):
    a = x
    for i, unit in enumerate(mod.units()[: 3 if isinstance(mod, QBottleneck) else 2]):
        a = eng.visit(f"{name}.unit{i + 1}", unit, a)
    if mod.down is not None:
        s = eng.visit(f"{name}.down", mod.down, x)
    else:
        s = _visit_mq(eng, f"{name}.mq_id", mod.mq_id, x)
    return _merge_residual(a, s, mod.res_scale, mod.out_clamp)


IntervalEngine.register(QBasicBlock, QBottleneck)(_h_resblock)


@IntervalEngine.register(QLNUnit)
def _h_ln_unit(eng, name, mod, x):
    if mod.running_stats:
        return _visit_mq(eng, f"{name}.mq", mod.mq, x)
    if mod.out_qub == 0 and mod.out_qlb == 0:
        eng.finding("contract.missing-mulquant", name,
                    "instant-stats LN unit was never fused (no output grid)")
        return x
    eng.finding("lint.instant-layernorm", name,
                "instant-statistics LayerNorm normalizes in float at deploy")
    return Interval.grid(mod.out_qlb, mod.out_qub)


@IntervalEngine.register(QAttention)
def _h_attention(eng, name, mod, x):
    t = eng.visit(f"{name}.qkv", mod.qkv, x)
    t = _visit_mq(eng, f"{name}.mq_qkv", mod.mq_qkv, t).scalar()
    q = k = v = t  # q/k/v share the clamp range of mq_qkv

    # scores Q.K^T: head_dim products of two bounded integer operands
    scores = (q * k).scale(float(mod.head_dim))
    eng.record_accum(f"{name}.scores", "MatMul(QK^T)", scores)
    s = _visit_mq(eng, f"{name}.mq_score", mod.mq_score, scores)
    p = eng.visit(f"{name}.lut_softmax", mod.lut_softmax, s)

    # context probs @ V: L non-negative probabilities against V.  The LUT
    # normalizes each row to ~2^prob_bits total mass (each entry rounds by
    # at most 1/2), so the probability-sum bound is far tighter than L*max.
    tokens = eng.ctx.get("tokens")
    _, p_hi = p.bounds()
    if tokens is None:
        eng.finding("lint.unhandled-module", f"{name}.context",
                    "sequence length unknown; using prob-sum upper bound only")
        s_max, s_min = p_hi, 0.0
    else:
        s_max = min(tokens * p_hi, p_hi + tokens / 2.0)
        s_min = max(0.0, p_hi - tokens / 2.0)
    v_lo, v_hi = v.bounds()
    ctx_hi = s_max * v_hi if v_hi >= 0 else s_min * v_hi
    ctx_lo = s_max * v_lo if v_lo <= 0 else s_min * v_lo
    ctx = Interval(ctx_lo, ctx_hi)
    eng.record_accum(f"{name}.context", "MatMul(attn.V)", ctx)

    c = _visit_mq(eng, f"{name}.mq_ctx", mod.mq_ctx, ctx)
    y = eng.visit(f"{name}.proj", mod.proj, c)
    return _visit_mq(eng, f"{name}.mq_proj", mod.mq_proj, y)


@IntervalEngine.register(QMLP)
def _h_mlp(eng, name, mod, x):
    h = eng.visit(f"{name}.fc1", mod.fc1, x)
    h = _visit_mq(eng, f"{name}.mq_fc1", mod.mq_fc1, h)
    g = eng.visit(f"{name}.lut_gelu", mod.lut_gelu, h)
    y = eng.visit(f"{name}.fc2", mod.fc2, g)
    return _visit_mq(eng, f"{name}.mq_fc2", mod.mq_fc2, y)


@IntervalEngine.register(QViTBlock)
def _h_vit_block(eng, name, mod, x):
    a = eng.visit(f"{name}.ln1", mod.ln1, x)
    a = eng.visit(f"{name}.attn", mod.attn, a)
    s = _visit_mq(eng, f"{name}.mq_id1", mod.mq_id1, x)
    x = _merge_residual(a, s, mod.res_scale, (mod.rq1.qlb, mod.rq1.qub))
    m = eng.visit(f"{name}.ln2", mod.ln2, x)
    m = eng.visit(f"{name}.mlp", mod.mlp, m)
    s = _visit_mq(eng, f"{name}.mq_id2", mod.mq_id2, x)
    return _merge_residual(m, s, mod.res_scale, (mod.rq2.qlb, mod.rq2.qub))


# ====================================================================== #
# architecture (model-level) handlers                                    #
# ====================================================================== #

def _h_cnn_top(eng, name, mod, x):
    x = eng.visit("input_q", mod.input_q, x)
    if isinstance(mod, QResNet):
        x = eng.visit("stem", mod.stem, x)
        x = eng.visit("blocks", mod.blocks, x)
    elif isinstance(mod, QMobileNetV1):
        x = eng.visit("units", mod.units, x)
    else:  # QVGG
        x = eng.visit("chain", mod.chain, x)
    x = eng.visit("pool", mod.pool, x)
    x = _visit_mq(eng, "mq_pool", mod.mq_pool, x.scalar())
    return eng.visit("fc", mod.fc, x)


IntervalEngine.register(QResNet, QMobileNetV1, QVGG)(_h_cnn_top)


@IntervalEngine.register(QVisionTransformer)
def _h_vit_top(eng, name, mod, x):
    x = eng.visit("input_q", mod.input_q, x)
    x = eng.visit("patch", mod.patch, x)
    eng.ctx["tokens"] = int(mod.pos_int.data.shape[1])
    tok = x.hull(Interval.of_array(mod.cls_int.data))
    tok = tok + Interval.of_array(mod.pos_int.data)
    tok = tok.clamp(float(mod.embed_q.qlb), float(mod.embed_q.qub))
    tok = eng.visit("blocks", mod.blocks, tok)
    tok = eng.visit("norm", mod.norm, tok)
    return eng.visit("head", mod.head, tok)


# ====================================================================== #
# entry point                                                            #
# ====================================================================== #

def lint_intervals(model: Module, accum_bits: int = 32,
                   input_interval: Optional[Interval] = None,
                   tokens: Optional[int] = None) -> IntervalReport:
    """Run the interval abstract interpreter over a deploy-mode model."""
    return IntervalEngine(accum_bits=accum_bits).run(
        model, input_interval=input_interval, tokens=tokens)
