"""Finding model and rule catalog for the static verifier.

Every lint pass (interval engine, contract checker, purity lint, export
validation) reports through the same :class:`Finding` record: a stable rule
id from :data:`RULES`, a severity, the site (module path or ``file:line``)
and a human-readable message.  Stable ids let CI configs silence or gate on
individual rules without string-matching messages.
"""
from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import Dict, Iterable, List

ERROR = "ERROR"
WARN = "WARN"
INFO = "INFO"

_SEVERITY_RANK = {ERROR: 0, WARN: 1, INFO: 2}

#: rule id -> (default severity, one-line description).  This is the
#: authoritative catalog rendered in docs/deployment.md.
RULES: Dict[str, tuple] = {
    # -- interval engine (datapath.*) ------------------------------------
    "datapath.accum-overflow": (
        ERROR, "proven accumulator range exceeds the configured width"),
    "datapath.unbounded-input": (
        ERROR, "a weighted layer is reachable with an unbounded value interval"),
    # -- graph contracts (contract.*) ------------------------------------
    "contract.unfused-batchnorm": (
        ERROR, "BatchNorm survives on the integer deploy path (fusion missed it)"),
    "contract.missing-mulquant": (
        ERROR, "deploy unit has no MulQuant wired (fuse() not run or incomplete)"),
    "contract.leftover-quantizer": (
        ERROR, "train-path quantizer module survived the vanilla re-pack"),
    "contract.observer-active": (
        WARN, "quantizer still in calibration mode (observe=True) at deploy"),
    "contract.stale-calibration": (
        WARN, "quantizer observer never saw a calibration batch; its scale "
              "is still at initialization"),
    "contract.train-flag": (
        WARN, "module still on the training path (deploy=False) in a fused model"),
    "contract.bitwidth-mismatch": (
        ERROR, "producer emits integer codes outside the consumer's grid"),
    "contract.scale-underflow": (
        ERROR, "MulQuant scale quantized to zero (channel silenced) by the fixed-point grid"),
    "contract.scale-roundtrip": (
        WARN, "MulQuant scale fixed-point round-trip error beyond tolerance"),
    "contract.bias-roundtrip": (
        WARN, "MulQuant bias fixed-point error beyond half an output LSB"),
    "contract.unfrozen-weight": (
        ERROR, "integer weight buffer is all-zero while the float weight is not"),
    "contract.non-integer-weight": (
        ERROR, "non-integer tensor on the integer deploy path"),
    "contract.pruning-mask-lost": (
        WARN, "zeros of the pruned float weight did not survive into the integer weight"),
    "deploy.asymmetric-grid": (
        WARN, "asymmetric activation grid reaches the symmetric-only vanilla re-pack"),
    # -- deploy-path purity (purity.*) -----------------------------------
    "purity.float-div": (
        ERROR, "float-producing division in a deploy-path forward"),
    "purity.float-stat": (
        ERROR, "float statistic (mean/std/var) in a deploy-path forward"),
    "purity.float-cast": (
        WARN, "float constructor/cast in a deploy-path forward"),
    "purity.float-literal": (
        WARN, "non-integral float literal in deploy-path arithmetic"),
    # -- export validation (export.*) ------------------------------------
    "export.width-overflow": (
        WARN, "tensor values need more bits than the declared word width"),
    "export.roundtrip-mismatch": (
        ERROR, "exported artifact does not decode back to the source tensor"),
    # -- artifact integrity (integrity.*) --------------------------------
    "integrity.missing-file": (
        ERROR, "file listed in the artifact manifest is missing on disk"),
    "integrity.truncated": (
        ERROR, "artifact file is shorter than its recorded/declared size"),
    "integrity.checksum-mismatch": (
        ERROR, "artifact bytes no longer hash to the manifest's SHA-256"),
    "integrity.header-mismatch": (
        ERROR, "artifact header (shape/dtype/bits) disagrees with its payload"),
    "integrity.stale-manifest": (
        ERROR, "manifest unreadable, unknown schema, or digest sign-off broken"),
    "integrity.format-divergence": (
        ERROR, "two formats of the same tensor decode to different values"),
    "integrity.unlisted-file": (
        WARN, "file present in the artifact directory but not in the manifest"),
    # -- plan IR verifier (plan.*) ---------------------------------------
    "plan.alias": (
        ERROR, "a register (or shared arena slot) is rewritten while an earlier value is still live"),
    "plan.dead-read": (
        ERROR, "an op reads a register that is never written, or before its defining op"),
    "plan.accum-overflow": (
        ERROR, "plan-level interval proof exceeds the accumulator width, the op's certified bound, or the module-level proof"),
    "plan.shift-inexact": (
        ERROR, "requant scale is not an exact power of two (po2 deploy-mode precondition)"),
    "plan.checksum-overflow": (
        ERROR, "ABFT column-checksum accumulator can exceed the 2^53 exact-float64 limit, so checksum equality would not be sound"),
    "plan.shape-mismatch": (
        ERROR, "op wiring inconsistent: register ids, shapes or operand dimensions disagree"),
    # -- engine bookkeeping (lint.*) -------------------------------------
    "lint.unhandled-module": (
        WARN, "no interval handler for this module type; assumed range-preserving"),
    "lint.instant-layernorm": (
        INFO, "instant-statistics LayerNorm keeps a float normalization at deploy"),
}


@dataclass(frozen=True)
class Finding:
    """One lint finding with a stable rule id."""

    rule: str
    severity: str
    where: str
    message: str

    def __post_init__(self):
        if self.rule not in RULES:
            raise ValueError(f"unknown lint rule id {self.rule!r}")
        if self.severity not in _SEVERITY_RANK:
            raise ValueError(f"unknown severity {self.severity!r}")

    def __str__(self) -> str:
        return f"{self.severity:<5} {self.rule:<28} {self.where}: {self.message}"


def make_finding(rule: str, where: str, message: str, severity: str = "") -> Finding:
    """Build a finding, defaulting the severity from the rule catalog."""
    return Finding(rule, severity or RULES[rule][0], where, message)


def sort_findings(findings: Iterable[Finding]) -> List[Finding]:
    """Stable order: errors first, then by rule id and site."""
    return sorted(findings, key=lambda f: (_SEVERITY_RANK[f.severity], f.rule, f.where))


def has_errors(findings: Iterable[Finding]) -> bool:
    return any(f.severity == ERROR for f in findings)


def reaches_severity(findings: Iterable[Finding], fail_on: str = "error") -> bool:
    """True when any finding is at or above the ``fail_on`` threshold.

    ``fail_on`` is ``"error"`` (the default exit-2 gate) or ``"warning"``
    (strict CI mode: WARN findings fail too).  INFO never gates.
    """
    thresholds = {"error": ERROR, "warning": WARN}
    if fail_on not in thresholds:
        raise ValueError(f"unknown fail-on threshold {fail_on!r}; "
                         f"expected 'error' or 'warning'")
    rank = _SEVERITY_RANK[thresholds[fail_on]]
    return any(_SEVERITY_RANK[f.severity] <= rank for f in findings)


def findings_summary(findings: Iterable[Finding]) -> Dict:
    """Counts by severity and rule — the shape embedded in export manifests."""
    findings = list(findings)
    by_rule: Dict[str, int] = {}
    for f in findings:
        by_rule[f.rule] = by_rule.get(f.rule, 0) + 1
    return {
        "errors": sum(f.severity == ERROR for f in findings),
        "warnings": sum(f.severity == WARN for f in findings),
        "infos": sum(f.severity == INFO for f in findings),
        "by_rule": dict(sorted(by_rule.items())),
    }


def findings_to_json(findings: Iterable[Finding]) -> List[Dict]:
    return [asdict(f) for f in sort_findings(findings)]


def render_findings(findings: Iterable[Finding]) -> str:
    """Plain-text report: one line per finding, errors first."""
    findings = sort_findings(findings)
    if not findings:
        return "no findings"
    return "\n".join(str(f) for f in findings)
