"""Graph contract checker: rule-based findings over fused/re-packed models.

Unlike the interval engine (which *simulates* the datapath), this pass sweeps
the module tree and checks structural deploy contracts:

* fusion completeness — no reachable BatchNorm, no unit without its MulQuant,
  no train-path quantizer surviving the vanilla re-pack;
* mode flags — observers still calibrating, modules still on the train path;
* fixed-point faithfulness — MulQuant scales that underflowed to zero on the
  ``INT(int_bits, frac_bits)`` grid, or whose round-trip error exceeds
  tolerance (the check :mod:`repro.core.fixed_point` makes possible);
* integer-only state — non-integer tensors on the deploy path, un-frozen
  ``wint`` buffers, asymmetric grids headed for the symmetric-only re-pack,
  and pruning-mask zeros that did not survive into the integer weights.

The pass is static: no forward runs, no input data.  It accepts either a
fused Q-model (``T2C.fuse()`` output) or a re-packed vanilla model and infers
which contracts apply.
"""
from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from repro import nn
from repro.core.mulquant import MulQuant
from repro.core.qbase import IdentityQuantizer, _QBase
from repro.core.qlayers import QConv2d, QLinear
from repro.core.vanilla import GridRange, InputQuant
from repro.lint.findings import Finding, make_finding
from repro.nn.module import Module

#: default relative tolerance for the MulQuant scale round-trip check —
#: generous against the INT(4,12)+preshift encoding (max-channel error is
#: ~2^-15 relative) while still catching wide per-channel spreads where the
#: small channels lose most of their precision.
SCALE_RTOL = 1e-2

#: bias error tolerance in output-integer units: half an output LSB.
BIAS_ATOL = 0.5


def model_kind(model: Module) -> str:
    """``"repacked"``, ``"fused"``, or ``"float"`` (not deploy-ready)."""
    mods = list(model.modules())
    if any(isinstance(m, InputQuant) for m in mods):
        return "repacked"
    if any(isinstance(m, _QBase) and m.deploy for m in mods):
        return "fused"
    return "float"


def check_contracts(model: Module,
                    masks: Optional[Dict[str, np.ndarray]] = None,
                    scale_rtol: float = SCALE_RTOL,
                    bias_atol: float = BIAS_ATOL) -> List[Finding]:
    """Run every structural contract rule; returns the findings.

    ``masks`` optionally maps parameter paths (``"<module>.weight"``) to
    pruning masks; without it, the pruning rule infers the mask from exact
    zeros of the float weight.
    """
    kind = model_kind(model)
    out: List[Finding] = []
    named = list(model.named_modules())

    for path, mod in named:
        where = path or type(model).__name__
        if isinstance(mod, nn.BatchNorm2d):
            if kind == "repacked":
                out.append(make_finding(
                    "contract.unfused-batchnorm", where,
                    "BatchNorm survived the vanilla re-pack"))
        if isinstance(mod, (QConv2d, QLinear)):
            if kind == "repacked":
                out.append(make_finding(
                    "contract.leftover-quantizer", where,
                    f"{type(mod).__name__} survived the vanilla re-pack"))
            else:
                out.extend(_check_qlayer(where, mod, masks, path))
        elif isinstance(mod, _QBase) and not isinstance(mod, IdentityQuantizer):
            if kind == "repacked":
                out.append(make_finding(
                    "contract.leftover-quantizer", where,
                    f"train-path quantizer {type(mod).__name__} survived the "
                    "vanilla re-pack"))
            else:
                if mod.observe:
                    out.append(make_finding(
                        "contract.observer-active", where,
                        "quantizer still calibrating (observe=True)"))
                obs = getattr(mod, "observer", None)
                if (obs is not None and hasattr(mod, "finalize_calibration")
                        and not getattr(obs, "initialized", True)):
                    out.append(make_finding(
                        "contract.stale-calibration", where,
                        "observer never saw a calibration batch, so "
                        "finalize_calibration() was skipped and the scale is "
                        "still at its initialization value"))
                if kind == "fused" and not mod.deploy:
                    out.append(make_finding(
                        "contract.train-flag", where,
                        "quantizer still on the training path (deploy=False)"))
        if isinstance(mod, MulQuant):
            out.extend(_check_mulquant(where, mod, scale_rtol, bias_atol))
        if kind == "fused" and hasattr(mod, "mq") and not isinstance(mod, _QBase):
            if getattr(mod, "deploy", False) and mod.mq is None \
                    and getattr(mod, "running_stats", True):
                out.append(make_finding(
                    "contract.missing-mulquant", where,
                    f"{type(mod).__name__} is in deploy mode with no MulQuant "
                    "wired (fuse() missed it)"))

    if kind == "repacked":
        out.extend(_check_integer_state(model))
    return out


def _check_qlayer(where: str, mod, masks, path: str) -> List[Finding]:
    """Fused-model rules for a QConv2d/QLinear layer."""
    out: List[Finding] = []
    w, wint = mod.weight.data, mod.wint.data
    if mod.deploy and not np.any(wint) and np.any(w):
        out.append(make_finding(
            "contract.unfrozen-weight", where,
            "wint buffer is all-zero while the float weight is not; "
            "freeze_int_weight() never ran"))
    zp_raw = getattr(mod.aq.zero_point, "data", mod.aq.zero_point)
    zp = np.asarray(zp_raw).reshape(-1)
    if np.any(zp != 0.0):
        out.append(make_finding(
            "deploy.asymmetric-grid", where,
            "activation grid carries a zero point; the symmetric-only vanilla "
            "re-pack (_check_symmetric) will reject this layer"))
    mask = (masks or {}).get(f"{path}.weight")
    zero_src = mask == 0 if mask is not None else w == 0
    if np.any(wint) and np.any(zero_src & (wint != 0)):
        lost = int(np.count_nonzero(zero_src & (wint != 0)))
        out.append(make_finding(
            "contract.pruning-mask-lost", where,
            f"{lost} pruned (zero) weights became non-zero integers; the "
            "sparsity pattern will not reach hardware"))
    return out


def _check_mulquant(where: str, mod: MulQuant,
                    scale_rtol: float, bias_atol: float) -> List[Finding]:
    out: List[Finding] = []
    if mod.float_scale:
        return out  # the float baseline mode opts out of fixed-point rules
    intended_s = getattr(mod, "scale_f", None)
    intended_b = getattr(mod, "bias_f", None)
    eff_s = np.asarray(mod.effective_scale, dtype=np.float64)
    if intended_s is not None:
        s = np.asarray(intended_s, dtype=np.float64)
        dead = (eff_s == 0.0) & (s != 0.0)
        if np.any(dead):
            out.append(make_finding(
                "contract.scale-underflow", where,
                f"{int(np.count_nonzero(dead))} scale entries quantized to 0 "
                f"on the {mod.fmt} grid; those channels are silenced"))
        live = (s != 0.0) & (eff_s != 0.0)
        if np.any(live):
            rel = np.abs(eff_s[live] - s[live]) / np.abs(s[live])
            worst = float(rel.max())
            if worst > scale_rtol:
                out.append(make_finding(
                    "contract.scale-roundtrip", where,
                    f"scale fixed-point round-trip error {worst:.3%} exceeds "
                    f"{scale_rtol:.3%} (format {mod.fmt}, shift {mod.shift})"))
    elif np.any(eff_s == 0.0):
        # no intended value recorded (older checkpoint): a zero entry is
        # still suspicious on a requantizer
        out.append(make_finding(
            "contract.scale-underflow", where,
            "zero entries in the fixed-point scale; channels are silenced"))
    if intended_b is not None:
        b = np.asarray(intended_b, dtype=np.float64)
        eff_b = np.asarray(mod.effective_bias, dtype=np.float64)
        err = float(np.abs(eff_b - b).max()) if b.size else 0.0
        if err > bias_atol:
            out.append(make_finding(
                "contract.bias-roundtrip", where,
                f"bias fixed-point error {err:.3g} output LSBs exceeds "
                f"{bias_atol} (format {mod.bias_fmt})"))
    return out


def _check_integer_state(model: Module) -> List[Finding]:
    """Re-packed models must hold integer tensors only (minus the ADC scale)."""
    out: List[Finding] = []
    # the ADC grid step is float by design, wherever the InputQuant sits
    exempt = {f"{n}.scale" if n else "scale"
              for n, m in model.named_modules() if isinstance(m, InputQuant)}
    tensors = list(model.named_parameters()) + list(model.named_buffers())
    for name, p in tensors:
        if name in exempt:
            continue
        if not np.allclose(p.data, np.round(p.data)):
            out.append(make_finding(
                "contract.non-integer-weight", name,
                "non-integer values in a re-packed state tensor"))
    return out
