"""Interval domain for the integer-datapath abstract interpreter.

An :class:`Interval` holds elementwise lower/upper bounds, either scalar
(one bound for the whole tensor) or vector (one bound per channel — the
shape MulQuant scales broadcast along).  All operations are *sound*: the
concrete value of every tensor element is guaranteed to lie inside the
propagated interval, assuming only the layer contracts (integer grids,
clamp ranges, frozen weights) and never any input data.
"""
from __future__ import annotations

from typing import Tuple, Union

import numpy as np

Bound = Union[float, np.ndarray]


class Interval:
    """Elementwise ``[lo, hi]`` bounds (float64 arrays, scalar or vector)."""

    __slots__ = ("lo", "hi")

    def __init__(self, lo: Bound, hi: Bound):
        lo = np.asarray(lo, dtype=np.float64)
        hi = np.asarray(hi, dtype=np.float64)
        lo, hi = np.broadcast_arrays(lo, hi)
        if np.any(lo > hi):
            raise ValueError(f"empty interval: lo={lo} > hi={hi}")
        self.lo = lo.copy()
        self.hi = hi.copy()

    # ------------------------------------------------------------ builders
    @staticmethod
    def point(v: float) -> "Interval":
        return Interval(v, v)

    @staticmethod
    def grid(qlb: float, qub: float) -> "Interval":
        """The full integer grid of a quantizer/clamp range."""
        return Interval(float(qlb), float(qub))

    @staticmethod
    def of_array(arr: np.ndarray) -> "Interval":
        """Bounds of a concrete tensor (e.g. an integer LUT or buffer)."""
        a = np.asarray(arr, dtype=np.float64)
        return Interval(float(a.min()), float(a.max()))

    @staticmethod
    def unbounded() -> "Interval":
        return Interval(-np.inf, np.inf)

    # ------------------------------------------------------------ queries
    @property
    def is_scalar(self) -> bool:
        return self.lo.ndim == 0

    @property
    def is_bounded(self) -> bool:
        return bool(np.all(np.isfinite(self.lo)) and np.all(np.isfinite(self.hi)))

    def bounds(self) -> Tuple[float, float]:
        """Collapse to scalar ``(lo, hi)`` over all channels."""
        return float(np.min(self.lo)), float(np.max(self.hi))

    def scalar(self) -> "Interval":
        lo, hi = self.bounds()
        return Interval(lo, hi)

    # --------------------------------------------------------- arithmetic
    def shift(self, c: float) -> "Interval":
        return Interval(self.lo + c, self.hi + c)

    def hull(self, other: "Interval") -> "Interval":
        a, b = self.scalar(), other.scalar()
        return Interval(min(float(a.lo), float(b.lo)), max(float(a.hi), float(b.hi)))

    def hull_zero(self) -> "Interval":
        """Widen to include 0 (zero padding, accumulator reset state)."""
        return Interval(np.minimum(self.lo, 0.0), np.maximum(self.hi, 0.0))

    def __add__(self, other: "Interval") -> "Interval":
        return Interval(self.lo + other.lo, self.hi + other.hi)

    def __mul__(self, other: "Interval") -> "Interval":
        cands = np.stack(np.broadcast_arrays(
            self.lo * other.lo, self.lo * other.hi,
            self.hi * other.lo, self.hi * other.hi))
        return Interval(cands.min(axis=0), cands.max(axis=0))

    def scale(self, m: Bound) -> "Interval":
        """Multiply by a known constant (scalar or per-channel vector)."""
        m = np.asarray(m, dtype=np.float64)
        a, b = self.lo * m, self.hi * m
        return Interval(np.minimum(a, b), np.maximum(a, b))

    def divide(self, d: float) -> "Interval":
        if d <= 0:
            raise ValueError("divisor must be positive")
        return Interval(self.lo / d, self.hi / d)

    def clamp(self, lo: float, hi: float) -> "Interval":
        return Interval(np.clip(self.lo, lo, hi), np.clip(self.hi, lo, hi))

    def round_half_away(self) -> "Interval":
        """Image under ``sign(v) * floor(|v| + 0.5)`` (monotone, elementwise)."""
        return Interval(_round_half_away(self.lo), _round_half_away(self.hi))

    def __repr__(self) -> str:
        lo, hi = self.bounds()
        tag = "" if self.is_scalar else f", channels={self.lo.size}"
        return f"Interval([{lo:g}, {hi:g}]{tag})"


def _round_half_away(v: np.ndarray) -> np.ndarray:
    return np.sign(v) * np.floor(np.abs(v) + 0.5)


def min_signed_bits(lo: float, hi: float) -> int:
    """Smallest two's-complement width holding every value in ``[lo, hi]``.

    The accumulator register passes through 0 (its reset state), so callers
    should hull the range with 0 first if they want the register width.
    """
    if not (np.isfinite(lo) and np.isfinite(hi)):
        return 128  # sentinel: unbounded never fits
    for bits in range(1, 128):
        if lo >= -(1 << (bits - 1)) and hi <= (1 << (bits - 1)) - 1:
            return bits
    return 128


def accum_bounds(weight2d: np.ndarray, x: Interval) -> Interval:
    """Per-output-channel accumulator bounds of ``w @ x`` with ``x`` interval.

    ``weight2d`` is ``(out_channels, reduce)`` — a linear weight, or a conv
    weight reshaped to ``(C_out, C_in/g * k * k)``.  Every reduced element is
    assumed to lie in the scalar hull of ``x``.  The bound is *tight*: it is
    attained by the input ``x_j = hi if w_j > 0 else lo`` (sign-matched),
    which is exactly what the worst-case cross-check tests construct.
    """
    lo, hi = x.bounds()
    w = np.asarray(weight2d, dtype=np.float64)
    wpos = np.clip(w, 0.0, None).sum(axis=1)
    wneg = np.clip(w, None, 0.0).sum(axis=1)
    return Interval(wpos * lo + wneg * hi, wpos * hi + wneg * lo)
