"""Top-level lint orchestration: run every pass, merge + dedupe findings.

``lint_model`` is the programmatic entry point behind ``repro.cli lint`` and
``T2C.lint()``: it runs the interval engine and the contract checker over a
deploy-mode model and returns one :class:`LintReport`.  ``lint_sources``
wraps the model-free purity pass for CI use.
"""
from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.lint.contracts import check_contracts
from repro.lint.engine import lint_intervals
from repro.lint.findings import (
    Finding,
    findings_summary,
    findings_to_json,
    has_errors,
    reaches_severity,
    render_findings,
    sort_findings,
)
from repro.lint.intervals import Interval
from repro.lint.purity import lint_purity
from repro.nn.module import Module


@dataclass
class LintReport:
    """Merged result of the lint passes."""

    findings: List[Finding] = field(default_factory=list)
    rows: List[Dict] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not has_errors(self.findings)

    def exceeds(self, fail_on: str = "error") -> bool:
        """True when the report trips the ``--fail-on`` threshold."""
        return reaches_severity(self.findings, fail_on)

    def min_accum_bits(self) -> Dict[str, int]:
        return {r["layer"]: r["min_accum_bits"] for r in self.rows}

    def to_json(self) -> Dict:
        return {
            "ok": self.ok,
            "summary": findings_summary(self.findings),
            "findings": findings_to_json(self.findings),
            "accumulators": self.rows,
        }

    def render(self) -> str:
        lines: List[str] = []
        if self.rows:
            lines.append("accumulator bounds (proven worst case):")
            width = max(len(r["layer"]) for r in self.rows)
            for r in self.rows:
                lines.append(
                    f"  {r['layer']:<{width}}  {r['kind']:<14} "
                    f"[{r['acc_lo']:>14.0f}, {r['acc_hi']:>14.0f}]  "
                    f"min {r['min_accum_bits']:>3d} bits")
            lines.append("")
        lines.append(render_findings(self.findings))
        s = findings_summary(self.findings)
        lines.append(f"lint: {s['errors']} error(s), {s['warnings']} warning(s), "
                     f"{s['infos']} info(s)")
        return "\n".join(lines)


def _dedupe(findings: Sequence[Finding]) -> List[Finding]:
    """Engine and contracts overlap on a few rules; keep one per site."""
    seen = set()
    out: List[Finding] = []
    for f in sort_findings(findings):
        key = (f.rule, f.where)
        if key in seen:
            continue
        seen.add(key)
        out.append(f)
    return out


def lint_model(model: Module,
               accum_bits: int = 32,
               input_interval: Optional[Interval] = None,
               tokens: Optional[int] = None,
               masks: Optional[Dict[str, np.ndarray]] = None) -> LintReport:
    """Static verification of a fused or re-packed deploy-mode model."""
    interval_report = lint_intervals(model, accum_bits=accum_bits,
                                     input_interval=input_interval,
                                     tokens=tokens)
    contract_findings = check_contracts(model, masks=masks)
    merged = _dedupe(list(interval_report.findings) + contract_findings)
    return LintReport(findings=merged, rows=interval_report.rows)


def lint_sources(files: Optional[Sequence[str]] = None) -> LintReport:
    """Model-free purity lint over the deploy-path sources (CI entry point)."""
    return LintReport(findings=_dedupe(lint_purity(files)))
