"""Deploy-path purity lint: AST pass over the integer-only source files.

The paper's invariant is that everything between the input quantizer and the
logits runs on integers.  The deploy-path modules
(:mod:`repro.core.vanilla`, :mod:`repro.core.mulquant`, :mod:`repro.core.lut`)
encode that invariant in *source*, so it can be enforced without
instantiating a model: this pass parses the files and flags float-producing
operations inside ``forward`` / ``evalFunc`` methods —

* true division (``/``) — ``purity.float-div``;
* float statistics (``mean`` / ``std`` / ``var``) — ``purity.float-stat``;
* float constructors (``float(...)``, ``np.float32(...)``, ...) —
  ``purity.float-cast``;
* non-integral float literals (``0.5``, ``1e-3``) — ``purity.float-literal``.

``arr.astype(np.float32)`` is *not* flagged: the toolkit stores integer
values in float containers throughout (the dtype is a container choice, the
values stay integral).  Deliberate float sites — the ADC division in
``InputQuant``, the add-half rounding constant — carry a
``# lint: allow-float`` marker on the offending line, which suppresses every
rule on that line.  The lint runs in CI with no model and no data.
"""
from __future__ import annotations

import ast
import os
from typing import Iterable, List, Optional, Sequence, Set

from repro.lint.findings import Finding, make_finding

#: line marker that whitelists a float-producing site
ALLOW_MARKER = "lint: allow-float"

#: methods that constitute the deploy path of a module class
DEPLOY_METHODS = ("forward", "evalFunc")

_FLOAT_STATS = {"mean", "std", "var"}
_FLOAT_CASTS = {"float", "float32", "float64", "float16", "double"}


def default_files() -> List[str]:
    """The integer-only deploy-path sources the paper's invariant covers."""
    import repro.core as core

    base = os.path.dirname(os.path.abspath(core.__file__))
    return [os.path.join(base, f) for f in ("vanilla.py", "mulquant.py", "lut.py")]


def lint_purity(files: Optional[Sequence[str]] = None) -> List[Finding]:
    """Lint deploy-path sources; returns findings (no model needed)."""
    out: List[Finding] = []
    for path in (files if files is not None else default_files()):
        out.extend(lint_file(path))
    return out


def lint_file(path: str) -> List[Finding]:
    with open(path, "r") as f:
        source = f.read()
    return lint_source(source, filename=path)


def lint_source(source: str, filename: str = "<string>") -> List[Finding]:
    tree = ast.parse(source, filename=filename)
    allowed = _allowed_lines(source)
    short = os.path.basename(filename)
    out: List[Finding] = []
    for cls in ast.walk(tree):
        if not isinstance(cls, ast.ClassDef):
            continue
        for fn in cls.body:
            if isinstance(fn, ast.FunctionDef) and fn.name in DEPLOY_METHODS:
                ctx = f"{cls.name}.{fn.name}"
                out.extend(_lint_method(fn, ctx, short, allowed))
    return out


def _allowed_lines(source: str) -> Set[int]:
    return {i for i, line in enumerate(source.splitlines(), start=1)
            if ALLOW_MARKER in line}


def _lint_method(fn: ast.FunctionDef, ctx: str, filename: str,
                 allowed: Set[int]) -> Iterable[Finding]:
    out: List[Finding] = []

    def emit(rule: str, node: ast.AST, message: str) -> None:
        line = getattr(node, "lineno", fn.lineno)
        if line in allowed:
            return
        out.append(make_finding(rule, f"{filename}:{line}", f"{ctx}: {message}"))

    for node in ast.walk(fn):
        if isinstance(node, ast.BinOp) and isinstance(node.op, ast.Div):
            emit("purity.float-div", node,
                 "true division produces floats on the deploy path "
                 "(use // or a MulQuant shift)")
        elif isinstance(node, ast.AugAssign) and isinstance(node.op, ast.Div):
            emit("purity.float-div", node, "in-place true division (/=)")
        elif isinstance(node, ast.Call):
            callee = _callee_name(node.func)
            if callee in _FLOAT_STATS:
                emit("purity.float-stat", node,
                     f"float statistic {callee}() on the deploy path")
            elif callee in _FLOAT_CASTS:
                emit("purity.float-cast", node,
                     f"float constructor {callee}() on the deploy path")
        elif isinstance(node, ast.Constant) and isinstance(node.value, float):
            if node.value != round(node.value):
                emit("purity.float-literal", node,
                     f"non-integral float literal {node.value!r} in "
                     "deploy-path arithmetic")
    return out


def _callee_name(func: ast.AST) -> str:
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return ""
