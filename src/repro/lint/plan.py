"""Plan IR verifier: dataflow, aliasing, overflow and shift proofs.

The module-graph passes in :mod:`repro.lint.engine` verify the *model*; this
pass verifies the thing that actually serves traffic — the compiled
:class:`repro.runtime.executor.Plan`.  Four proofs over the flat op list:

* **dataflow / liveness** — a def-use graph over the SSA register file
  (every register written exactly once, register 0 is the model input).
  Reads of never- or later-defined registers are ``plan.dead-read`` errors,
  double writes are ``plan.alias`` errors.  The computed live ranges are the
  fusion-legality oracle: :meth:`PlanLiveness.dead_after` answers "which
  intermediates are dead here and safe to fuse away".
* **no-alias soundness** — under an optional register→arena-slot map
  (``Plan.slots``, identity today; any buffer-sharing pass must install one)
  two registers sharing a slot must have strictly disjoint live ranges, so
  no op ever reads a register after its slot was reused.
* **overflow safety** — interval abstract interpretation over the op list,
  mirroring the module-level engine's semantics kind by kind.  Every MAC
  site gets an accumulator row (``min_signed_bits`` vs ``accum_bits``), each
  ``ConvMQOp``'s compile-time reassociation certificate (``exact_reassoc``/
  ``bound``) is re-derived from the verifier's own propagated input range —
  a stale or contradicted certificate is a ``plan.accum-overflow`` error —
  and the rows are cross-checked against the module-level
  ``min_accum_bits`` proof when the caller provides it.
* **shift-exactness** — a per-requant certificate whether the scale is an
  exact power of two with an integral bias (the precondition for the po2
  shift-only deploy mode); ``require_po2=True`` turns a failed certificate
  into a ``plan.shift-inexact`` error.

Findings use the stable ``plan.*`` rules in :mod:`repro.lint.findings`; the
report gates :func:`repro.core.deploy`, ``ModelRegistry.register`` /
``set_active`` and ``Server.swap`` via :class:`PlanVerificationError`.
"""
from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.lint.findings import (
    WARN,
    Finding,
    findings_summary,
    findings_to_json,
    has_errors,
    make_finding,
    reaches_severity,
    render_findings,
)
from repro.lint.intervals import Interval, accum_bounds, min_signed_bits
from repro.runtime.kernels import (EXACT_F32_LIMIT, EXACT_F64_LIMIT,
                                   conv_reassociation_bound)


class PlanVerificationError(RuntimeError):
    """A compiled plan failed verification; carries the full report."""

    def __init__(self, report: "PlanVerificationReport"):
        self.report = report
        s = findings_summary(report.findings)
        rules = sorted({f.rule for f in report.findings if f.severity == "ERROR"})
        super().__init__(
            f"plan verification failed for {report.model_name}: "
            f"{s['errors']} error(s) ({', '.join(rules)})")


# ====================================================================== #
# dataflow / liveness                                                    #
# ====================================================================== #

@dataclass
class PlanLiveness:
    """Def-use graph and live ranges over a plan's register file.

    Op indices run 0..n-1; the def site of register 0 (the model input) is
    -1 and the output register's last use is n (it must survive the whole
    program).  This is the oracle a fusion/buffer-sharing pass queries.
    """

    num_ops: int
    output_reg: int
    defs: Dict[int, int] = field(default_factory=dict)    #: reg -> def index
    uses: Dict[int, List[int]] = field(default_factory=dict)  #: reg -> read indices

    def last_use(self, reg: int) -> int:
        """Index of the last read (the def index for never-read registers)."""
        if reg == self.output_reg:
            return self.num_ops
        reads = self.uses.get(reg)
        return max(reads) if reads else self.defs.get(reg, -1)

    def live_range(self, reg: int) -> Tuple[int, int]:
        """``[def, last_use]`` — the span during which the value must survive."""
        return self.defs.get(reg, -1), self.last_use(reg)

    def dead_after(self, index: int) -> List[int]:
        """Registers whose value dies at op ``index`` — the fusion oracle.

        A register is dead after ``index`` when that op is its last reader
        (and it is not the program output).  A fusion pass may reuse or
        eliminate exactly these intermediates.
        """
        return sorted(r for r in self.defs
                      if r != self.output_reg and self.uses.get(r)
                      and max(self.uses[r]) == index)

    def dead_values(self) -> List[int]:
        """Registers written but never read (and not the output) — dead ops."""
        return sorted(r for r in self.defs
                      if r != self.output_reg and not self.uses.get(r))

    def max_live(self) -> int:
        """Peak number of simultaneously live registers (arena pressure)."""
        peak = 0
        ranges = [self.live_range(r) for r in
                  set(self.defs) | {0, self.output_reg}]
        for i in range(self.num_ops + 1):
            peak = max(peak, sum(1 for d, u in ranges if d <= i <= u))
        return peak

    def to_json(self) -> Dict:
        return {"registers": len(set(self.defs) | {0}),
                "max_live": self.max_live(),
                "dead_values": self.dead_values()}


def plan_liveness(plan) -> PlanLiveness:
    """Build the def-use graph of a plan (no findings; raw structure only)."""
    live = PlanLiveness(num_ops=len(plan.ops), output_reg=plan.output_reg)
    live.defs[0] = -1  # register 0 is the model input
    for i, op in enumerate(plan.ops):
        for s in op.src:
            live.uses.setdefault(s, []).append(i)
        if op.dst not in live.defs:
            live.defs[op.dst] = i
    return live


# ====================================================================== #
# report                                                                 #
# ====================================================================== #

@dataclass
class PlanVerificationReport:
    """Outcome of one :func:`verify_plan` run — findings + proof artifacts."""

    model_name: str
    signature: str
    num_ops: int
    num_regs: int
    findings: List[Finding] = field(default_factory=list)
    rows: List[Dict] = field(default_factory=list)
    shift_certificates: List[Dict] = field(default_factory=list)
    checksum_certificates: List[Dict] = field(default_factory=list)
    liveness: Optional[PlanLiveness] = None
    checked_module_rows: int = 0
    #: the CompileSpec the plan was built under (fusion level, layout,
    #: tiling, threads) — embedded so manifests record the compile config
    compile_spec: Optional[Dict] = None

    @property
    def ok(self) -> bool:
        return not has_errors(self.findings)

    def exceeds(self, fail_on: str = "error") -> bool:
        return reaches_severity(self.findings, fail_on)

    def min_accum_bits(self) -> Dict[str, int]:
        return {r["layer"]: r["min_accum_bits"] for r in self.rows}

    def to_json(self) -> Dict:
        po2 = sum(c["po2"] for c in self.shift_certificates)
        return {
            "ok": self.ok,
            "model": self.model_name,
            "signature": self.signature,
            "ops": self.num_ops,
            "registers": self.num_regs,
            "summary": findings_summary(self.findings),
            "findings": findings_to_json(self.findings),
            "accumulators": self.rows,
            "shift": {"total": len(self.shift_certificates), "po2": po2,
                      "certificates": self.shift_certificates},
            "checksum": {
                "total": len(self.checksum_certificates),
                "abft_safe": sum(c["abft_safe"]
                                 for c in self.checksum_certificates),
                "certificates": self.checksum_certificates},
            "liveness": (self.liveness.to_json()
                         if self.liveness is not None else None),
            "checked_module_rows": self.checked_module_rows,
            "compile_spec": self.compile_spec,
        }

    def render(self) -> str:
        lines = [f"plan verification: {self.model_name} "
                 f"({self.num_ops} ops, {self.num_regs} registers)"]
        if self.liveness is not None:
            lines.append(f"  liveness: max {self.liveness.max_live()} "
                         f"registers live, "
                         f"{len(self.liveness.dead_values())} dead value(s)")
        if self.rows:
            lines.append("  accumulator bounds (proven worst case):")
            width = max(len(r["layer"]) for r in self.rows)
            for r in self.rows:
                tag = "" if r["exact_f32"] else "  !f32"
                lines.append(
                    f"    {r['layer']:<{width}}  {r['kind']:<14} "
                    f"[{r['acc_lo']:>14.0f}, {r['acc_hi']:>14.0f}]  "
                    f"min {r['min_accum_bits']:>3d} bits{tag}")
        if self.shift_certificates:
            po2 = sum(c["po2"] for c in self.shift_certificates)
            lines.append(f"  shift certificates: {po2}/"
                         f"{len(self.shift_certificates)} scales are exact "
                         f"powers of two")
        if self.checksum_certificates:
            safe = sum(c["abft_safe"] for c in self.checksum_certificates)
            lines.append(f"  checksum certificates: {safe}/"
                         f"{len(self.checksum_certificates)} conv checksum "
                         f"accumulators proven float64-exact (ABFT-ready)")
        lines.append(render_findings(self.findings))
        s = findings_summary(self.findings)
        lines.append(f"plan verify: {s['errors']} error(s), "
                     f"{s['warnings']} warning(s), {s['infos']} info(s)")
        return "\n".join(lines)


# ====================================================================== #
# verifier                                                               #
# ====================================================================== #

class _PlanVerifier:
    def __init__(self, plan, accum_bits: int, require_po2: bool,
                 module_bits: Optional[Dict[str, int]],
                 input_shape: Optional[Tuple[int, ...]]):
        self.plan = plan
        self.accum_bits = accum_bits
        self.require_po2 = require_po2
        self.module_bits = module_bits or {}
        self.input_shape = tuple(input_shape) if input_shape else None
        self.findings: List[Finding] = []
        self.rows: List[Dict] = []
        self.certs: List[Dict] = []
        self.checksum_certs: List[Dict] = []
        self.ranges: Dict[int, Interval] = {0: Interval.unbounded()}
        self.shapes: Dict[int, Tuple[int, ...]] = {}
        self.tokens: Optional[int] = None
        self.checked_module_rows = 0

    # ---------------------------------------------------------- plumbing
    def finding(self, rule: str, where: str, message: str,
                severity: str = "") -> None:
        self.findings.append(make_finding(rule, where, message, severity))

    def _site(self, i: int, op) -> str:
        return f"[{i}] {op.name}"

    # -------------------------------------------------------- structural
    def check_structure(self, live: PlanLiveness) -> None:
        plan = self.plan
        written = {0}
        for i, op in enumerate(plan.ops):
            for s in op.src:
                if not (0 <= s < plan.num_regs):
                    self.finding("plan.shape-mismatch", self._site(i, op),
                                 f"source register r{s} out of range "
                                 f"(register file has {plan.num_regs})")
                elif s not in written:
                    origin = live.defs.get(s)
                    detail = (f"r{s} is defined later, by op [{origin}]"
                              if origin is not None else
                              f"r{s} is never written by any op")
                    self.finding("plan.dead-read", self._site(i, op),
                                 f"reads r{s} before it holds a value "
                                 f"({detail})")
            if not (0 <= op.dst < plan.num_regs):
                self.finding("plan.shape-mismatch", self._site(i, op),
                             f"destination register r{op.dst} out of range "
                             f"(register file has {plan.num_regs})")
            elif op.dst in written:
                self.finding("plan.alias", self._site(i, op),
                             f"rewrites r{op.dst}, already written by op "
                             f"[{live.defs.get(op.dst)}] — registers are "
                             f"written exactly once per execution")
            else:
                written.add(op.dst)
        if plan.output_reg not in written:
            self.finding("plan.dead-read", "<output>",
                         f"output register r{plan.output_reg} is never "
                         f"written")
        for r in live.dead_values():
            self.finding("plan.dead-read", f"r{r}",
                         f"register r{r} (written by op [{live.defs[r]}]) is "
                         f"never read and is not the output — dead op",
                         severity=WARN)

    def check_slots(self, live: PlanLiveness) -> None:
        """No-alias proof under the register→arena-slot map.

        Today the map is the identity (``Plan.slots`` is None) and the SSA
        write-once check above is the whole proof; a buffer-sharing pass
        must install its map so overlapping live ranges in one slot are
        caught here.
        """
        slots = getattr(self.plan, "slots", None)
        if not slots:
            return
        by_slot: Dict[int, List[int]] = {}
        for reg, slot in slots.items():
            by_slot.setdefault(int(slot), []).append(int(reg))
        for slot, regs in sorted(by_slot.items()):
            if len(regs) < 2:
                continue
            spans = sorted((live.live_range(r), r) for r in regs)
            for ((d1, u1), r1), ((d2, u2), r2) in zip(spans, spans[1:]):
                if d2 <= u1:  # ranges not strictly disjoint
                    self.finding(
                        "plan.alias", f"slot {slot}",
                        f"registers r{r1} (live [{d1}, {u1}]) and r{r2} "
                        f"(live [{d2}, {u2}]) share arena slot {slot} with "
                        f"overlapping live ranges — a read of r{r1} after "
                        f"op [{d2}] would observe r{r2}'s value")

    # ------------------------------------------------------------ shapes
    def check_shapes(self) -> None:
        if self.input_shape is None:
            return
        self.shapes[0] = self.input_shape
        for i, op in enumerate(self.plan.ops):
            checker = getattr(self, f"_shape_{op.kind}", None)
            try:
                if checker is not None:
                    checker(i, op)
                self.shapes[op.dst] = op.infer(self.shapes)
            except Exception as exc:  # missing src shape, bad rank, ...
                self.finding("plan.shape-mismatch", self._site(i, op),
                             f"shape inference failed: {exc}")

    def _shape_conv_mq(self, i, op) -> None:
        shape = self.shapes.get(op.src[0])
        if shape is None or len(shape) != 3:
            raise ValueError(f"conv input r{op.src[0]} is not (C, H, W): "
                             f"{shape}")
        c = shape[0]
        o, cg, _, _ = op.weight.shape
        if cg * op.groups != c:
            self.finding("plan.shape-mismatch", self._site(i, op),
                         f"weight expects {cg * op.groups} input channels "
                         f"({op.groups} group(s) of {cg}); register r"
                         f"{op.src[0]} carries {c}")
        self._check_mq_size(i, op, op.mq, o, "mq")

    def _shape_conv_raw(self, i, op) -> None:
        shape = self.shapes.get(op.src[0])
        if shape is None or len(shape) != 3:
            raise ValueError(f"conv input r{op.src[0]} is not (C, H, W): "
                             f"{shape}")
        c = shape[0]
        _, cg, _, _ = op.weight.shape
        if cg * op.groups != c:
            self.finding("plan.shape-mismatch", self._site(i, op),
                         f"weight expects {cg * op.groups} input channels "
                         f"({op.groups} group(s) of {cg}); register r"
                         f"{op.src[0]} carries {c}")

    def _shape_conv_mq_res(self, i, op) -> None:
        self._shape_conv_mq(i, op)
        conv_out = op.infer(self.shapes)
        short = self.shapes.get(op.src[1])
        if short is not None and short != conv_out:
            self.finding("plan.shape-mismatch", self._site(i, op),
                         f"fused residual shortcut r{op.src[1]} is {short} "
                         f"but the conv produces {conv_out}")
        if op.smq is not None:
            self._check_mq_size(i, op, op.smq, op.weight.shape[0], "smq")

    def _shape_linear_mq(self, i, op) -> None:
        shape = self.shapes.get(op.src[0])
        if shape and shape[-1] != op.weight.shape[1]:
            self.finding("plan.shape-mismatch", self._site(i, op),
                         f"weight expects {op.weight.shape[1]} input "
                         f"features; register r{op.src[0]} carries "
                         f"{shape[-1]}")
        self._check_mq_size(i, op, op.mq, op.weight.shape[0], "mq")

    def _shape_residual(self, i, op) -> None:
        a, s = (self.shapes.get(r) for r in op.src)
        if a is not None and s is not None and a != s:
            self.finding("plan.shape-mismatch", self._site(i, op),
                         f"residual operands disagree: r{op.src[0]} is {a}, "
                         f"r{op.src[1]} is {s}")

    def _shape_mulquant(self, i, op) -> None:
        shape = self.shapes.get(op.src[0])
        if shape and op.mq.m.size > 1 and op.mq.m.size not in shape:
            self.finding("plan.shape-mismatch", self._site(i, op),
                         f"per-channel scale has {op.mq.m.size} entries but "
                         f"no axis of the input shape {shape} matches")

    def _shape_head(self, i, op) -> None:
        shape = self.shapes.get(op.src[0])
        if shape and shape[-1] != op.weight.shape[1]:
            self.finding("plan.shape-mismatch", self._site(i, op),
                         f"head weight expects {op.weight.shape[1]} "
                         f"features; tokens carry {shape[-1]}")

    def _shape_attention(self, i, op) -> None:
        shape = self.shapes.get(op.src[0])
        d = op.qkv_w.shape[1]
        if shape and shape[-1] != d:
            self.finding("plan.shape-mismatch", self._site(i, op),
                         f"qkv weight expects {d} features; tokens carry "
                         f"{shape[-1]}")
        if op.num_heads * op.head_dim != d:
            self.finding("plan.shape-mismatch", self._site(i, op),
                         f"{op.num_heads} heads x {op.head_dim} dims != "
                         f"embed dim {d}")

    def _shape_mlp(self, i, op) -> None:
        if op.fc2_w.shape[1] != op.fc1_w.shape[0]:
            self.finding("plan.shape-mismatch", self._site(i, op),
                         f"fc2 expects {op.fc2_w.shape[1]} features; fc1 "
                         f"produces {op.fc1_w.shape[0]}")

    def _check_mq_size(self, i, op, mq, channels: int, what: str) -> None:
        if mq.m.size not in (1, channels):
            self.finding("plan.shape-mismatch", self._site(i, op),
                         f"{what} scale has {mq.m.size} entries for "
                         f"{channels} output channels")

    # --------------------------------------------------------- intervals
    def record_accum(self, layer: str, kind: str, acc: Interval) -> None:
        lo, hi = acc.bounds()
        # the register passes through 0 (reset state) between accumulations
        bits = min_signed_bits(min(lo, 0.0), max(hi, 0.0))
        exact = max(abs(lo), abs(hi)) < EXACT_F32_LIMIT
        self.rows.append({"layer": layer, "kind": kind, "acc_lo": lo,
                          "acc_hi": hi, "min_accum_bits": bits,
                          "exact_f32": exact})
        if bits > self.accum_bits:
            self.finding("plan.accum-overflow", layer,
                         f"proven accumulator range [{lo:.0f}, {hi:.0f}] "
                         f"needs {bits} bits (> {self.accum_bits}-bit "
                         f"accumulator)")
        self._cross_check_module(layer, bits)

    def _cross_check_module(self, layer: str, bits: int) -> None:
        """Compare a plan row against the module-level interval proof.

        Layer names share a namespace: plan ops carry unit paths
        (``blocks.0.unit1``), module rows the leaf (``blocks.0.unit1.conv``)
        — match exact or by dotted prefix, and only when unambiguous.
        """
        if not self.module_bits:
            return
        matches = [b for k, b in self.module_bits.items()
                   if k == layer or k.startswith(layer + ".")]
        if len(matches) != 1:
            return
        self.checked_module_rows += 1
        if bits > matches[0]:
            self.finding("plan.accum-overflow", layer,
                         f"plan-derived accumulator needs {bits} bits but "
                         f"the module-level proof established {matches[0]} "
                         f"— the compiled plan diverged from the model")

    def _input(self, i, op, idx: int = 0) -> Interval:
        x = self.ranges.get(op.src[idx], Interval.unbounded())
        if not x.is_bounded:
            self.finding("datapath.unbounded-input", self._site(i, op),
                         "no quantizer upstream bounds this op's input "
                         "register")
            return Interval.grid(-1.0, 1.0)  # keep walking with a token range
        return x

    @staticmethod
    def _requant(v: Interval, mq) -> Interval:
        """Mirror the engine's MulQuant interval math on an MQParams."""
        m = mq.m
        if v.lo.size == m.size and m.ndim <= 1:
            v = Interval(v.lo.reshape(m.shape), v.hi.reshape(m.shape))
        else:
            v = v.scalar()
        v = v.scale(m)
        try:
            v = Interval(v.lo + mq.b, v.hi + mq.b)
        except ValueError:  # bias table not broadcastable against the bounds
            lo, hi = v.bounds()
            v = Interval(lo + float(np.min(mq.b)), hi + float(np.max(mq.b)))
        return v.round_half_away().clamp(mq.lo, mq.hi)

    def propagate(self) -> None:
        # ViT plans always carry the tokens op; scan it up front so the
        # attention context bound knows the sequence length (same derivation
        # as the module engine's pos_int read).
        for op in self.plan.ops:
            if op.kind == "tokens" and op.pos_int.ndim >= 2:
                self.tokens = int(op.pos_int.shape[-2])
        for i, op in enumerate(self.plan.ops):
            handler = getattr(self, f"_h_{op.kind}", None)
            if handler is None:
                self.finding("lint.unhandled-module", self._site(i, op),
                             f"no interval handler for op kind "
                             f"{op.kind!r}; range assumed preserved")
                out = self.ranges.get(op.src[0], Interval.unbounded()) \
                    if op.src else Interval.unbounded()
            else:
                out = handler(i, op)
            self.ranges[op.dst] = out

    # ----------------------------------------------- per-kind handlers
    def _h_input_quant(self, i, op) -> Interval:
        return Interval.grid(op.qlb, op.qub)

    def _h_conv_mq(self, i, op) -> Interval:
        x = self._input(i, op).scalar()
        if op.padding:
            x = x.hull_zero()  # zero padding injects 0-codes into windows
        w2d = op.weight.reshape(op.weight.shape[0], -1)
        acc = accum_bounds(w2d, x)
        self.record_accum(op.name, "conv_mq", acc)
        self._check_conv_certificate(i, op, x)
        self._check_checksum_width(i, op, x)
        return self._requant(acc, op.mq)

    def _check_conv_certificate(self, i, op, x: Interval) -> None:
        """Re-derive the compile-time reassociation certificate.

        The compiler stamped ``bound`` (worst-case accumulator magnitude
        from *its* input range) and ``exact_reassoc = bound < 2^24`` onto
        the op.  Our propagated range is at most as wide as the compiler's
        clamp-based one, so a re-derived bound that *exceeds* the stored
        certificate means the plan was mutated after compilation (e.g. an
        upstream scale widened); an ``exact_reassoc`` claim whose re-derived
        bound reaches 2^24 would let the native kernel reassociate sums
        float32 cannot represent exactly.
        """
        derived = conv_reassociation_bound(op.weight, x.bounds())
        if op.exact_reassoc and derived >= EXACT_F32_LIMIT:
            self.finding("plan.accum-overflow", self._site(i, op),
                         f"exact_reassoc certificate contradicted: re-derived "
                         f"accumulator bound {derived:.0f} reaches the 2^24 "
                         f"exact-float32 limit")
        if derived > op.bound * (1.0 + 1e-12) + 0.5:
            self.finding("plan.accum-overflow", self._site(i, op),
                         f"stale certificate: compile-time bound "
                         f"{op.bound:.0f} but the propagated input range "
                         f"re-derives {derived:.0f} — the plan no longer "
                         f"matches what the compiler proved")

    def _check_checksum_width(self, i, op, x: Interval) -> None:
        """Prove the ABFT column-checksum accumulator float64-exact.

        The sampled verifier (:mod:`repro.integrity.abft`) sums the conv
        accumulator *across* output channels and compares it, in float64,
        against the checksum row folded in at compile time.  Both sides
        (and every partial sum of either association order) are bounded by
        ``sum_o sum_k |w_ok| * max|x|``; while that stays below 2^53 each
        intermediate is an exactly representable integer, so the checksum
        comparison is an equality.  An eligible (``exact_reassoc``) conv
        whose bound reaches the limit is a ``plan.checksum-overflow``
        error — the runtime would attach a checksum it cannot trust.
        """
        lo, hi = x.bounds()
        amax = max(abs(lo), abs(hi))
        w2d = np.abs(op.weight.astype(np.float64).reshape(
            op.weight.shape[0], -1))
        bound = float(w2d.sum() * amax)
        eligible = bool(getattr(op, "exact_reassoc", False))
        safe = bound < EXACT_F64_LIMIT
        self.checksum_certs.append({
            "op": i, "layer": op.name, "kind": op.kind,
            "checksum_bound": bound, "eligible": eligible,
            "abft_safe": safe})
        if eligible and not safe:
            self.finding("plan.checksum-overflow", self._site(i, op),
                         f"checksum accumulator bound {bound:.0f} reaches "
                         f"the 2^53 exact-float64 limit; the ABFT column "
                         f"checksum would compare inexact sums")

    def _h_conv_raw(self, i, op) -> Interval:
        x = self._input(i, op).scalar()
        if op.padding:
            x = x.hull_zero()
        w2d = op.weight.reshape(op.weight.shape[0], -1)
        acc = accum_bounds(w2d, x)
        self.record_accum(op.name, "conv_raw", acc)
        self._check_conv_certificate(i, op, x)
        return acc  # the standalone mulquant that follows narrows it

    def _h_conv_mq_res(self, i, op) -> Interval:
        """Fused conv+requant+residual: the proof decomposes exactly like
        the unfused chain — conv accumulator row under the conv's name,
        residual accumulator row under the original residual op's name — so
        fusion changes no row the report (or the module cross-check) sees."""
        x = self._input(i, op, 0).scalar()
        if op.padding:
            x = x.hull_zero()
        w2d = op.weight.reshape(op.weight.shape[0], -1)
        acc = accum_bounds(w2d, x)
        self.record_accum(op.name, "conv_mq", acc)
        self._check_conv_certificate(i, op, x)
        self._check_checksum_width(i, op, x)
        a = self._requant(acc, op.mq).scalar()
        s = self._input(i, op, 1).scalar()
        if op.smq is not None:
            s = self._requant(s, op.smq).scalar()
        merged = a + s
        self.record_accum(op.res_name, "residual", merged)
        return (merged.divide(op.res_scale).round_half_away()
                .clamp(op.res_lo, op.res_hi))

    def _h_linear_mq(self, i, op) -> Interval:
        x = self._input(i, op).scalar()
        w2d = op.weight.reshape(op.weight.shape[0], -1)
        acc = accum_bounds(w2d, x)
        self.record_accum(op.name, "linear_mq", acc)
        return self._requant(acc, op.mq)

    def _h_mulquant(self, i, op) -> Interval:
        return self._requant(self._input(i, op), op.mq)

    def _h_residual(self, i, op) -> Interval:
        a = self._input(i, op, 0).scalar()
        s = self._input(i, op, 1).scalar()
        acc = a + s
        self.record_accum(op.name, "residual", acc)
        return acc.divide(op.res_scale).round_half_away().clamp(op.lo, op.hi)

    def _h_maxpool(self, i, op) -> Interval:
        return self._input(i, op)

    def _h_gap_mq(self, i, op) -> Interval:
        # mean of values in [lo, hi] stays in [lo, hi]; mq re-rounds it
        return self._requant(self._input(i, op).scalar(), op.mq)

    def _h_tokens(self, i, op) -> Interval:
        x = self._input(i, op)
        tok = x.hull(Interval.of_array(op.cls_int))
        tok = tok + Interval.of_array(op.pos_int)
        return tok.clamp(float(op.qlb), float(op.qub))

    def _h_attention(self, i, op) -> Interval:
        x = self._input(i, op).scalar()
        acc = accum_bounds(op.qkv_w.reshape(op.qkv_w.shape[0], -1), x)
        self.record_accum(f"{op.name}.qkv", "linear_mq", acc)
        t = self._requant(acc, op.mq_qkv).scalar()
        q = k = v = t  # q/k/v share the clamp range of mq_qkv

        scores = (q * k).scale(float(op.head_dim))
        self.record_accum(f"{op.name}.scores", "matmul_qk", scores)
        s = self._requant(scores, op.mq_score)

        span = len(op.softmax_table) - 1
        s_lo, s_hi = s.bounds()
        if s_hi - s_lo > span:
            self.finding("contract.bitwidth-mismatch", self._site(i, op),
                         f"score range spans {s_hi - s_lo:.0f} codes but the "
                         f"softmax LUT covers {span}")
        # probs = round(e * 2^pb / sum(e)) <= 2^pb (one-hot row saturates it)
        p_hi = float(1 << op.prob_bits)

        # context probs @ V: the LUT normalizes each row to ~2^prob_bits
        # total mass (each entry rounds by at most 1/2), so the probability-
        # sum bound is far tighter than L * max.
        if self.tokens is None:
            self.finding("lint.unhandled-module",
                         f"{self._site(i, op)}.context",
                         "sequence length unknown; using prob-sum upper "
                         "bound only")
            s_max, s_min = p_hi, 0.0
        else:
            s_max = min(self.tokens * p_hi, p_hi + self.tokens / 2.0)
            s_min = max(0.0, p_hi - self.tokens / 2.0)
        v_lo, v_hi = v.bounds()
        ctx_hi = s_max * v_hi if v_hi >= 0 else s_min * v_hi
        ctx_lo = s_max * v_lo if v_lo <= 0 else s_min * v_lo
        ctx = Interval(ctx_lo, ctx_hi)
        self.record_accum(f"{op.name}.context", "matmul_attn_v", ctx)
        c = self._requant(ctx, op.mq_ctx).scalar()

        acc = accum_bounds(op.proj_w.reshape(op.proj_w.shape[0], -1), c)
        self.record_accum(f"{op.name}.proj", "linear_mq", acc)
        return self._requant(acc, op.mq_proj)

    def _h_mlp(self, i, op) -> Interval:
        x = self._input(i, op).scalar()
        acc = accum_bounds(op.fc1_w.reshape(op.fc1_w.shape[0], -1), x)
        self.record_accum(f"{op.name}.fc1", "linear_mq", acc)
        h = self._requant(acc, op.mq_fc1)
        h_lo, h_hi = h.bounds()
        if h_lo < op.gelu_qlb or h_hi > op.gelu_qub:
            self.finding("contract.bitwidth-mismatch", self._site(i, op),
                         f"fc1 output range [{h_lo:.0f}, {h_hi:.0f}] exceeds "
                         f"the GELU LUT grid [{op.gelu_qlb}, {op.gelu_qub}]")
        g = Interval.of_array(op.gelu_table)  # exact: the table is the layer
        acc = accum_bounds(op.fc2_w.reshape(op.fc2_w.shape[0], -1), g)
        self.record_accum(f"{op.name}.fc2", "linear_mq", acc)
        return self._requant(acc, op.mq_fc2)

    def _h_head(self, i, op) -> Interval:
        x = self._input(i, op).scalar()
        acc = accum_bounds(op.weight.reshape(op.weight.shape[0], -1), x)
        self.record_accum(f"{op.name}.linear", "linear_mq", acc)
        return self._requant(acc, op.mq)

    def _h_call_module(self, i, op) -> Interval:
        mod = op.module
        qlb = getattr(mod, "out_qlb", None)
        qub = getattr(mod, "out_qub", None)
        if qlb is not None and qub is not None and (qlb or qub):
            self.finding("lint.instant-layernorm", self._site(i, op),
                         "instant-statistics LayerNorm normalizes in float "
                         "at deploy")
            return Interval.grid(float(qlb), float(qub))
        self.finding("lint.unhandled-module", self._site(i, op),
                     f"interpreted module {type(mod).__name__} has no "
                     f"output grid; range assumed preserved")
        return self._input(i, op)

    # ----------------------------------------------------------- shifts
    def check_shifts(self) -> None:
        for i, op in enumerate(self.plan.ops):
            for param, mq in self._mq_params(op):
                self.certs.append(self._shift_certificate(i, op, param, mq))

    @staticmethod
    def _mq_params(op) -> List[Tuple[str, object]]:
        named = [("mq", "mq"), ("smq", "smq"),
                 ("mq_qkv", "mq_qkv"), ("mq_score", "mq_score"),
                 ("mq_ctx", "mq_ctx"), ("mq_proj", "mq_proj"),
                 ("mq_fc1", "mq_fc1"), ("mq_fc2", "mq_fc2")]
        return [(label, getattr(op, attr))
                for label, attr in named if getattr(op, attr, None) is not None]

    def _shift_certificate(self, i, op, param: str, mq) -> Dict:
        m = np.asarray(mq.m, dtype=np.float64).reshape(-1)
        positive = bool(np.all(m > 0))
        if positive:
            exps = np.round(np.log2(m))
            po2 = bool(np.all(np.exp2(exps) == m))
        else:
            exps, po2 = None, False
        bias_int = bool(np.all(np.asarray(mq.b) == np.round(mq.b)))
        cert = {
            "op": i, "layer": op.name, "param": param,
            "channels": int(m.size),
            "po2": po2,
            "bias_integral": bias_int,
            "shift_ok": po2 and bias_int,
            "shifts": ([int(e) for e in exps] if po2 else None),
        }
        if self.require_po2 and not cert["shift_ok"]:
            why = ("scale is not an exact power of two" if not po2
                   else "bias is not integral")
            self.finding("plan.shift-inexact",
                         f"{self._site(i, op)}.{param}",
                         f"{why}; the shift-only po2 deploy mode cannot "
                         f"represent this requant exactly")
        return cert

    # -------------------------------------------------------------- run
    def run(self) -> PlanVerificationReport:
        live = plan_liveness(self.plan)
        self.check_structure(live)
        self.check_slots(live)
        self.check_shapes()
        self.propagate()
        self.check_shifts()
        return PlanVerificationReport(
            model_name=self.plan.model_name,
            signature=self.plan.signature(),
            num_ops=len(self.plan.ops),
            num_regs=self.plan.num_regs,
            findings=self.findings,
            rows=self.rows,
            shift_certificates=self.certs,
            checksum_certificates=self.checksum_certs,
            liveness=live,
            checked_module_rows=self.checked_module_rows,
            compile_spec=(spec.to_json()
                          if (spec := getattr(self.plan, "spec", None))
                          is not None else None),
        )


def verify_plan(plan, accum_bits: int = 32,
                input_shape: Optional[Tuple[int, ...]] = None,
                module_bits: Optional[Dict[str, int]] = None,
                require_po2: bool = False) -> PlanVerificationReport:
    """Statically verify a compiled :class:`~repro.runtime.executor.Plan`.

    Parameters
    ----------
    accum_bits:
        Accumulator register width to prove MAC sites against.
    input_shape:
        Per-sample input shape (e.g. ``(3, 32, 32)``); enables the shape
        pass (wiring/rank/channel-count checks).  Interval and dataflow
        proofs run without it.
    module_bits:
        ``LintReport.min_accum_bits()`` of the corresponding model — plan
        rows whose proven width exceeds the module-level proof are flagged
        (the compiled plan diverged from the model it was compiled from).
    require_po2:
        Treat a non-power-of-two requant scale as an error (the gate for
        the shift-only po2 deploy mode).
    """
    return _PlanVerifier(plan, accum_bits=accum_bits, require_po2=require_po2,
                         module_bits=module_bits,
                         input_shape=input_shape).run()
