"""Static verification of the integer deploy path (``repro.cli lint``).

Three passes, no input data required:

* :mod:`repro.lint.engine` — interval abstract interpretation proving
  worst-case accumulator ranges and minimum safe register widths;
* :mod:`repro.lint.contracts` — structural deploy contracts (fusion
  completeness, fixed-point faithfulness, integer-only state);
* :mod:`repro.lint.purity` — AST lint holding the deploy-path *sources* to
  the integer-only invariant (runs with no model at all);
* :mod:`repro.lint.plan` — plan-IR verifier over compiled
  :class:`~repro.runtime.executor.Plan` programs: register dataflow /
  liveness, arena no-alias soundness, accumulator overflow proofs and
  power-of-two shift certificates.

Findings share the stable rule catalog in :mod:`repro.lint.findings`.
"""
from repro.lint.contracts import check_contracts, model_kind
from repro.lint.engine import IntervalEngine, IntervalReport, lint_intervals
from repro.lint.findings import (
    ERROR,
    INFO,
    RULES,
    WARN,
    Finding,
    findings_summary,
    findings_to_json,
    has_errors,
    make_finding,
    reaches_severity,
    render_findings,
    sort_findings,
)
from repro.lint.intervals import Interval, accum_bounds, min_signed_bits
from repro.lint.plan import (
    PlanLiveness,
    PlanVerificationError,
    PlanVerificationReport,
    plan_liveness,
    verify_plan,
)
from repro.lint.purity import lint_purity
from repro.lint.runner import LintReport, lint_model, lint_sources

__all__ = [
    "ERROR", "WARN", "INFO", "RULES", "Finding",
    "make_finding", "sort_findings", "has_errors", "reaches_severity",
    "findings_summary", "findings_to_json", "render_findings",
    "Interval", "accum_bounds", "min_signed_bits",
    "IntervalEngine", "IntervalReport", "lint_intervals",
    "check_contracts", "model_kind",
    "lint_purity",
    "LintReport", "lint_model", "lint_sources",
    "PlanLiveness", "PlanVerificationError", "PlanVerificationReport",
    "plan_liveness", "verify_plan",
]
