"""Packed qint container."""
import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.export.qint import dequantize, load_qint, pack_qint, save_qint, unpack_qint


class TestPack:
    def test_8bit_payload_size(self):
        payload, header = pack_qint(np.zeros((4, 4)), bits=8)
        assert len(payload) == 16
        assert header["stored_bits"] == 8

    def test_sub_byte_uses_int8_container(self):
        _, header = pack_qint(np.zeros(4), bits=4)
        assert header["stored_bits"] == 8

    def test_16bit_container(self):
        payload, header = pack_qint(np.array([1000, -1000]), bits=12)
        assert header["stored_bits"] == 16
        assert len(payload) == 4

    def test_range_check(self):
        with pytest.raises(ValueError):
            pack_qint(np.array([300]), bits=8)

    def test_roundtrip(self, rng):
        x = rng.integers(-8, 8, (3, 7))
        payload, header = pack_qint(x, bits=4)
        np.testing.assert_array_equal(unpack_qint(payload, header), x)

    def test_dequantize_uses_scale(self):
        payload, header = pack_qint(np.array([4]), bits=8, scale=0.25)
        x = unpack_qint(payload, header)
        np.testing.assert_allclose(dequantize(x, header), [1.0])


class TestFiles:
    def test_save_load(self, tmp_path, rng):
        x = rng.integers(-128, 128, (5, 5))
        save_qint(str(tmp_path / "w"), x, bits=8, scale=0.1)
        back, header = load_qint(str(tmp_path / "w"))
        np.testing.assert_array_equal(back, x)
        assert header["scale"] == pytest.approx(0.1)


@settings(max_examples=40, deadline=None)
@given(st.integers(2, 16), st.lists(st.integers(-100, 100), min_size=1, max_size=32))
def test_qint_roundtrip_property(bits, vals):
    lo, hi = -(1 << (bits - 1)), (1 << (bits - 1)) - 1
    arr = np.clip(np.array(vals), lo, hi)
    payload, header = pack_qint(arr, bits=bits)
    np.testing.assert_array_equal(unpack_qint(payload, header), arr)
