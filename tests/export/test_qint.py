"""Packed qint container."""
import json

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.export.errors import (ChecksumMismatch, HeaderMismatch,
                                 TruncatedArtifact)
from repro.export.qint import (dequantize, load_qint, pack_qint, save_qint,
                               unpack_qint, validate_header)


class TestPack:
    def test_8bit_payload_size(self):
        payload, header = pack_qint(np.zeros((4, 4)), bits=8)
        assert len(payload) == 16
        assert header["stored_bits"] == 8

    def test_sub_byte_uses_int8_container(self):
        _, header = pack_qint(np.zeros(4), bits=4)
        assert header["stored_bits"] == 8

    def test_16bit_container(self):
        payload, header = pack_qint(np.array([1000, -1000]), bits=12)
        assert header["stored_bits"] == 16
        assert len(payload) == 4

    def test_range_check(self):
        with pytest.raises(ValueError):
            pack_qint(np.array([300]), bits=8)

    def test_roundtrip(self, rng):
        x = rng.integers(-8, 8, (3, 7))
        payload, header = pack_qint(x, bits=4)
        np.testing.assert_array_equal(unpack_qint(payload, header), x)

    def test_dequantize_uses_scale(self):
        payload, header = pack_qint(np.array([4]), bits=8, scale=0.25)
        x = unpack_qint(payload, header)
        np.testing.assert_allclose(dequantize(x, header), [1.0])


class TestFiles:
    def test_save_load(self, tmp_path, rng):
        x = rng.integers(-128, 128, (5, 5))
        save_qint(str(tmp_path / "w"), x, bits=8, scale=0.1)
        back, header = load_qint(str(tmp_path / "w"))
        np.testing.assert_array_equal(back, x)
        assert header["scale"] == pytest.approx(0.1)


class TestMangledHeaders:
    """Regression: load_qint used to reshape() blindly off the header, so a
    mangled header surfaced as a numpy ValueError (or worse, silently decoded
    garbage).  Every inconsistency must now raise a typed ArtifactError."""

    def _saved(self, tmp_path, rng, bits=8):
        x = rng.integers(-100, 100, (4, 6))
        save_qint(str(tmp_path / "w"), x, bits=bits)
        return str(tmp_path / "w"), x

    def _mangle(self, base, **edits):
        with open(base + ".json") as f:
            header = json.load(f)
        for k, v in edits.items():
            if v is None:
                header.pop(k, None)
            else:
                header[k] = v
        with open(base + ".json", "w") as f:
            json.dump(header, f)

    def test_wrong_element_count_is_header_mismatch(self, tmp_path, rng):
        base, _ = self._saved(tmp_path, rng)
        self._mangle(base, shape=[4, 7])        # payload holds 24, header says 28
        with pytest.raises(TruncatedArtifact):
            load_qint(base)
        self._mangle(base, shape=[2, 6])        # payload longer than declared
        with pytest.raises(HeaderMismatch):
            load_qint(base)

    def test_missing_and_nonnumeric_fields(self, tmp_path, rng):
        base, _ = self._saved(tmp_path, rng)
        self._mangle(base, shape=None)
        with pytest.raises(HeaderMismatch):
            load_qint(base)
        self._mangle(base, shape=[4, "six"])
        with pytest.raises(HeaderMismatch):
            load_qint(base)

    def test_bits_out_of_container_range(self, tmp_path, rng):
        base, _ = self._saved(tmp_path, rng)
        self._mangle(base, bits=1)              # below the minimum of 2
        with pytest.raises(HeaderMismatch):
            load_qint(base)
        self._mangle(base, bits=12)             # wider than the 8-bit container
        with pytest.raises(HeaderMismatch):
            load_qint(base)

    def test_unknown_container_and_byteorder(self, tmp_path, rng):
        base, _ = self._saved(tmp_path, rng)
        self._mangle(base, stored_bits=12)
        with pytest.raises(HeaderMismatch):
            load_qint(base)
        self._mangle(base, stored_bits=8, byteorder="big")
        with pytest.raises(HeaderMismatch):
            load_qint(base)

    def test_values_outside_declared_bits(self, tmp_path, rng):
        base, _ = self._saved(tmp_path, rng, bits=8)
        self._mangle(base, bits=4)  # payload holds values beyond 4-bit range
        with pytest.raises(HeaderMismatch):
            load_qint(base)

    def test_truncated_payload(self, tmp_path, rng):
        base, _ = self._saved(tmp_path, rng)
        import os
        with open(base + ".bin", "r+b") as f:
            f.truncate(os.path.getsize(base + ".bin") - 5)
        with pytest.raises(TruncatedArtifact):
            load_qint(base)

    def test_header_not_json(self, tmp_path, rng):
        base, _ = self._saved(tmp_path, rng)
        with open(base + ".json", "w") as f:
            f.write("{ not json")
        with pytest.raises(HeaderMismatch):
            load_qint(base)

    def test_missing_files_are_truncated(self, tmp_path):
        with pytest.raises(TruncatedArtifact):
            load_qint(str(tmp_path / "ghost"))

    def test_payload_checksum_enforced_when_given(self, tmp_path, rng):
        base, x = self._saved(tmp_path, rng)
        from repro.export.integrity import sha256_file

        good = sha256_file(base + ".bin")
        back, _ = load_qint(base, payload_sha256=good)
        np.testing.assert_array_equal(back, x)
        with pytest.raises(ChecksumMismatch):
            load_qint(base, payload_sha256="0" * 64)

    def test_validate_header_accepts_clean(self, tmp_path, rng):
        base, x = self._saved(tmp_path, rng)
        with open(base + ".json") as f:
            header = json.load(f)
        shape, bits, stored_bits, dtype = validate_header(
            header, payload_len=x.size)
        assert shape == (4, 6) and stored_bits == 8


@settings(max_examples=40, deadline=None)
@given(st.integers(2, 16), st.lists(st.integers(-100, 100), min_size=1, max_size=32))
def test_qint_roundtrip_property(bits, vals):
    lo, hi = -(1 << (bits - 1)), (1 << (bits - 1)) - 1
    arr = np.clip(np.array(vals), lo, hi)
    payload, header = pack_qint(arr, bits=bits)
    np.testing.assert_array_equal(unpack_qint(payload, header), arr)
