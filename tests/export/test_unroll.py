"""PE-array memory-bank unrolling."""
import json
import os

import numpy as np
import pytest

from repro.export.formats import parse_hex
from repro.export.unroll import PEArraySpec, reassemble, unroll_conv_weight, unroll_matrix, write_banks


@pytest.fixture
def spec():
    return PEArraySpec(rows=4, cols=8, word_bits=8)


class TestUnroll:
    def test_bank_count(self, spec, rng):
        w = rng.integers(-8, 8, (10, 20))
        banks = unroll_matrix(w, spec)
        assert len(banks) == 3 * 3  # ceil(10/4) x ceil(20/8)

    def test_tiles_zero_padded(self, spec, rng):
        w = rng.integers(1, 8, (5, 9))  # strictly positive values
        banks = unroll_matrix(w, spec)
        last = [b for b in banks if b["row"] == 1 and b["col"] == 1][0]
        assert last["data"].shape == (4, 8)
        assert (last["data"][1:] == 0).all()  # rows 5..7 padding

    def test_roundtrip(self, spec, rng):
        w = rng.integers(-128, 128, (11, 19))
        banks = unroll_matrix(w, spec)
        np.testing.assert_array_equal(reassemble(banks, w.shape, spec), w)

    def test_conv_weight_flattening(self, spec, rng):
        w = rng.integers(-8, 8, (6, 3, 3, 3)).astype(np.float32)
        banks = unroll_conv_weight(w, spec)
        back = reassemble(banks, (6, 27), spec)
        np.testing.assert_array_equal(back, w.reshape(6, 27))

    def test_non_2d_raises(self, spec):
        with pytest.raises(ValueError):
            unroll_matrix(np.zeros((2, 2, 2)), spec)
        with pytest.raises(ValueError):
            unroll_conv_weight(np.zeros((2, 2)), spec)


class TestWriteBanks:
    def test_files_and_index(self, spec, tmp_path, rng):
        w = rng.integers(-8, 8, (4, 8))
        banks = unroll_matrix(w, spec)
        index = write_banks(str(tmp_path), "conv1", banks, spec)
        assert os.path.exists(tmp_path / "conv1_banks.json")
        for entry in index["banks"]:
            assert os.path.exists(tmp_path / entry["file"])

    def test_hex_contents_reload(self, spec, tmp_path, rng):
        w = rng.integers(-128, 128, (4, 8))
        banks = unroll_matrix(w, spec)
        write_banks(str(tmp_path), "fc", banks, spec)
        with open(tmp_path / "fc_r0_c0.hex") as f:
            lines = [ln.strip() for ln in f if ln.strip()]
        vals = parse_hex(lines, 8).reshape(4, 8)
        np.testing.assert_array_equal(vals, w)

    def test_index_json_valid(self, spec, tmp_path, rng):
        banks = unroll_matrix(rng.integers(-8, 8, (4, 8)), spec)
        write_banks(str(tmp_path), "x", banks, spec)
        with open(tmp_path / "x_banks.json") as f:
            idx = json.load(f)
        assert idx["spec"]["rows"] == 4
