"""Text-format export: two's complement, hex/bin/dec round trips."""
import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.export.formats import (
    bits_needed,
    format_bin,
    format_hex,
    from_twos_complement,
    load_tensor,
    parse_bin,
    parse_hex,
    save_tensor,
    to_twos_complement,
)


class TestTwosComplement:
    def test_known_8bit(self):
        vals = np.array([0, 1, -1, 127, -128])
        np.testing.assert_array_equal(to_twos_complement(vals, 8), [0, 1, 255, 127, 128])

    def test_roundtrip(self):
        vals = np.array([-8, -1, 0, 3, 7])
        np.testing.assert_array_equal(from_twos_complement(to_twos_complement(vals, 4), 4), vals)

    def test_out_of_range_raises(self):
        with pytest.raises(ValueError):
            to_twos_complement(np.array([200]), 8)


class TestFormatting:
    def test_hex_width(self):
        lines = format_hex(np.array([-1, 15]), 8)
        assert lines == ["ff", "0f"]

    def test_hex_16bit_width(self):
        assert format_hex(np.array([-1]), 16) == ["ffff"]

    def test_bin_width(self):
        assert format_bin(np.array([-2]), 4) == ["1110"]

    def test_parse_inverts_format(self, rng):
        vals = rng.integers(-128, 128, 100)
        np.testing.assert_array_equal(parse_hex(format_hex(vals, 8), 8), vals)
        np.testing.assert_array_equal(parse_bin(format_bin(vals, 8), 8), vals)

    def test_bits_needed(self):
        assert bits_needed(np.array([0, 7])) == 4
        assert bits_needed(np.array([-8, 7])) == 4
        assert bits_needed(np.array([-9])) == 8
        assert bits_needed(np.array([127])) == 8
        assert bits_needed(np.array([128])) == 16


class TestFileIO:
    @pytest.mark.parametrize("fmt", ["dec", "hex", "bin"])
    def test_save_load_roundtrip(self, tmp_path, rng, fmt):
        x = rng.integers(-128, 128, (4, 5)).astype(np.int64)
        path = str(tmp_path / f"w.{fmt}")
        save_tensor(path, x, fmt, 8)
        back = load_tensor(path, fmt, 8, shape=(4, 5))
        np.testing.assert_array_equal(back, x)

    def test_unknown_format_raises(self, tmp_path):
        with pytest.raises(ValueError):
            save_tensor(str(tmp_path / "x"), np.zeros(3), "oct", 8)


@settings(max_examples=50, deadline=None)
@given(st.lists(st.integers(-(2 ** 15), 2 ** 15 - 1), min_size=1, max_size=64))
def test_hex_bin_roundtrip_property(vals):
    arr = np.array(vals)
    np.testing.assert_array_equal(parse_hex(format_hex(arr, 16), 16), arr)
    np.testing.assert_array_equal(parse_bin(format_bin(arr, 16), 16), arr)
