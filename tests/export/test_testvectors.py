"""RTL golden test-vector generation."""
import json
import os

import numpy as np
import pytest

from repro.core.qconfig import QConfig
from repro.core.qmodels import QConvBNReLU, quantize_model
from repro.core.t2c import T2C, calibrate_model
from repro.export.formats import load_tensor
from repro.export.testvectors import generate_model_vectors, generate_unit_vectors
from repro.tensor import Tensor, no_grad


@pytest.fixture
def fused_model(resnet20_with_stats, tiny_data):
    train, _ = tiny_data
    qm = quantize_model(resnet20_with_stats, QConfig(8, 8))
    calibrate_model(qm, [train.images[:64]])
    T2C(qm).fuse()
    return qm


class TestUnitVectors:
    def test_files_written(self, fused_model, tmp_path):
        unit = fused_model.stem
        manifest = generate_unit_vectors(unit, (3, 32, 32), str(tmp_path), "stem", n_vectors=2)
        for f in manifest["files"].values():
            assert os.path.exists(tmp_path / f)
        assert os.path.exists(tmp_path / "stem_vectors.json")

    def test_expected_matches_golden_model(self, fused_model, tmp_path):
        unit = fused_model.stem
        manifest = generate_unit_vectors(unit, (3, 32, 32), str(tmp_path), "stem",
                                         n_vectors=2, seed=3)
        x = load_tensor(str(tmp_path / manifest["files"]["input"]), "hex",
                        manifest["bits"]["input"], shape=(2, 3, 32, 32))
        expected = load_tensor(str(tmp_path / manifest["files"]["expected"]), "hex",
                               manifest["bits"]["output"])
        with no_grad():
            y = unit(Tensor(x.astype(np.float32))).data
        np.testing.assert_array_equal(y.reshape(-1), expected)

    def test_requires_fused_unit(self, resnet20_with_stats, tmp_path):
        qm = quantize_model(resnet20_with_stats, QConfig(8, 8))
        with pytest.raises(RuntimeError):
            generate_unit_vectors(qm.stem, (3, 32, 32), str(tmp_path), "x")

    def test_mulquant_metadata_recorded(self, fused_model, tmp_path):
        manifest = generate_unit_vectors(fused_model.stem, (3, 32, 32), str(tmp_path), "s")
        assert "shift" in manifest["mulquant"]
        assert len(manifest["mulquant"]["scale_raw"]) == fused_model.stem.conv.out_channels


class TestModelVectors:
    def test_index_covers_units(self, fused_model, tiny_data, tmp_path):
        _, test = tiny_data
        index = generate_model_vectors(fused_model, test.images[:1], str(tmp_path), max_units=3)
        assert len(index["units"]) == 3
        with open(tmp_path / "vectors_index.json") as f:
            assert json.load(f)["units"]

    def test_model_forward_intact_after_tracing(self, fused_model, tiny_data, tmp_path):
        _, test = tiny_data
        x = Tensor(test.images[:4])
        with no_grad():
            before = fused_model(x).data
        generate_model_vectors(fused_model, test.images[:1], str(tmp_path), max_units=2)
        with no_grad():
            after = fused_model(x).data
        np.testing.assert_array_equal(before, after)
