"""Model-level export writer + size reporting."""
import json
import os

import numpy as np
import pytest

from repro.export.report import compression_report, model_size_mb
from repro.export.writer import export_state_dict
from repro.models import build_model


class TestWriter:
    def test_manifest_lists_all_tensors(self, tmp_path, rng):
        state = {"a.weight": rng.integers(-8, 8, (3, 3)).astype(np.float32),
                 "b.bias": rng.integers(-8, 8, 5).astype(np.float32)}
        manifest = export_state_dict(state, str(tmp_path), formats=("dec", "hex"))
        assert set(manifest["tensors"]) == {"a.weight", "b.bias"}
        assert (tmp_path / "manifest.json").exists()

    def test_integer_tensor_roundtrip_via_files(self, tmp_path, rng):
        from repro.export.formats import load_tensor
        x = rng.integers(-100, 100, (4, 4)).astype(np.float32)
        manifest = export_state_dict({"w": x}, str(tmp_path), formats=("hex",))
        entry = manifest["tensors"]["w"]
        back = load_tensor(os.path.join(tmp_path, entry["files"]["hex"]),
                           "hex", entry["bits"], shape=entry["shape"])
        np.testing.assert_array_equal(back, x)

    def test_float_tensor_flagged(self, tmp_path):
        manifest = export_state_dict({"scale": np.array([0.123], dtype=np.float32)}, str(tmp_path))
        assert manifest["tensors"]["scale"]["integer"] is False

    def test_qint_format(self, tmp_path, rng):
        x = rng.integers(-8, 8, 10).astype(np.float32)
        export_state_dict({"w": x}, str(tmp_path), formats=("qint",))
        assert (tmp_path / "w.qint.bin").exists()
        assert (tmp_path / "w.qint.json").exists()

    def test_manifest_json_parseable(self, tmp_path, rng):
        export_state_dict({"w": np.ones(4, dtype=np.float32)}, str(tmp_path))
        with open(tmp_path / "manifest.json") as f:
            data = json.load(f)
        assert "tensors" in data


class TestValidation:
    def test_clean_export_has_empty_lint(self, tmp_path, rng):
        x = rng.integers(-8, 8, (3, 3)).astype(np.float32)
        manifest = export_state_dict({"w": x}, str(tmp_path),
                                     formats=("dec", "hex", "qint"))
        assert manifest["lint"]["findings"] == []
        assert manifest["lint"]["summary"]["warnings"] == 0

    def test_declared_width_too_small_warns_and_widens(self, tmp_path, rng):
        from repro.export.formats import load_tensor
        x = rng.integers(-100, 100, (4, 4)).astype(np.float32)
        x[0, 0] = 100  # needs 8 bits; declare only 4
        manifest = export_state_dict({"w": x}, str(tmp_path), formats=("hex",),
                                     bits_map={"w": 4})
        rules = [f["rule"] for f in manifest["lint"]["findings"]]
        assert rules == ["export.width-overflow"]
        # files were widened, so they still decode exactly
        entry = manifest["tensors"]["w"]
        assert entry["bits"] >= 8
        back = load_tensor(os.path.join(tmp_path, entry["files"]["hex"]),
                           "hex", entry["bits"], shape=entry["shape"])
        np.testing.assert_array_equal(back, x)

    def test_declared_width_sufficient_is_kept(self, tmp_path, rng):
        x = rng.integers(-8, 8, 6).astype(np.float32)
        manifest = export_state_dict({"w": x}, str(tmp_path), formats=("dec",),
                                     bits_map={"w": 16})
        assert manifest["tensors"]["w"]["bits"] == 16
        assert manifest["lint"]["findings"] == []

    def test_validation_covers_all_formats(self, tmp_path, rng):
        x = rng.integers(-1000, 1000, (2, 5)).astype(np.float32)
        manifest = export_state_dict({"w": x}, str(tmp_path),
                                     formats=("dec", "hex", "bin", "qint"))
        assert manifest["lint"]["findings"] == []


class TestReport:
    def test_model_size_fp32(self):
        m = build_model("resnet20", width=16)
        mb = model_size_mb(m)
        n = m.num_parameters()
        assert mb == pytest.approx(n * 4 / 1e6)

    def test_model_size_scales_with_bits(self):
        m = build_model("resnet20", width=16)
        assert model_size_mb(m, 4) == pytest.approx(model_size_mb(m, 8) / 2)

    def test_compression_report_ratio(self):
        m = build_model("resnet20", width=8)
        rep = compression_report(m, wbit=8, abit=8)
        assert rep["ratio"] == pytest.approx(4.0, rel=0.01)
        rep4 = compression_report(m, wbit=4, abit=4)
        assert rep4["ratio"] == pytest.approx(8.0, rel=0.01)

    def test_extra_params_counted(self):
        m = build_model("resnet20", width=8)
        base = compression_report(m, 8, 8)["int_mb"]
        extra = compression_report(m, 8, 8, extra_int16_params=1000)["int_mb"]
        assert extra == pytest.approx(base + 0.002)
