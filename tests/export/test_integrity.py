"""Checksummed artifact store: verified round-trips, corruption detection,
atomic publication (crash mid-export leaves no partially-visible dir)."""
import json
import os

import numpy as np
import pytest

from repro.export import (ChecksumMismatch, HeaderMismatch, StaleManifest,
                          TruncatedArtifact, load_state_dict, manifest_digest,
                          read_manifest, verify_artifacts)
from repro.export.writer import export_state_dict

ALL_FORMATS = ("dec", "hex", "bin", "qint")


def _export(tmp_path, rng, formats=ALL_FORMATS, name="art"):
    state = {"a_weight": rng.integers(-8, 8, (3, 4)).astype(np.float32),
             "b_bias": rng.integers(-100, 100, 7).astype(np.float32),
             "s_scale": np.linspace(0.1, 0.9, 5).astype(np.float32)}
    out = str(tmp_path / name)
    manifest = export_state_dict(state, out, formats=formats,
                                 bits_map={"a_weight": 5})
    return out, state, manifest


def _rules(report):
    return sorted({f.rule for f in report.findings})


class TestCleanRoundtrip:
    @pytest.mark.parametrize("fmt", ALL_FORMATS)
    def test_each_format_verifies_and_loads(self, tmp_path, rng, fmt):
        out, state, _ = _export(tmp_path, rng, formats=(fmt,))
        report = verify_artifacts(out)
        assert report.ok and report.findings == []
        assert report.tensors_checked == 3 and report.files_checked >= 3
        back = load_state_dict(out)
        np.testing.assert_array_equal(back["a_weight"],
                                      state["a_weight"].astype(np.int64))
        np.testing.assert_array_equal(back["b_bias"],
                                      state["b_bias"].astype(np.int64))
        np.testing.assert_allclose(back["s_scale"], state["s_scale"],
                                   rtol=1e-5)

    def test_all_formats_together(self, tmp_path, rng):
        out, state, _ = _export(tmp_path, rng)
        assert verify_artifacts(out).ok
        for fmt in ALL_FORMATS:
            back = load_state_dict(out, prefer=(fmt,))
            np.testing.assert_array_equal(
                back["a_weight"], state["a_weight"].astype(np.int64))

    def test_manifest_is_schema2_and_signed(self, tmp_path, rng):
        out, _, manifest = _export(tmp_path, rng)
        assert manifest["schema"] == 2
        assert manifest["digest"] == manifest_digest(manifest)
        on_disk = read_manifest(out)
        assert on_disk["digest"] == manifest["digest"]
        assert set(manifest["checksums"]) == {
            f for f in os.listdir(out) if f != "manifest.json"}


class TestCorruptionDetection:
    def test_flipped_byte_is_checksum_mismatch(self, tmp_path, rng):
        out, _, _ = _export(tmp_path, rng)
        path = os.path.join(out, "a_weight.qint.bin")
        data = bytearray(open(path, "rb").read())
        data[0] ^= 0xFF
        open(path, "wb").write(bytes(data))
        assert "integrity.checksum-mismatch" in _rules(verify_artifacts(out))
        with pytest.raises(ChecksumMismatch):
            load_state_dict(out)

    def test_truncated_file_is_truncated(self, tmp_path, rng):
        out, _, _ = _export(tmp_path, rng)
        path = os.path.join(out, "b_bias.dec")
        with open(path, "r+b") as f:
            f.truncate(os.path.getsize(path) // 2)
        assert "integrity.truncated" in _rules(verify_artifacts(out))
        with pytest.raises(TruncatedArtifact):
            load_state_dict(out)

    def test_missing_file_is_detected(self, tmp_path, rng):
        out, _, _ = _export(tmp_path, rng)
        os.remove(os.path.join(out, "a_weight.hex"))
        assert "integrity.missing-file" in _rules(verify_artifacts(out))
        with pytest.raises(TruncatedArtifact):
            load_state_dict(out)

    def test_edited_manifest_is_stale(self, tmp_path, rng):
        out, _, _ = _export(tmp_path, rng)
        mpath = os.path.join(out, "manifest.json")
        manifest = json.load(open(mpath))
        manifest["tensors"]["a_weight"]["bits"] = 13   # not re-signed
        json.dump(manifest, open(mpath, "w"))
        assert _rules(verify_artifacts(out)) == ["integrity.stale-manifest"]
        with pytest.raises(StaleManifest):
            load_state_dict(out)

    def test_schema_v1_manifest_is_stale(self, tmp_path, rng):
        out, _, _ = _export(tmp_path, rng)
        mpath = os.path.join(out, "manifest.json")
        manifest = json.load(open(mpath))
        manifest["schema"] = 1
        manifest["digest"] = manifest_digest(manifest)  # even re-signed
        json.dump(manifest, open(mpath, "w"))
        with pytest.raises(StaleManifest):
            read_manifest(out)

    def test_resigned_header_tamper_caught_semantically(self, tmp_path, rng):
        """The nastiest case: header + checksum + digest all patched to be
        self-consistent; only header-vs-payload validation can object."""
        from repro.export.integrity import sha256_file

        out, _, _ = _export(tmp_path, rng)
        hpath = os.path.join(out, "a_weight.qint.json")
        header = json.load(open(hpath))
        header["shape"] = [int(header["shape"][0]) + 1, header["shape"][1]]
        json.dump(header, open(hpath, "w"))
        mpath = os.path.join(out, "manifest.json")
        manifest = json.load(open(mpath))
        manifest["checksums"]["a_weight.qint.json"] = {
            "sha256": sha256_file(hpath), "bytes": os.path.getsize(hpath)}
        manifest["digest"] = manifest_digest(manifest)
        json.dump(manifest, open(mpath, "w"))
        assert not verify_artifacts(out).ok
        with pytest.raises((TruncatedArtifact, HeaderMismatch)):
            load_state_dict(out)

    def test_unlisted_file_is_warning_only(self, tmp_path, rng):
        out, _, _ = _export(tmp_path, rng)
        open(os.path.join(out, "stray.txt"), "w").write("not an artifact")
        report = verify_artifacts(out)
        assert report.ok
        assert _rules(report) == ["integrity.unlisted-file"]

    def test_missing_directory_and_manifest(self, tmp_path):
        report = verify_artifacts(str(tmp_path / "nope"))
        assert not report.ok
        with pytest.raises(TruncatedArtifact):
            read_manifest(str(tmp_path / "nope"))
        os.makedirs(tmp_path / "empty")
        with pytest.raises(TruncatedArtifact):
            read_manifest(str(tmp_path / "empty"))


class TestAtomicPublication:
    def test_no_staging_dir_left_after_success(self, tmp_path, rng):
        _export(tmp_path, rng)
        assert [n for n in os.listdir(tmp_path)] == ["art"]

    def test_failed_export_cleans_staging_and_leaves_no_target(
            self, tmp_path, rng, monkeypatch):
        import repro.export.writer as writer

        def boom(*a, **k):
            raise RuntimeError("disk on fire")
        monkeypatch.setattr(writer, "save_tensor", boom)
        with pytest.raises(RuntimeError):
            export_state_dict({"w": rng.integers(-8, 8, 4).astype(np.float32)},
                              str(tmp_path / "art"), formats=("dec",))
        assert os.listdir(tmp_path) == []

    def test_reexport_replaces_previous_atomically(self, tmp_path, rng):
        out, _, _ = _export(tmp_path, rng)
        state2 = {"only_weight": rng.integers(-4, 4, (2, 2)).astype(np.float32)}
        export_state_dict(state2, out, formats=("dec",))
        report = verify_artifacts(out)
        assert report.ok and report.tensors_checked == 1
        assert sorted(load_state_dict(out)) == ["only_weight"]

    @pytest.mark.parametrize("die_on_call", [1, 3])
    def test_sigkill_mid_export_leaves_target_absent_or_valid(
            self, tmp_path, rng, die_on_call):
        """Hard-kill (os._exit, no unwinding, no cleanup) partway through
        writing tensor files: the target directory must be either absent or
        a fully valid artifact set — never partial."""
        import repro.export.writer as writer

        out = str(tmp_path / "art")
        state = {f"t{i}_weight": rng.integers(-8, 8, (8, 8)).astype(np.float32)
                 for i in range(6)}
        pid = os.fork()
        if pid == 0:  # child — must never return into pytest
            try:
                orig = writer.save_tensor
                calls = {"n": 0}

                def dying_save(*a, **k):
                    calls["n"] += 1
                    if calls["n"] >= die_on_call:
                        os._exit(9)
                    return orig(*a, **k)

                writer.save_tensor = dying_save
                writer.export_state_dict(state, out, formats=("dec",))
            except BaseException:
                pass
            os._exit(7)   # export survived the sabotage: wrong path
        _, status = os.waitpid(pid, 0)
        assert os.WEXITSTATUS(status) == 9, "child was supposed to die mid-export"
        assert not os.path.exists(out), \
            "crash before publish must leave no visible target dir"

    def test_sigkill_mid_reexport_keeps_previous_version_valid(
            self, tmp_path, rng):
        import repro.export.writer as writer

        out, state, _ = _export(tmp_path, rng)
        before = load_state_dict(out)
        pid = os.fork()
        if pid == 0:
            try:
                writer.save_tensor = lambda *a, **k: os._exit(9)
                writer.export_state_dict(
                    {"new_weight": np.arange(4, dtype=np.float32)},
                    out, formats=("dec",))
            except BaseException:
                pass
            os._exit(7)
        _, status = os.waitpid(pid, 0)
        assert os.WEXITSTATUS(status) == 9
        report = verify_artifacts(out)
        assert report.ok, "previous artifact set must stay fully valid"
        after = load_state_dict(out)
        assert sorted(after) == sorted(before)
        np.testing.assert_array_equal(after["a_weight"], before["a_weight"])


class TestWidthOverflowTelemetry:
    def test_widened_export_notes_manifest_and_emits_warning(self, tmp_path,
                                                             rng):
        from repro import telemetry

        x = rng.integers(-100, 100, (4, 4)).astype(np.float32)
        x[0, 0] = 100  # needs 8 bits, declared 4
        with telemetry.TelemetrySession(out_dir=None) as session:
            manifest = export_state_dict({"w": x}, str(tmp_path / "art"),
                                         formats=("dec",), bits_map={"w": 4})
        assert manifest["tensors"]["w"]["widened_from"] == 4
        events = [e for e in session.events.events
                  if e["kind"] == "export_width_overflow"]
        assert len(events) == 1
        assert events[0]["level"] == "warning"
        assert events[0]["declared_bits"] == 4
        assert events[0]["widened_to"] >= 8
