"""Batch augmentation transforms."""
import numpy as np
import pytest

from repro.data import transforms as T


@pytest.fixture
def batch(rng):
    return rng.standard_normal((8, 3, 16, 16)).astype(np.float32)


class TestTransforms:
    def test_flip_preserves_shape_and_content_set(self, batch, rng):
        out = T.RandomHorizontalFlip(p=1.0)(batch, rng=rng)
        np.testing.assert_array_equal(out, batch[:, :, :, ::-1])

    def test_flip_p0_identity(self, batch, rng):
        out = T.RandomHorizontalFlip(p=0.0)(batch, rng=rng)
        np.testing.assert_array_equal(out, batch)

    def test_crop_shape_preserved(self, batch, rng):
        out = T.RandomCrop(padding=2)(batch, rng=rng)
        assert out.shape == batch.shape

    def test_crop_content_from_padded_window(self, rng):
        x = np.arange(16.0, dtype=np.float32).reshape(1, 1, 4, 4)
        out = T.RandomCrop(padding=1)(x, rng=np.random.default_rng(0))
        # every output value must exist in the reflect-padded input
        padded = np.pad(x, ((0, 0), (0, 0), (1, 1), (1, 1)), mode="reflect")
        assert np.isin(out, padded).all()

    def test_color_jitter_bounded(self, batch, rng):
        out = T.ColorJitter(gain=0.1, bias=0.0)(batch, rng=rng)
        assert out.shape == batch.shape
        ratio = out / np.where(np.abs(batch) < 1e-6, 1.0, batch)
        valid = np.abs(batch) > 1e-3
        assert ratio[valid].min() > 0.85 and ratio[valid].max() < 1.15

    def test_noise_changes_values(self, batch, rng):
        out = T.GaussianNoise(0.5)(batch, rng=rng)
        assert not np.allclose(out, batch)

    def test_erasing_zeroes_a_patch(self, rng):
        x = np.ones((4, 3, 16, 16), dtype=np.float32)
        out = T.RandomErasing(p=1.0)(x, rng=rng)
        assert (out == 0).any()
        assert (x == 1).all()  # input untouched

    def test_compose_runs_in_order(self, batch, rng):
        tf = T.Compose([T.RandomHorizontalFlip(1.0), T.RandomHorizontalFlip(1.0)])
        np.testing.assert_array_equal(tf(batch, rng=rng), batch)

    def test_standard_and_ssl_factories(self, batch, rng):
        assert T.standard_train_transform()(batch, rng=rng).shape == batch.shape
        assert T.ssl_view_transform()(batch, rng=rng).shape == batch.shape
