"""Dataset / DataLoader plumbing."""
import numpy as np
import pytest

from repro.data import ArrayDataset, DataLoader


@pytest.fixture
def dataset(rng):
    return ArrayDataset(rng.standard_normal((50, 3, 8, 8)).astype(np.float32),
                        rng.integers(0, 5, 50))


class TestArrayDataset:
    def test_len_and_getitem(self, dataset):
        assert len(dataset) == 50
        x, y = dataset[3]
        assert x.shape == (3, 8, 8)

    def test_length_mismatch_raises(self, rng):
        with pytest.raises(ValueError):
            ArrayDataset(np.zeros((4, 1, 2, 2)), np.zeros(5))

    def test_subset_size_and_no_duplicates(self, dataset):
        sub = dataset.subset(20)
        assert len(sub) == 20
        # all subset images must come from the parent
        assert all((dataset.images == img).all(axis=(1, 2, 3)).any() for img in sub.images[:5])


class TestDataLoader:
    def test_batch_count(self, dataset):
        assert len(DataLoader(dataset, batch_size=16)) == 4
        assert len(DataLoader(dataset, batch_size=16, drop_last=True)) == 3

    def test_covers_all_samples(self, dataset):
        seen = sum(len(y) for _, y in DataLoader(dataset, batch_size=16))
        assert seen == 50

    def test_shuffle_changes_order_but_not_content(self, dataset):
        dl = DataLoader(dataset, batch_size=50, shuffle=True, seed=1)
        (x1, y1), = list(dl)
        assert not np.array_equal(y1, dataset.labels)
        assert sorted(y1.tolist()) == sorted(dataset.labels.tolist())

    def test_transform_applied_per_batch(self, rng):
        calls = []

        def tf(x, rng=None):
            calls.append(len(x))
            return x * 2

        ds = ArrayDataset(np.ones((10, 1, 2, 2), dtype=np.float32), np.zeros(10), transform=tf)
        batches = list(DataLoader(ds, batch_size=5))
        assert calls == [5, 5]
        np.testing.assert_array_equal(batches[0][0], 2.0)
