"""Synthetic dataset generator: determinism, structure, registry."""
import numpy as np
import pytest

from repro.data import make_dataset, SyntheticTaskSuite, SyntheticVisionDataset
from repro.data.synthetic import DATASET_SPECS


class TestGenerator:
    def test_shapes_and_dtype(self):
        ds = SyntheticVisionDataset(num_classes=5, image_size=16, seed=0)
        x, y = ds.sample(32)
        assert x.shape == (32, 3, 16, 16)
        assert x.dtype == np.float32
        assert y.shape == (32,) and y.max() < 5

    def test_deterministic_given_seeds(self):
        a = SyntheticVisionDataset(num_classes=4, seed=7).sample(16, split_seed=1)
        b = SyntheticVisionDataset(num_classes=4, seed=7).sample(16, split_seed=1)
        np.testing.assert_array_equal(a[0], b[0])
        np.testing.assert_array_equal(a[1], b[1])

    def test_different_split_seeds_differ(self):
        ds = SyntheticVisionDataset(num_classes=4, seed=7)
        a, _ = ds.sample(16, split_seed=1)
        b, _ = ds.sample(16, split_seed=2)
        assert not np.allclose(a, b)

    def test_different_task_seeds_have_different_prototypes(self):
        a = SyntheticVisionDataset(num_classes=3, seed=1)
        b = SyntheticVisionDataset(num_classes=3, seed=2)
        assert not np.allclose(a._protos, b._protos)

    def test_classes_are_separable_by_prototype_matching(self):
        """Nearest-prototype classification must beat chance by a wide margin —
        otherwise the dataset cannot support the paper's accuracy claims."""
        ds = SyntheticVisionDataset(num_classes=10, seed=3, noise=0.3)
        x, y = ds.sample(200, split_seed=9)
        protos = ds._protos.reshape(10, -1)
        # nearest prototype under correlation (translation hurts this naive
        # classifier, so the bar is modest)
        feats = x.reshape(len(x), -1)
        sims = feats @ protos.T
        acc = (sims.argmax(1) == y).mean()
        assert acc > 0.3  # 3x chance

    def test_noise_knob_monotone(self):
        lo = SyntheticVisionDataset(num_classes=3, seed=5, noise=0.01)
        hi = SyntheticVisionDataset(num_classes=3, seed=5, noise=1.0)
        xl, _ = lo.sample(64, split_seed=1)
        xh, _ = hi.sample(64, split_seed=1)
        assert xh.std() > xl.std()

    def test_splits_are_disjoint_draws(self):
        ds = SyntheticVisionDataset(num_classes=3, seed=5)
        train, test = ds.splits(64, 64)
        assert not np.allclose(train.images[:16], test.images[:16])


class TestRegistry:
    def test_all_specs_buildable(self):
        for name in DATASET_SPECS:
            ds = make_dataset(name)
            assert ds.num_classes == DATASET_SPECS[name]["num_classes"]

    def test_unknown_raises(self):
        with pytest.raises(KeyError):
            make_dataset("cifar-nope")

    def test_override(self):
        ds = make_dataset("synthetic-cifar10", num_classes=3)
        assert ds.num_classes == 3


class TestTaskSuite:
    def test_pretrain_has_more_classes(self):
        suite = SyntheticTaskSuite()
        assert suite.pretrain().num_classes == 20

    def test_downstream_tasks_distinct(self):
        suite = SyntheticTaskSuite()
        protos = [suite.downstream(n)._protos for n in suite.DOWNSTREAM[:3]]
        assert not np.allclose(protos[0][:3], protos[1][:3])

    def test_unknown_downstream_raises(self):
        with pytest.raises(KeyError):
            SyntheticTaskSuite().downstream("synthetic-mnist")
