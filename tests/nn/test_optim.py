"""Optimizers and LR schedulers."""
import numpy as np
import pytest

from repro.nn.module import Parameter
from repro.optim import SGD, Adam, AdamW, CosineAnnealingLR, MultiStepLR, StepLR, WarmupCosineLR
from repro.tensor.tensor import Tensor


def quadratic_minimize(opt_cls, steps=200, **kw):
    """Minimize ||x - 3||^2; return final distance to optimum."""
    x = Parameter(np.array([10.0, -4.0], dtype=np.float32))
    opt = opt_cls([x], **kw)
    for _ in range(steps):
        opt.zero_grad()
        loss = ((x - 3.0) ** 2.0).sum()
        loss.backward()
        opt.step()
    return float(np.abs(x.data - 3.0).max())


class TestOptimizers:
    def test_sgd_converges(self):
        assert quadratic_minimize(SGD, lr=0.1) < 1e-4

    def test_sgd_momentum_converges(self):
        assert quadratic_minimize(SGD, lr=0.05, momentum=0.9) < 1e-4

    def test_adam_converges(self):
        assert quadratic_minimize(Adam, lr=0.3) < 1e-3

    def test_adamw_converges(self):
        assert quadratic_minimize(AdamW, lr=0.3) < 1e-3

    def test_weight_decay_shrinks(self):
        x = Parameter(np.array([1.0], dtype=np.float32))
        opt = SGD([x], lr=0.1, weight_decay=1.0)
        for _ in range(10):
            opt.zero_grad()
            (x * Tensor(np.zeros(1, dtype=np.float32))).sum().backward()
            opt.step()
        assert abs(x.data[0]) < 1.0

    def test_adamw_decay_is_decoupled(self):
        # With zero gradient, AdamW still decays weights; Adam does not move
        # (m=v=0 keeps the update at exactly zero).
        xw = Parameter(np.array([1.0], dtype=np.float32))
        optw = AdamW([xw], lr=0.1, weight_decay=0.5)
        xa = Parameter(np.array([1.0], dtype=np.float32))
        opta = Adam([xa], lr=0.1, weight_decay=0.0)
        for _ in range(5):
            for x, opt in ((xw, optw), (xa, opta)):
                opt.zero_grad()
                x.grad = np.zeros(1, dtype=np.float32)
                opt.step()
        assert xw.data[0] < 1.0
        assert xa.data[0] == pytest.approx(1.0)

    def test_param_groups(self):
        a = Parameter(np.zeros(1, dtype=np.float32))
        b = Parameter(np.zeros(1, dtype=np.float32))
        opt = SGD([{"params": [a], "lr": 0.1}, {"params": [b], "lr": 0.5}], lr=0.01)
        assert opt.param_groups[0]["lr"] == 0.1
        assert opt.param_groups[1]["lr"] == 0.5

    def test_empty_params_raises(self):
        with pytest.raises(ValueError):
            SGD([], lr=0.1)

    def test_none_grad_skipped(self):
        x = Parameter(np.ones(1, dtype=np.float32))
        opt = SGD([x], lr=0.1)
        opt.step()  # no grad: should not crash or move
        assert x.data[0] == 1.0


class TestSchedulers:
    def _opt(self):
        return SGD([Parameter(np.zeros(1, dtype=np.float32))], lr=1.0)

    def test_step_lr(self):
        opt = self._opt()
        sch = StepLR(opt, step_size=2, gamma=0.1)
        lrs = []
        for _ in range(4):
            sch.step()
            lrs.append(opt.lr)
        np.testing.assert_allclose(lrs, [1.0, 0.1, 0.1, 0.01])

    def test_multistep(self):
        opt = self._opt()
        sch = MultiStepLR(opt, milestones=[2, 3], gamma=0.5)
        lrs = [0.0] * 4
        for i in range(4):
            sch.step()
            lrs[i] = opt.lr
        np.testing.assert_allclose(lrs, [1.0, 0.5, 0.25, 0.25])

    def test_cosine_endpoints(self):
        opt = self._opt()
        sch = CosineAnnealingLR(opt, t_max=10)
        for _ in range(10):
            sch.step()
        assert opt.lr == pytest.approx(0.0, abs=1e-8)

    def test_cosine_monotone_decrease(self):
        opt = self._opt()
        sch = CosineAnnealingLR(opt, t_max=20)
        prev = 1.0
        for _ in range(20):
            sch.step()
            assert opt.lr <= prev + 1e-9
            prev = opt.lr

    def test_warmup_ramps_then_decays(self):
        opt = self._opt()
        sch = WarmupCosineLR(opt, warmup=5, t_max=20)
        lrs = []
        for _ in range(20):
            sch.step()
            lrs.append(opt.lr)
        assert lrs[0] < lrs[3]           # warming up
        assert lrs[10] > lrs[-1]         # decaying after warmup
