"""Layer behaviour: Linear, Conv2d, BatchNorm2d, LayerNorm, Dropout."""
import numpy as np
import pytest

from repro import nn
from repro.tensor import Tensor, no_grad


class TestLinear:
    def test_shapes(self, rng):
        lin = nn.Linear(8, 5)
        out = lin(Tensor(rng.standard_normal((3, 8)).astype(np.float32)))
        assert out.shape == (3, 5)

    def test_no_bias(self):
        lin = nn.Linear(4, 2, bias=False)
        assert lin.bias is None
        assert len(list(lin.parameters())) == 1

    def test_3d_input(self, rng):
        lin = nn.Linear(8, 5)
        out = lin(Tensor(rng.standard_normal((2, 7, 8)).astype(np.float32)))
        assert out.shape == (2, 7, 5)


class TestConv2d:
    def test_shapes_strided(self, rng):
        conv = nn.Conv2d(3, 16, 3, stride=2, padding=1)
        out = conv(Tensor(rng.standard_normal((2, 3, 32, 32)).astype(np.float32)))
        assert out.shape == (2, 16, 16, 16)

    def test_depthwise_param_count(self):
        conv = nn.Conv2d(8, 8, 3, groups=8, bias=False)
        assert conv.weight.shape == (8, 1, 3, 3)


class TestBatchNorm2d:
    def test_training_normalizes_batch(self, rng):
        bn = nn.BatchNorm2d(4)
        x = Tensor(rng.standard_normal((16, 4, 8, 8)).astype(np.float32) * 3 + 5)
        out = bn(x)
        np.testing.assert_allclose(out.data.mean(axis=(0, 2, 3)), 0, atol=1e-4)
        np.testing.assert_allclose(out.data.std(axis=(0, 2, 3)), 1, atol=1e-2)

    def test_running_stats_update(self, rng):
        bn = nn.BatchNorm2d(2, momentum=0.5)
        x = Tensor(np.full((4, 2, 4, 4), 10.0, dtype=np.float32))
        bn(x)
        assert bn.running_mean.data[0] == pytest.approx(5.0)  # 0.5*0 + 0.5*10
        assert int(bn.num_batches_tracked.data) == 1

    def test_eval_uses_running_stats(self, rng):
        bn = nn.BatchNorm2d(2)
        bn.running_mean.data[:] = 1.0
        bn.running_var.data[:] = 4.0
        bn.eval()
        x = Tensor(np.full((1, 2, 2, 2), 3.0, dtype=np.float32))
        out = bn(x)
        np.testing.assert_allclose(out.data, (3 - 1) / 2, rtol=1e-3)

    def test_affine_params_apply(self):
        bn = nn.BatchNorm2d(1)
        bn.eval()
        bn.weight.data[:] = 2.0
        bn.bias.data[:] = 7.0
        out = bn(Tensor(np.zeros((1, 1, 2, 2), dtype=np.float32)))
        np.testing.assert_allclose(out.data, 7.0, atol=1e-2)


class TestLayerNorm:
    def test_normalizes_last_dim(self, rng):
        ln = nn.LayerNorm(16)
        x = Tensor(rng.standard_normal((4, 10, 16)).astype(np.float32) * 5 + 3)
        out = ln(x)
        np.testing.assert_allclose(out.data.mean(-1), 0, atol=1e-4)
        np.testing.assert_allclose(out.data.std(-1), 1, atol=1e-2)

    def test_running_stats_mode(self, rng):
        ln = nn.LayerNorm(8, running_stats=True, momentum=1.0)
        x = Tensor((rng.standard_normal((2, 4, 8)) * 2 + 1).astype(np.float32))
        ln.train()
        ln(x)
        # statistics tracked per position: one (mean, var) per token
        assert ln.running_mean.data.shape == (4, 1)
        assert np.any(ln.running_mean.data != 0.0)
        ln.eval()
        out_run = ln(x)
        ln2 = nn.LayerNorm(8)
        out_inst = ln2(x)
        # running-stat LN approximates instant LN but is not identical
        assert np.abs(out_run.data - out_inst.data).mean() < 1.0

    def test_running_stats_state_dict_roundtrip_after_shaping(self, rng):
        ln = nn.LayerNorm(8, running_stats=True)
        ln.train()
        ln(Tensor(rng.standard_normal((2, 4, 8)).astype(np.float32)))
        fresh = nn.LayerNorm(8, running_stats=True)
        fresh.load_state_dict(ln.state_dict())  # buffer adopts stored shape
        np.testing.assert_array_equal(fresh.running_mean.data, ln.running_mean.data)

    def test_grad_flows_to_gamma_beta(self, rng):
        ln = nn.LayerNorm(8)
        x = Tensor(rng.standard_normal((3, 8)).astype(np.float32))
        ln(x).sum().backward()
        assert ln.weight.grad is not None
        assert ln.bias.grad is not None


class TestDropoutEmbedding:
    def test_dropout_eval_identity(self, rng):
        d = nn.Dropout(0.9)
        d.eval()
        x = rng.standard_normal((4, 4)).astype(np.float32)
        np.testing.assert_array_equal(d(Tensor(x)).data, x)

    def test_embedding_lookup(self):
        e = nn.Embedding(10, 4)
        out = e(np.array([1, 1, 3]))
        assert out.shape == (3, 4)
        np.testing.assert_array_equal(out.data[0], out.data[1])


class TestAttention:
    def test_shapes(self, rng):
        attn = nn.MultiheadAttention(16, 4)
        x = Tensor(rng.standard_normal((2, 9, 16)).astype(np.float32))
        assert attn(x).shape == (2, 9, 16)

    def test_invalid_heads_raises(self):
        with pytest.raises(ValueError):
            nn.MultiheadAttention(10, 3)

    def test_grad_flows(self, rng):
        attn = nn.MultiheadAttention(8, 2)
        x = Tensor(rng.standard_normal((1, 5, 8)).astype(np.float32), requires_grad=True)
        attn(x).sum().backward()
        assert x.grad is not None
        assert attn.qkv.weight.grad is not None


class TestContainers:
    def test_sequential_order(self):
        m = nn.Sequential(nn.Linear(4, 8), nn.ReLU(), nn.Linear(8, 2))
        out = m(Tensor(np.ones((1, 4), dtype=np.float32)))
        assert out.shape == (1, 2)

    def test_sequential_index_slice(self):
        m = nn.Sequential(nn.Linear(4, 8), nn.ReLU(), nn.Linear(8, 2))
        assert isinstance(m[1], nn.ReLU)
        assert len(m[0:2]) == 2

    def test_modulelist_registers(self):
        ml = nn.ModuleList([nn.Linear(2, 2), nn.Linear(2, 2)])
        assert len(list(ml.parameters())) == 4
        with pytest.raises(RuntimeError):
            ml(Tensor(np.zeros((1, 2), dtype=np.float32)))
