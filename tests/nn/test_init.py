"""Weight initializers and seeding."""
import numpy as np
import pytest

from repro.nn import init
from repro.nn.module import Parameter
from repro.utils import seed_everything


@pytest.fixture
def w():
    return Parameter(np.zeros((64, 32, 3, 3), dtype=np.float32))


class TestInit:
    def test_kaiming_normal_std(self, w):
        init.kaiming_normal_(w, rng=np.random.default_rng(0))
        fan_in = 32 * 9
        expected = np.sqrt(2.0 / fan_in)
        assert w.data.std() == pytest.approx(expected, rel=0.1)

    def test_kaiming_uniform_bounded(self, w):
        init.kaiming_uniform_(w, rng=np.random.default_rng(0))
        fan_in = 32 * 9
        bound = np.sqrt(2.0 / (1 + 5)) * np.sqrt(3.0 / fan_in)
        assert np.abs(w.data).max() <= bound + 1e-6

    def test_xavier_uniform_bounded(self):
        w = Parameter(np.zeros((10, 20), dtype=np.float32))
        init.xavier_uniform_(w, rng=np.random.default_rng(0))
        bound = np.sqrt(6.0 / 30)
        assert np.abs(w.data).max() <= bound + 1e-6

    def test_constants(self, w):
        init.ones_(w)
        assert (w.data == 1).all()
        init.zeros_(w)
        assert (w.data == 0).all()
        init.constant_(w, 3.5)
        assert (w.data == 3.5).all()

    def test_normal_params(self):
        w = Parameter(np.zeros(10000, dtype=np.float32))
        init.normal_(w, mean=2.0, std=0.5, rng=np.random.default_rng(0))
        assert w.data.mean() == pytest.approx(2.0, abs=0.05)
        assert w.data.std() == pytest.approx(0.5, abs=0.05)

    def test_fan_for_linear(self):
        w = Parameter(np.zeros((7, 13), dtype=np.float32))
        fan_in, fan_out = init._fan(w)
        assert (fan_in, fan_out) == (13, 7)


class TestSeeding:
    def test_seed_everything_reproduces_init(self):
        seed_everything(123)
        a = Parameter(np.zeros((4, 4), dtype=np.float32))
        init.kaiming_normal_(a)
        seed_everything(123)
        b = Parameter(np.zeros((4, 4), dtype=np.float32))
        init.kaiming_normal_(b)
        np.testing.assert_array_equal(a.data, b.data)

    def test_seed_everything_reproduces_models(self):
        from repro.models import build_model
        seed_everything(7)
        m1 = build_model("resnet20", width=8)
        seed_everything(7)
        m2 = build_model("resnet20", width=8)
        for (_, p1), (_, p2) in zip(m1.named_parameters(), m2.named_parameters()):
            np.testing.assert_array_equal(p1.data, p2.data)
