"""Loss modules."""
import numpy as np
import pytest

from repro import nn
from repro.tensor import Tensor, randn


class TestCrossEntropyLoss:
    def test_matches_functional(self, rng):
        logits = randn(4, 5, rng=rng)
        targets = np.array([0, 1, 2, 3])
        mod = nn.CrossEntropyLoss()(logits, targets)
        from repro.tensor import functional as F
        fn = F.cross_entropy(logits, targets)
        assert mod.item() == pytest.approx(fn.item())

    def test_accepts_tensor_targets(self, rng):
        logits = randn(2, 3, rng=rng)
        out = nn.CrossEntropyLoss()(logits, Tensor(np.array([0, 1])))
        assert np.isfinite(out.item())


class TestMSELoss:
    def test_accepts_numpy_target(self, rng):
        pred = randn(3, 3, rng=rng)
        out = nn.MSELoss()(pred, pred.data.copy())
        assert out.item() == pytest.approx(0.0, abs=1e-7)


class TestSoftTargetKL:
    def test_zero_when_student_equals_teacher(self, rng):
        logits = randn(4, 6, rng=rng)
        loss = nn.SoftTargetKLLoss(temperature=2.0)(logits, logits)
        assert loss.item() == pytest.approx(0.0, abs=1e-5)

    def test_positive_when_different(self, rng):
        s = randn(4, 6, rng=rng)
        t = randn(4, 6, rng=np.random.default_rng(9))
        assert nn.SoftTargetKLLoss()(s, t).item() > 0

    def test_temperature_scales_gradients(self, rng):
        s = randn(4, 6, rng=rng, requires_grad=True)
        t = randn(4, 6, rng=np.random.default_rng(9))
        nn.SoftTargetKLLoss(temperature=1.0)(s, t).backward()
        g1 = np.abs(s.grad).sum()
        s.grad = None
        nn.SoftTargetKLLoss(temperature=8.0)(s, t).backward()
        g8 = np.abs(s.grad).sum()
        assert g1 != pytest.approx(g8)

    def test_teacher_gets_no_gradient(self, rng):
        s = randn(2, 4, rng=rng, requires_grad=True)
        t = randn(2, 4, rng=np.random.default_rng(1), requires_grad=True)
        nn.SoftTargetKLLoss()(s, t).backward()
        assert s.grad is not None
        assert t.grad is None
