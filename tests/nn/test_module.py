"""Module system: registration, traversal, state dicts, modes."""
import numpy as np
import pytest

from repro import nn
from repro.nn.module import Module, Parameter
from repro.tensor.tensor import Tensor


class Toy(Module):
    def __init__(self):
        super().__init__()
        self.lin = nn.Linear(4, 3)
        self.w = Parameter(np.ones(2, dtype=np.float32))
        self.register_buffer("buf", np.zeros(3, dtype=np.float32))

    def forward(self, x):
        return self.lin(x)


class TestRegistration:
    def test_parameters_found_recursively(self):
        m = Toy()
        names = dict(m.named_parameters())
        assert set(names) == {"lin.weight", "lin.bias", "w"}

    def test_buffers_found(self):
        m = Toy()
        assert "buf" in dict(m.named_buffers())

    def test_reassign_module_replaces(self):
        m = Toy()
        m.lin = nn.Linear(4, 2)
        assert m.lin.out_features == 2
        assert len(list(m.named_parameters())) == 3

    def test_register_parameter_none_removes(self):
        m = Toy()
        m.register_parameter("w", None)
        assert "w" not in dict(m.named_parameters())
        assert m.w is None

    def test_overwrite_param_with_plain_value(self):
        m = Toy()
        m.w = 5
        assert "w" not in dict(m.named_parameters())


class TestTraversal:
    def test_named_modules_paths(self):
        m = Toy()
        paths = [name for name, _ in m.named_modules()]
        assert paths == ["", "lin"]

    def test_get_set_submodule(self):
        m = nn.Sequential(nn.Linear(2, 2), nn.Sequential(nn.ReLU(), nn.Linear(2, 2)))
        sub = m.get_submodule("1.1")
        assert isinstance(sub, nn.Linear)
        m.set_submodule("1.1", nn.Identity())
        assert isinstance(m.get_submodule("1.1"), nn.Identity)

    def test_apply_visits_all(self):
        m = Toy()
        visited = []
        m.apply(lambda mod: visited.append(type(mod).__name__))
        assert "Toy" in visited and "Linear" in visited

    def test_num_parameters(self):
        m = nn.Linear(4, 3)
        assert m.num_parameters() == 4 * 3 + 3


class TestModes:
    def test_train_eval_propagates(self):
        m = Toy()
        m.eval()
        assert not m.training and not m.lin.training
        m.train()
        assert m.training and m.lin.training

    def test_zero_grad(self):
        m = Toy()
        x = Tensor(np.ones((2, 4), dtype=np.float32))
        m(x).sum().backward()
        assert m.lin.weight.grad is not None
        m.zero_grad()
        assert m.lin.weight.grad is None

    def test_requires_grad_(self):
        m = Toy()
        m.requires_grad_(False)
        assert all(not p.requires_grad for p in m.parameters())


class TestStateDict:
    def test_roundtrip(self):
        m1, m2 = Toy(), Toy()
        m2.load_state_dict(m1.state_dict())
        for (n1, p1), (n2, p2) in zip(m1.named_parameters(), m2.named_parameters()):
            np.testing.assert_array_equal(p1.data, p2.data)

    def test_state_dict_is_copy(self):
        m = Toy()
        sd = m.state_dict()
        sd["w"][:] = 99
        assert m.w.data[0] == 1.0

    def test_strict_mismatch_raises(self):
        m = Toy()
        sd = m.state_dict()
        del sd["w"]
        with pytest.raises(KeyError):
            m.load_state_dict(sd)
        m.load_state_dict(sd, strict=False)  # tolerated when not strict

    def test_shape_mismatch_raises(self):
        m = Toy()
        sd = m.state_dict()
        sd["w"] = np.zeros(5, dtype=np.float32)
        with pytest.raises(ValueError):
            m.load_state_dict(sd)
