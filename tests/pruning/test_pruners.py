"""Pruners: schedules, patterns, mask semantics, zeros-through-PTQ."""
import numpy as np
import pytest

from repro.core.qconfig import QConfig
from repro.core.qmodels import quantize_model
from repro.core.t2c import T2C, calibrate_model
from repro.models import build_model
from repro.pruning import GraNetPruner, MagnitudePruner, NMPruner, build_pruner
from repro.pruning.pruner import cubic_schedule, prunable_weights
from repro.tensor import Tensor


@pytest.fixture
def model():
    from repro.utils import seed_everything
    seed_everything(5)
    return build_model("resnet20", num_classes=10, width=8)


class TestPlumbing:
    def test_prunable_skips_first_last(self, model):
        names = [n for n, _ in prunable_weights(model)]
        all_names = [n for n, _ in prunable_weights(model, skip_first_last=False)]
        assert len(names) == len(all_names) - 2
        assert "conv1.weight" not in names
        assert not any("fc" in n for n in names)

    def test_cubic_schedule_endpoints(self):
        assert cubic_schedule(0.0, 0.8) == 0.0
        assert cubic_schedule(1.0, 0.8) == pytest.approx(0.8)
        assert cubic_schedule(0.5, 0.8) < 0.8

    def test_cubic_monotone(self):
        vals = [cubic_schedule(t, 0.9) for t in np.linspace(0, 1, 20)]
        assert all(b >= a for a, b in zip(vals, vals[1:]))

    def test_invalid_sparsity_raises(self, model):
        with pytest.raises(ValueError):
            MagnitudePruner(model, sparsity=1.0)

    def test_registry(self, model):
        for name in ("magnitude", "granet", "filter", "block"):
            assert build_pruner(name, model, sparsity=0.5) is not None
        assert build_pruner("nm", model, n=2, m=4) is not None
        with pytest.raises(KeyError):
            build_pruner("lottery", model)


class TestMagnitude:
    def test_reaches_target_sparsity(self, model):
        p = MagnitudePruner(model, sparsity=0.7)
        p.step(1.0)
        assert p.sparsity() == pytest.approx(0.7, abs=0.02)

    def test_apply_zeroes_weights(self, model):
        p = MagnitudePruner(model, sparsity=0.5)
        p.step(1.0)
        name, w = p.targets[0]
        zeros = (w.data == 0).mean()
        assert zeros > 0.2

    def test_keeps_largest_magnitudes(self, model):
        p = MagnitudePruner(model, sparsity=0.5)
        _, w = p.targets[0]
        before = np.abs(w.data).copy()
        p.step(1.0)
        mask = p.masks[p.targets[0][0]]
        # every surviving weight is >= every pruned weight (global threshold)
        if (mask == 0).any() and (mask == 1).any():
            assert before[mask == 1].min() >= before[mask == 0].max() - 1e-6

    def test_layer_scope_uniform(self, model):
        p = MagnitudePruner(model, sparsity=0.5, scope="layer")
        p.step(1.0)
        for name in p.masks:
            layer_sparsity = (p.masks[name] == 0).mean()
            assert layer_sparsity == pytest.approx(0.5, abs=0.05)

    def test_schedule_ramps(self, model):
        p = MagnitudePruner(model, sparsity=0.8)
        p.step(0.3)
        s1 = p.sparsity()
        p.step(1.0)
        assert p.sparsity() > s1 > 0


class TestNM:
    def test_2_4_gives_50_percent(self, model):
        p = NMPruner(model, n=2, m=4)
        p.step(1.0)
        assert p.sparsity() == pytest.approx(0.5, abs=0.02)

    def test_pattern_verified(self, model):
        p = NMPruner(model, n=2, m=4)
        p.step(1.0)
        assert p.verify_pattern()

    def test_group_keeps_largest(self, model):
        p = NMPruner(model, n=1, m=4)
        _, w = p.targets[0]
        p.step(1.0)
        mask = p.masks[p.targets[0][0]].reshape(w.data.shape[0], -1)
        flat = np.abs(w.data).reshape(w.data.shape[0], -1)
        k = flat.shape[1] - flat.shape[1] % 4
        groups_w = flat[:, :k].reshape(flat.shape[0], -1, 4)
        groups_m = mask[:, :k].reshape(flat.shape[0], -1, 4)
        kept_idx = groups_m.argmax(-1)
        np.testing.assert_array_equal(kept_idx, groups_w.argmax(-1))

    def test_invalid_nm_raises(self, model):
        with pytest.raises(ValueError):
            NMPruner(model, n=5, m=4)

    def test_partial_ramp_lower_sparsity(self, model):
        p = NMPruner(model, n=2, m=4)
        p.step(0.4)
        assert 0 < p.sparsity() < 0.5


class TestGraNet:
    def test_regrowth_uses_gradients(self, model):
        p = GraNetPruner(model, sparsity=0.6, regrow_frac=0.3)
        p.step(1.0)  # magnitude-only first
        name, w = p.targets[0]
        dead_before = np.flatnonzero(p.masks[name].reshape(-1) == 0)
        # fabricate a huge gradient on one dead weight: it must be revived
        grads = {n: np.zeros_like(q.data) for n, q in p.targets}
        target_flat = dead_before[0]
        grads[name].reshape(-1)[target_flat] = 1e9
        p.update_masks(0.6, grads=grads)
        assert p.masks[name].reshape(-1)[target_flat] == 1.0

    def test_sparsity_preserved_after_regrowth(self, model):
        p = GraNetPruner(model, sparsity=0.5, regrow_frac=0.2)
        grads = {n: np.random.default_rng(0).standard_normal(q.data.shape) for n, q in p.targets}
        p.step(1.0, grads=grads)
        assert p.sparsity() == pytest.approx(0.5, abs=0.05)

    def test_collect_grads_shapes(self, model):
        p = GraNetPruner(model, sparsity=0.5)
        g = p.collect_grads()
        for name, w in p.targets:
            assert g[name].shape == w.data.shape


class TestSparsityThroughDeployment:
    def test_zeros_survive_integer_conversion(self, tiny_data):
        """The paper's Table 3 claim: pruned weights land as raw zeros in the
        exported integer model."""
        from repro.utils import seed_everything
        seed_everything(6)
        train, _ = tiny_data
        model = build_model("resnet20", num_classes=10, width=8)
        model.train()
        for i in range(2):
            model(Tensor(train.images[i * 64:(i + 1) * 64]))
        model.eval()
        pruner = MagnitudePruner(model, sparsity=0.7)
        pruner.step(1.0)

        qm = quantize_model(model, QConfig(8, 8))
        calibrate_model(qm, [train.images[:64]])
        qnn = T2C(qm).nn2chip()
        int_weights = [p.data for n, p in qnn.named_parameters()
                       if n.endswith("weight") and p.data.ndim == 4]
        total = sum(w.size for w in int_weights)
        zeros = sum(int((w == 0).sum()) for w in int_weights)
        assert zeros / total > 0.5  # most pruned zeros survive quantization
