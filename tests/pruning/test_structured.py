"""Filter-wise and block-wise structured pruners."""
import numpy as np
import pytest

from repro.models import build_model
from repro.pruning.structured import BlockPruner, FilterPruner
from repro.utils import seed_everything


@pytest.fixture
def model():
    seed_everything(30)
    return build_model("resnet20", num_classes=10, width=8)


class TestFilterPruner:
    def test_whole_filters_zeroed(self, model):
        p = FilterPruner(model, sparsity=0.5)
        p.step(1.0)
        name, w = p.targets[0]
        m = p.masks[name].reshape(w.data.shape[0], -1)
        sums = m.sum(axis=1)
        assert np.isin(sums, [0, m.shape[1]]).all()  # all-or-nothing rows

    def test_filter_sparsity_matches_target(self, model):
        p = FilterPruner(model, sparsity=0.5)
        p.step(1.0)
        assert p.filter_sparsity() == pytest.approx(0.5, abs=0.1)

    def test_keeps_largest_norm_filters(self, model):
        p = FilterPruner(model, sparsity=0.25)
        name, w = p.targets[0]
        norms = np.linalg.norm(w.data.reshape(w.data.shape[0], -1), axis=1)
        p.step(1.0)
        m = p.masks[name].reshape(w.data.shape[0], -1)
        kept = m.sum(axis=1) > 0
        if kept.any() and (~kept).any():
            assert norms[kept].min() >= norms[~kept].max() - 1e-6

    def test_zero_sparsity_keeps_all(self, model):
        p = FilterPruner(model, sparsity=0.5)
        p.update_masks(0.0)
        assert p.sparsity() == 0.0


class TestBlockPruner:
    def test_block_structure(self, model):
        p = BlockPruner(model, sparsity=0.6, block=4)
        p.step(1.0)
        assert p.verify_block_structure()

    def test_reaches_target(self, model):
        p = BlockPruner(model, sparsity=0.6, block=4)
        p.step(1.0)
        assert p.sparsity() == pytest.approx(0.6, abs=0.05)

    def test_invalid_block_raises(self, model):
        with pytest.raises(ValueError):
            BlockPruner(model, sparsity=0.5, block=0)

    def test_block_size_one_equals_elementwise(self, model):
        from repro.pruning.magnitude import MagnitudePruner
        pb = BlockPruner(model, sparsity=0.5, block=1)
        pb.step(1.0)
        pm = MagnitudePruner(model, sparsity=0.5)
        pm.step(1.0)
        # block=1 is element-wise with global L1 ranking == global magnitude
        assert abs(pb.sparsity() - pm.sparsity()) < 0.02
