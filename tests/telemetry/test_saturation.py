"""Integer-datapath saturation auditing across the deploy-path clamp sites."""
import numpy as np

from repro import telemetry
from repro.core.mulquant import MulQuant
from repro.core.quantizers import MinMaxQuantizer
from repro.core.vanilla import InputQuant
from repro.tensor.tensor import Tensor


def _rows():
    return {(r["layer"], r["kind"]): r for r in telemetry.saturation_report()}


class TestMulQuantAudit:
    def test_hand_computed_clamp_count(self):
        telemetry.enable()
        telemetry.get_registry().clear()
        mq = MulQuant(0.5, out_lo=0, out_hi=15, float_scale=True)
        # 0.5x then round-half-away: [-2, 4, 30.9, 31, 8] -> [-1, 2, 15, 16, 4]
        # -1 clamps low, 16 clamps high, 15 lands exactly on the bound: 2 of 5
        mq(Tensor(np.array([-2.0, 4.0, 30.9, 31.0, 8.0], dtype=np.float32)))
        row = _rows()[(telemetry.telemetry_name(mq), "mulquant")]
        assert row["clipped"] == 2
        assert row["total"] == 5
        assert row["rate"] == 2 / 5

    def test_counts_accumulate_across_batches(self):
        telemetry.enable()
        telemetry.get_registry().clear()
        mq = MulQuant(1.0, out_lo=0, out_hi=10, float_scale=True)
        mq(Tensor(np.full((4,), 100.0, dtype=np.float32)))
        mq(Tensor(np.full((4,), 5.0, dtype=np.float32)))
        row = _rows()[(telemetry.telemetry_name(mq), "mulquant")]
        assert row["clipped"] == 4 and row["total"] == 8

    def test_disabled_records_nothing_and_output_identical(self):
        mq = MulQuant(0.5, out_lo=0, out_hi=15, float_scale=True)
        x = Tensor(np.array([-2.0, 31.0, 8.0], dtype=np.float32))
        y_off = mq(x).data.copy()
        assert telemetry.saturation_report() == []
        telemetry.enable()
        y_on = mq(x).data.copy()
        np.testing.assert_array_equal(y_off, y_on)

    def test_uses_attached_dotted_name(self):
        telemetry.enable()
        telemetry.get_registry().clear()
        mq = MulQuant(1.0, out_lo=0, out_hi=1, float_scale=True)
        object.__setattr__(mq, "_telemetry_name", "blocks.0.mq")
        mq(Tensor(np.array([5.0], dtype=np.float32)))
        assert ("blocks.0.mq", "mulquant") in _rows()


class TestQuantizerAudit:
    def test_deploy_path_counts_grid_clipping(self):
        telemetry.enable()
        telemetry.get_registry().clear()
        q = MinMaxQuantizer(nbit=4, unsigned=False)  # grid [-8, 7]
        q.set_scale(1.0)
        q.deploy = True
        # integers: [-9, -8, 0, 7, 8, 100] -> below, ok, ok, ok, above, above
        out = q(Tensor(np.array([-9.0, -8.0, 0.0, 7.0, 8.0, 100.0], dtype=np.float32)))
        row = _rows()[(telemetry.telemetry_name(q), "quantizer")]
        assert row["clipped"] == 3 and row["total"] == 6
        np.testing.assert_array_equal(out.data, [-8, -8, 0, 7, 7, 7])

    def test_matches_unaudited_path(self):
        q = MinMaxQuantizer(nbit=4, unsigned=False)
        q.set_scale(0.3)
        q.deploy = True
        x = Tensor(np.linspace(-5, 5, 17).astype(np.float32))
        y_off = q(x).data.copy()
        telemetry.enable()
        y_on = q(x).data.copy()
        np.testing.assert_array_equal(y_off, y_on)


class TestInputQuantAudit:
    def test_counts(self):
        telemetry.enable()
        telemetry.get_registry().clear()
        iq = InputQuant(scale=1.0, qlb=-4, qub=3)
        iq(Tensor(np.array([-5.0, -4.0, 0.0, 3.0, 4.0], dtype=np.float32)))
        row = _rows()[(telemetry.telemetry_name(iq), "input")]
        assert row["clipped"] == 2 and row["total"] == 5


class TestReportShape:
    def test_sorted_by_rate_desc(self):
        telemetry.enable()
        telemetry.get_registry().clear()
        mild = MulQuant(1.0, out_lo=0, out_hi=100, float_scale=True)
        harsh = MulQuant(1.0, out_lo=0, out_hi=1, float_scale=True)
        object.__setattr__(mild, "_telemetry_name", "mild")
        object.__setattr__(harsh, "_telemetry_name", "harsh")
        mild(Tensor(np.array([5.0, 200.0], dtype=np.float32)))     # 1/2
        harsh(Tensor(np.array([5.0, 5.0, 0.0], dtype=np.float32)))  # 2/3
        rows = telemetry.saturation_report()
        assert [r["layer"] for r in rows] == ["harsh", "mild"]

    def test_empty_when_nothing_recorded(self):
        assert telemetry.saturation_report() == []
