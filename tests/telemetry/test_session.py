"""EventLog, the global emit sink, and TelemetrySession snapshots."""
import json
import os

from repro import telemetry
from repro.telemetry.report import EventLog


class TestEventLog:
    def test_buffered_events(self):
        log = EventLog()
        log.emit("step", loss=1.5, step=3)
        assert len(log) == 1
        ev = log.events[0]
        assert ev["kind"] == "step" and ev["loss"] == 1.5 and "ts" in ev

    def test_streams_jsonl(self, tmp_path):
        path = str(tmp_path / "events.jsonl")
        log = EventLog(path)
        log.emit("a", x=1)
        log.emit("b", y="z")
        log.close()
        lines = [json.loads(line) for line in open(path)]
        assert [e["kind"] for e in lines] == ["a", "b"]

    def test_numpy_values_jsonable(self, tmp_path):
        import numpy as np
        log = EventLog()
        log.emit("e", scalar=np.float32(1.5), arr=np.arange(3))
        assert log.events[0]["scalar"] == 1.5
        assert log.events[0]["arr"] == [0, 1, 2]
        json.dumps(log.events[0])


class TestGlobalEmit:
    def test_emit_noop_without_sink_or_switch(self):
        telemetry.emit("x")  # no sink, disabled: must not raise

    def test_emit_requires_enabled(self):
        log = EventLog()
        telemetry.set_event_sink(log)
        telemetry.emit("x")
        assert len(log) == 0
        telemetry.enable()
        telemetry.emit("x")
        assert len(log) == 1


class TestTelemetrySession:
    def test_enables_and_restores_switch(self, tmp_path):
        assert not telemetry.enabled()
        with telemetry.TelemetrySession(out_dir=str(tmp_path / "t")):
            assert telemetry.enabled()
        assert not telemetry.enabled()

    def test_writes_all_outputs(self, tmp_path):
        out = str(tmp_path / "run")
        with telemetry.TelemetrySession(out_dir=out, label="unit"):
            with telemetry.trace("stage"):
                telemetry.emit("step", loss=0.1)
            telemetry.get_registry().counter("c").inc()
        for fname in ("manifest.json", "trace.json", "trace.txt",
                      "events.jsonl", "metrics.json", "saturation.json"):
            assert os.path.exists(os.path.join(out, fname)), fname
        manifest = json.load(open(os.path.join(out, "manifest.json")))
        assert manifest["label"] == "unit"
        assert manifest["num_events"] == 1
        assert manifest["num_spans"] == 1
        trace = json.load(open(os.path.join(out, "trace.json")))
        assert trace["traceEvents"][0]["name"] == "stage"

    def test_fresh_session_clears_prior_state(self, tmp_path):
        telemetry.enable()
        telemetry.get_registry().counter("old").inc()
        with telemetry.trace("old-span"):
            pass
        telemetry.disable()
        with telemetry.TelemetrySession(out_dir=str(tmp_path / "t")):
            assert telemetry.get_registry().get("old") is None
            assert telemetry.get_tracer().roots == []

    def test_no_out_dir_collects_in_memory(self):
        with telemetry.TelemetrySession() as session:
            telemetry.emit("e")
        assert len(session.events) == 1

    def test_session_survives_exception(self, tmp_path):
        out = str(tmp_path / "err")
        try:
            with telemetry.TelemetrySession(out_dir=out):
                raise ValueError("boom")
        except ValueError:
            pass
        assert not telemetry.enabled()
        assert os.path.exists(os.path.join(out, "manifest.json"))
