"""MetricsRegistry primitives: counters, gauges, histograms, labels, gating."""
import pytest

from repro import telemetry
from repro.telemetry.metrics import MetricsRegistry


class TestCounter:
    def test_inc(self):
        reg = MetricsRegistry(enabled=True)
        c = reg.counter("hits")
        c.inc()
        c.inc(4)
        assert c.value == 5

    def test_negative_rejected(self):
        reg = MetricsRegistry(enabled=True)
        with pytest.raises(ValueError):
            reg.counter("hits").inc(-1)

    def test_labels_create_children(self):
        reg = MetricsRegistry(enabled=True)
        c = reg.counter("sat", labels=("layer",))
        c.labels(layer="conv1").inc(3)
        c.labels(layer="conv2").inc(7)
        c.labels(layer="conv1").inc(1)
        samples = {s["labels"]["layer"]: s["value"] for s in c.samples()}
        assert samples == {"conv1": 4, "conv2": 7}

    def test_label_mismatch_raises(self):
        reg = MetricsRegistry(enabled=True)
        c = reg.counter("sat", labels=("layer",))
        with pytest.raises(ValueError):
            c.labels(wrong="x")

    def test_unlabeled_metric_rejects_labels(self):
        reg = MetricsRegistry(enabled=True)
        with pytest.raises(ValueError):
            reg.counter("plain").labels(layer="x")


class TestGauge:
    def test_set_inc_dec(self):
        reg = MetricsRegistry(enabled=True)
        g = reg.gauge("depth")
        g.set(10.0)
        g.inc(2)
        g.dec(1)
        assert g.value == 11.0


class TestHistogram:
    def test_buckets_cumulative_placement(self):
        reg = MetricsRegistry(enabled=True)
        h = reg.histogram("lat", buckets=(1.0, 10.0))
        for v in (0.5, 0.7, 5.0, 100.0):
            h.observe(v)
        assert h.count == 4
        assert h.sum == pytest.approx(106.2)
        d = h._value_dict()
        assert d["buckets"]["le=1"] == 2
        assert d["buckets"]["le=10"] == 1
        assert d["overflow"] == 1
        assert h.mean == pytest.approx(106.2 / 4)

    def test_labeled_histogram_children_share_buckets(self):
        reg = MetricsRegistry(enabled=True)
        h = reg.histogram("lat", labels=("layer",), buckets=(1.0,))
        h.labels(layer="a").observe(0.5)
        assert h.labels(layer="a").buckets == (1.0,)


class TestRegistry:
    def test_create_or_get_same_object(self):
        reg = MetricsRegistry(enabled=True)
        assert reg.counter("x") is reg.counter("x")

    def test_kind_conflict_raises(self):
        reg = MetricsRegistry(enabled=True)
        reg.counter("x")
        with pytest.raises(ValueError):
            reg.gauge("x")

    def test_snapshot_collects_everything(self):
        reg = MetricsRegistry(enabled=True)
        reg.counter("a").inc()
        reg.gauge("b").set(2)
        snap = reg.snapshot()
        assert {s["name"] for s in snap["metrics"]} == {"a", "b"}

    def test_reset_zeroes_values(self):
        reg = MetricsRegistry(enabled=True)
        c = reg.counter("a", labels=("k",))
        c.labels(k="x").inc(5)
        reg.reset()
        assert c.samples() == []


class TestGating:
    def test_disabled_registry_is_noop(self):
        reg = MetricsRegistry(enabled=False)
        c = reg.counter("a")
        c.inc(100)
        assert c.value == 0

    def test_default_registry_follows_global_switch(self):
        reg = MetricsRegistry()
        c = reg.counter("a")
        c.inc()
        assert c.value == 0  # global switch is off
        telemetry.enable()
        c.inc(2)
        assert c.value == 2

    def test_global_registry_singleton(self):
        assert telemetry.get_registry() is telemetry.get_registry()
