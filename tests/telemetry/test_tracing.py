"""Tracer/Span: nesting, exports, and the disabled fast path."""
import json

import pytest

from repro import telemetry
from repro.telemetry.tracing import NULL_SPAN, Tracer


class TestSpans:
    def test_nesting(self):
        tr = Tracer(enabled=True)
        with tr.span("outer"):
            with tr.span("inner-1"):
                pass
            with tr.span("inner-2"):
                pass
        assert len(tr.roots) == 1
        outer = tr.roots[0]
        assert [c.name for c in outer.children] == ["inner-1", "inner-2"]

    def test_durations_ordered(self):
        tr = Tracer(enabled=True)
        with tr.span("outer"):
            with tr.span("inner"):
                pass
        outer, inner = tr.roots[0], tr.roots[0].children[0]
        assert outer.duration >= inner.duration >= 0.0

    def test_annotate_and_attrs(self):
        tr = Tracer(enabled=True)
        with tr.span("s", model="resnet20") as span:
            span.annotate(batches=4)
        assert tr.roots[0].attrs == {"model": "resnet20", "batches": 4}

    def test_exception_recorded_and_tree_intact(self):
        tr = Tracer(enabled=True)
        with pytest.raises(RuntimeError):
            with tr.span("boom"):
                raise RuntimeError("x")
        assert tr.roots[0].attrs["error"] == "RuntimeError"
        assert tr._stack == []

    def test_sequential_roots(self):
        tr = Tracer(enabled=True)
        with tr.span("a"):
            pass
        with tr.span("b"):
            pass
        assert [r.name for r in tr.roots] == ["a", "b"]


class TestExports:
    def _traced(self):
        tr = Tracer(enabled=True)
        with tr.span("fit", epochs=2):
            with tr.span("epoch", index=0):
                pass
        return tr

    def test_chrome_trace_shape(self):
        doc = self._traced().to_chrome_trace()
        events = doc["traceEvents"]
        assert len(events) == 2
        for ev in events:
            assert ev["ph"] == "X"
            assert ev["dur"] >= 0 and ev["ts"] >= 0
        assert events[0]["args"] == {"epochs": 2}

    def test_chrome_trace_json_serializable(self, tmp_path):
        path = str(tmp_path / "trace.json")
        self._traced().save_chrome_trace(path)
        with open(path) as f:
            doc = json.load(f)
        assert doc["traceEvents"][0]["name"] == "fit"

    def test_format_tree_alignment(self):
        text = self._traced().format_tree()
        lines = text.split("\n")
        assert lines[0].startswith("fit")
        assert lines[1].startswith("  epoch")
        assert all(line.rstrip().endswith("ms") for line in lines)

    def test_empty_tree(self):
        assert "no spans" in Tracer(enabled=True).format_tree()


class TestDisabledPath:
    def test_disabled_span_is_shared_null(self):
        tr = Tracer(enabled=False)
        s = tr.span("x")
        assert s is NULL_SPAN
        with s as inner:
            inner.annotate(a=1)
        assert tr.roots == []

    def test_global_trace_follows_switch(self):
        assert telemetry.trace("x") is NULL_SPAN
        telemetry.enable()
        span = telemetry.trace("x")
        assert span is not NULL_SPAN
