"""Live-tracing primitives and operational observability units.

Covers the distributed-tracing building blocks (TraceContext wire format,
flat span records, tree assembly, the bounded TraceStore, JSONL round-trip)
and the always-on obs primitives (RollingWindow + SLO arithmetic,
FlightRecorder ring/dump, ProfileAggregator attribution, the Prometheus
exposition round-trip).
"""
import json

import pytest

from repro.telemetry import live, obs
from repro.telemetry.metrics import MetricsRegistry

pytestmark = pytest.mark.obs


class TestTraceContext:
    def test_mint_and_child(self):
        ctx = live.TraceContext.mint(42, model="resnet20")
        assert ctx.trace_id == 42
        assert ctx.baggage == {"model": "resnet20"}
        child = ctx.child()
        assert child.trace_id == 42
        assert child.span_id != ctx.span_id

    def test_wire_round_trip(self):
        ctx = live.TraceContext.mint(7)
        back = live.TraceContext.from_wire(ctx.wire())
        assert back.trace_id == ctx.trace_id
        assert back.span_id == ctx.span_id

    def test_span_ids_unique_and_prefixed(self):
        ids = {live.new_span_id() for _ in range(100)}
        assert len(ids) == 100
        assert live.new_span_id("w123").startswith("w123-")


class TestBuildTree:
    def _rec(self, span_id, parent, t0=0.0, t1=1.0, trace_id=1):
        return live.span_record(trace_id, span_id, t0, t1,
                                parent_id=parent, span_id=span_id)

    def test_connected_tree(self):
        records = [self._rec("root", None, 0, 10),
                   self._rec("a", "root", 1, 3),
                   self._rec("b", "root", 3, 9),
                   self._rec("b1", "b", 4, 8)]
        roots, orphans = live.build_tree(records)
        assert not orphans
        assert len(roots) == 1
        names = [c["span"]["name"] for c in roots[0]["children"]]
        assert names == ["a", "b"]
        assert roots[0]["children"][1]["children"][0]["span"]["name"] == "b1"

    def test_orphan_detected(self):
        records = [self._rec("root", None),
                   self._rec("lost", "no-such-parent")]
        roots, orphans = live.build_tree(records)
        assert len(roots) == 1
        assert [r["name"] for r in orphans] == ["lost"]

    def test_format_tree_and_chrome(self):
        records = [self._rec("root", None, 0, 10),
                   self._rec("a", "root", 1, 3)]
        roots, _ = live.build_tree(records)
        text = live.format_tree(roots)
        assert "root" in text and "  a" in text
        chrome = live.to_chrome_trace(records)
        assert len(chrome["traceEvents"]) == 2
        assert all(e["ph"] == "X" for e in chrome["traceEvents"])


class TestTraceStore:
    def test_eviction_oldest_trace_first(self):
        store = live.TraceStore(capacity=2)
        for tid in (1, 2, 3):
            store.add(live.span_record(tid, "request", 0.0, 1.0))
        assert store.evicted == 1
        assert store.trace_ids() == [2, 3]
        assert store.get(1) == []

    def test_jsonl_round_trip(self, tmp_path):
        store = live.TraceStore()
        root = live.span_record(5, "request", 0.0, 2.0)
        store.add(root)
        store.add(live.span_record(5, "batch", 0.5, 1.5,
                                   parent_id=root["span_id"]))
        path = str(tmp_path / "traces.jsonl")
        assert store.dump_jsonl(path) == 2
        back = live.load_jsonl(path, trace_id=5)
        roots, orphans = live.build_tree(back)
        assert len(roots) == 1 and not orphans
        assert live.load_jsonl(path, trace_id=999) == []


class TestRollingWindow:
    def test_counts_and_slo(self):
        t = [100.0]
        w = obs.RollingWindow(window_s=10.0, bucket_s=1.0, clock=lambda: t[0])
        for _ in range(90):
            w.observe_ok(0.010, queue_wait_s=0.002)
        for _ in range(5):
            w.observe_shed()
        for _ in range(5):
            w.observe_ok(0.300, deadline_miss=True)
        s = w.summary(slo_target=0.99)
        assert s["requests"] == 100
        assert s["ok"] == 95 and s["shed"] == 5 and s["deadline_miss"] == 5
        # 10 bad / 100 requests = 10% bad over a 1% budget -> burn 10x
        assert s["slo"]["error_budget_burn"] == pytest.approx(10.0)
        assert s["latency_ms"]["p50"] == pytest.approx(10.0, rel=0.1)

    def test_window_slides(self):
        t = [0.0]
        w = obs.RollingWindow(window_s=5.0, bucket_s=1.0, clock=lambda: t[0])
        w.observe_ok(0.01)
        assert w.summary()["requests"] == 1
        t[0] = 100.0   # lap every bucket
        assert w.summary()["requests"] == 0


class TestFlightRecorder:
    def test_ring_bounds_and_drop_count(self):
        fr = obs.FlightRecorder(capacity=4)
        for i in range(10):
            fr.record("tick", i=i)
        assert len(fr) == 4
        assert fr.dropped_events == 6
        assert [e["i"] for e in fr.snapshot()] == [6, 7, 8, 9]
        assert [e["seq"] for e in fr.snapshot()] == [7, 8, 9, 10]

    def test_dump_writes_json(self, tmp_path):
        fr = obs.FlightRecorder(capacity=8)
        fr.record("deadline_miss", bid=3)
        path = str(tmp_path / "dump.json")
        dump = fr.dump("deadline_miss", path=path, model="m")
        assert dump["reason"] == "deadline_miss"
        assert dump["model"] == "m"
        with open(path) as f:
            on_disk = json.load(f)
        assert on_disk["events"][0]["kind"] == "deadline_miss"
        assert fr.last_dump["num_events"] == 1
        assert fr.last_dump["path"] == path


class TestProfileAggregator:
    def test_attribution(self):
        agg = obs.ProfileAggregator()
        agg.add([("conv_mq", "conv1", 0.008), ("linear_mq", "fc", 0.002)],
                wall_s=0.0105)
        agg.add([("conv_mq", "conv1", 0.009)], wall_s=0.0095)
        rep = agg.report()
        assert rep["sampled_batches"] == 2
        assert rep["attributed_fraction"] == pytest.approx(0.95, abs=0.01)
        assert rep["per_op"][0]["name"] == "conv1"
        assert rep["per_kind"][0]["kind"] == "conv_mq"
        assert rep["per_op"][0]["calls"] == 2

    def test_empty(self):
        rep = obs.ProfileAggregator().report()
        assert rep["sampled_batches"] == 0
        assert rep["attributed_fraction"] == 0.0


class TestExposition:
    def test_round_trip(self):
        reg = MetricsRegistry(enabled=True)
        reg.counter("requests_total", labels=("model",)).labels(
            model="resnet20").inc(7)
        reg.gauge("queue_depth").set(3)
        reg.histogram("latency_seconds",
                      buckets=(0.01, 0.1)).observe(0.05)
        text = obs.exposition(reg)
        assert "# TYPE requests_total counter" in text
        parsed = obs.parse_prometheus(text)
        assert parsed["requests_total"] == [({"model": "resnet20"}, 7.0)]
        assert parsed["queue_depth"] == [({}, 3.0)]
        # per-bin storage must come out cumulative with a +Inf bucket
        buckets = {lab["le"]: v for lab, v in parsed["latency_seconds_bucket"]}
        assert buckets == {"0.01": 0.0, "0.1": 1.0, "+Inf": 1.0}
        assert parsed["latency_seconds_count"] == [({}, 1.0)]

    def test_extra_samples_survive_disabled_registry(self):
        reg = MetricsRegistry(enabled=False)
        text = obs.exposition(reg, extra_samples=[
            {"name": "server_window_throughput_hz", "kind": "gauge",
             "labels": {"model": "m"}, "value": 12.5}])
        parsed = obs.parse_prometheus(text)
        assert parsed["server_window_throughput_hz"] == [({"model": "m"}, 12.5)]
