"""Concurrency regressions: metric mutation and EventLog emission.

The gateway mutates metrics from lane threads, the status exporter and the
submitting thread at once; unlocked ``self.sum += v`` read-modify-writes
lose updates under that interleaving.  These tests hammer the primitives
from many threads and assert *exact* totals — they fail reliably within a
few runs if the per-metric lock is removed.
"""
import threading

import pytest

from repro.telemetry.metrics import MetricsRegistry
from repro.telemetry.report import EventLog

pytestmark = pytest.mark.obs

N_THREADS = 8
N_ITERS = 2_000


def _hammer(fn):
    barrier = threading.Barrier(N_THREADS)

    def run():
        barrier.wait()   # maximize overlap
        for _ in range(N_ITERS):
            fn()

    threads = [threading.Thread(target=run) for _ in range(N_THREADS)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()


def test_histogram_exact_count_and_sum_under_contention():
    reg = MetricsRegistry(enabled=True)
    h = reg.histogram("lat", buckets=(0.5, 2.0))
    _hammer(lambda: h.observe(1.0))
    assert h.count == N_THREADS * N_ITERS
    assert h.sum == pytest.approx(N_THREADS * N_ITERS * 1.0)
    assert sum(h.bucket_counts) == N_THREADS * N_ITERS


def test_counter_exact_under_contention():
    reg = MetricsRegistry(enabled=True)
    c = reg.counter("hits")
    _hammer(lambda: c.inc())
    assert c.value == N_THREADS * N_ITERS


def test_gauge_inc_exact_under_contention():
    reg = MetricsRegistry(enabled=True)
    g = reg.gauge("depth")
    _hammer(lambda: g.inc(1.0))
    assert g.value == N_THREADS * N_ITERS


def test_labels_child_creation_race_yields_one_child():
    reg = MetricsRegistry(enabled=True)
    c = reg.counter("per_model", labels=("model",))
    _hammer(lambda: c.labels(model="m").inc())
    assert len(c._children) == 1
    assert c.labels(model="m").value == N_THREADS * N_ITERS


def test_registry_get_or_create_race_yields_one_metric():
    reg = MetricsRegistry(enabled=True)
    _hammer(lambda: reg.counter("shared").inc())
    assert reg.counter("shared").value == N_THREADS * N_ITERS


class TestEventLogBounds:
    def test_ring_drops_oldest_and_counts(self):
        log = EventLog(max_events=5)
        for i in range(12):
            log.emit("tick", i=i)
        assert len(log) == 5
        assert log.dropped_events == 7
        assert [e["i"] for e in log.events] == [7, 8, 9, 10, 11]

    def test_unbounded_for_sessions(self):
        log = EventLog(max_events=None)
        for i in range(10):
            log.emit("tick", i=i)
        assert len(log) == 10
        assert log.dropped_events == 0

    def test_concurrent_emit_no_interleaved_lines(self, tmp_path):
        path = str(tmp_path / "events.jsonl")
        log = EventLog(path=path, max_events=None)
        _hammer(lambda: log.emit("tick", payload="x" * 64))
        log.close()
        import json

        n = 0
        with open(path) as f:
            for line in f:
                json.loads(line)   # any torn write raises here
                n += 1
        assert n == N_THREADS * N_ITERS
        assert len(log) == N_THREADS * N_ITERS
