"""Forward patching and the instrument() probe API."""
import numpy as np
import pytest

from repro import nn, telemetry
from repro.telemetry.hooks import ForwardPatchSet, patch_forward
from repro.telemetry.metrics import MetricsRegistry
from repro.tensor.tensor import Tensor


def _model():
    return nn.Sequential(nn.Linear(4, 8), nn.ReLU(), nn.Linear(8, 2))


class TestPatchForward:
    def test_wrap_and_restore(self):
        m = nn.Linear(4, 4)
        calls = []
        restore = patch_forward(m, lambda orig: lambda x: (calls.append(1), orig(x))[1])
        m(Tensor(np.ones((2, 4), dtype=np.float32)))
        assert calls == [1]
        restore()
        m(Tensor(np.ones((2, 4), dtype=np.float32)))
        assert calls == [1]
        assert "forward" not in m.__dict__

    def test_stacked_patches_unwind(self):
        m = nn.Linear(4, 4)
        order = []
        r1 = patch_forward(m, lambda orig: lambda x: (order.append("a"), orig(x))[1])
        r2 = patch_forward(m, lambda orig: lambda x: (order.append("b"), orig(x))[1])
        m(Tensor(np.ones((1, 4), dtype=np.float32)))
        assert order == ["b", "a"]
        r2()
        r1()
        assert "forward" not in m.__dict__

    def test_patchset_restores_on_exception(self):
        model = _model()
        with pytest.raises(RuntimeError):
            with ForwardPatchSet() as patches:
                for mod in model.modules():
                    if isinstance(mod, nn.Linear):
                        patches.patch(mod, lambda orig: orig)
                raise RuntimeError("boom")
        for mod in model.modules():
            assert "forward" not in mod.__dict__


class TestInstrument:
    def test_probes_leaf_layers(self):
        model = _model()
        with telemetry.instrument(model, registry=MetricsRegistry(enabled=True)) as inst:
            model(Tensor(np.random.default_rng(0).normal(size=(2, 4)).astype(np.float32)))
        rows = inst.report()
        assert [r["type"] for r in rows] == ["Linear", "ReLU", "Linear"]
        assert all(r["calls"] == 1 for r in rows)
        assert all(r["time_ms"] >= 0 for r in rows)

    def test_activation_stats(self):
        model = nn.Sequential(nn.ReLU())
        x = np.array([[-1.0, 0.0, 2.0, 4.0]], dtype=np.float32)
        with telemetry.instrument(model, registry=MetricsRegistry(enabled=True)) as inst:
            model(Tensor(x))
        row = inst.report()[0]
        assert row["out_min"] == 0.0 and row["out_max"] == 4.0
        assert row["out_mean"] == pytest.approx(1.5)
        assert row["out_sparsity"] == pytest.approx(0.5)  # two zeros of four

    def test_detach_restores_model(self):
        model = _model()
        inst = telemetry.instrument(model, registry=MetricsRegistry(enabled=True))
        inst.detach()
        for mod in model.modules():
            assert "forward" not in mod.__dict__
        inst.detach()  # idempotent

    def test_types_filter(self):
        model = _model()
        with telemetry.instrument(model, types=[nn.Linear],
                                  registry=MetricsRegistry(enabled=True)) as inst:
            model(Tensor(np.ones((1, 4), dtype=np.float32)))
        assert all(r["type"] == "Linear" for r in inst.report())
        assert len(inst.report()) == 2

    def test_timing_feeds_registry_histogram(self):
        reg = MetricsRegistry(enabled=True)
        model = _model()
        with telemetry.instrument(model, registry=reg):
            model(Tensor(np.ones((1, 4), dtype=np.float32)))
        hist = reg.get("layer_forward_seconds")
        assert hist is not None
        assert sum(s["count"] for s in hist.samples()) == 3

    def test_model_output_unchanged(self):
        model = _model()
        x = Tensor(np.random.default_rng(1).normal(size=(2, 4)).astype(np.float32))
        y_plain = model(x).data.copy()
        with telemetry.instrument(model, registry=MetricsRegistry(enabled=True)):
            y_inst = model(x).data.copy()
        np.testing.assert_array_equal(y_plain, y_inst)
