"""Telemetry tests touch process-global state; isolate every test."""
import pytest

from repro.telemetry import metrics, report, state


@pytest.fixture(autouse=True)
def _isolate_telemetry():
    prev = state.set_enabled(False)
    prev_sink = report.set_event_sink(None)
    yield
    state.set_enabled(prev)
    report.set_event_sink(prev_sink)
    metrics.get_registry().clear()
    from repro.telemetry import tracing
    tracing.get_tracer().reset()
