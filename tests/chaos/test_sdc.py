"""Live-memory SDC injection: flipped weights, arena scribbles, and golden
tampering must each end in detected -> quarantined -> healed with zero
``requests_lost``.

Also covers the health-loop shutdown race: ``Fleet.close()`` landing while
a golden probe is mid-flight on a slow replica must complete in bounded
time (the probe is inconclusive, never a deadlock, never an SDC flag).
"""
from __future__ import annotations

import threading
import time

import numpy as np
import pytest

from repro.chaos import (ChaosPlan, FLEET_INJECTORS, INJECTORS,
                         SDC_INJECTORS)
from repro.core import DeploySpec, deploy
from repro.core.qconfig import QConfig
from repro.core.qmodels import quantize_model
from repro.core.t2c import calibrate_model
from repro.fleet import QUARANTINED, Fleet, FleetConfig
from repro.integrity import GoldenSet
from repro.models import build_model
from repro.server import ServerConfig

pytestmark = pytest.mark.sdc


def test_catalog_exposes_sdc_injectors():
    assert set(SDC_INJECTORS) == {"flip_live_weights", "flip_arena",
                                  "corrupt_golden"}
    for name in SDC_INJECTORS:
        assert INJECTORS[name] is SDC_INJECTORS[name]
    # the SDC family must not leak into the fleet-fault default plan
    assert set(FLEET_INJECTORS) == {"kill_replica", "partition_replica"}


def test_sdc_default_plan_covers_whole_catalog():
    steps = [name for name, _ in ChaosPlan.sdc_default(seed=3).schedule]
    assert sorted(steps) == sorted(SDC_INJECTORS)


@pytest.fixture(scope="module")
def deployed_bundle():
    """A compiled golden-carrying resnet20 bundle plus a probe batch."""
    rng = np.random.default_rng(20240)
    qm = quantize_model(build_model("resnet20", num_classes=10, width=8),
                        QConfig(8, 8))
    calibrate_model(qm, [rng.standard_normal((4, 3, 32, 32))
                         .astype(np.float32) for _ in range(2)])
    d = deploy(qm, DeploySpec())
    x = rng.standard_normal((3, 32, 32)).astype(np.float32)
    return d, x


def test_sdc_default_plan_detects_quarantines_heals(deployed_bundle):
    d, x = deployed_bundle
    fleet = Fleet(FleetConfig(
        replicas=3, health_interval_s=0.1, default_deadline_s=2.0,
        golden_every=2, golden_limit=2, scrub_every=2,
        server=ServerConfig(max_batch=8, default_deadline_s=2.0,
                            abft_every=4)))
    fleet.add_model("resnet20")
    fleet.register_version("resnet20", "1", d)
    with fleet:
        report = ChaosPlan.sdc_default(seed=0).run_sdc(fleet, "resnet20", x)
        assert report.injected == len(SDC_INJECTORS)
        assert report.detected == report.injected, report.render()
        assert report.recovered == report.injected, report.render()
        assert report.ok
        # every corruption was flagged, the victim left the ring, and the
        # straddling traffic was rerouted — nothing silently lost
        assert fleet.sdc_quarantined == report.injected
        assert fleet.requests_lost == 0
        status = fleet.status()["models"]["resnet20"]
        tombs = [r for r in status["replicas"]
                 if r["state"] == QUARANTINED]
        assert len(tombs) == report.injected
    text = fleet.render_exposition()
    assert 'fleet_sdc_quarantined_total{model="resnet20"} 3' in text


def test_close_during_inflight_golden_probe_does_not_deadlock():
    """Shutdown race: the health loop's golden probe is waiting on a slow
    replica when ``close()`` lands.  The probe wait is bounded and
    re-checks ``closing`` — close must finish promptly and the cut-off
    probe must stay inconclusive (no quarantine)."""
    def fast(batch):
        flat = np.asarray(batch, dtype=np.float32).reshape(len(batch), -1)
        return flat[:, :4] * np.float32(2.0)

    probe_entered = threading.Event()

    def slow_runner(batch):
        probe_entered.set()
        time.sleep(0.4)
        return fast(batch)

    # record against the fast twin so recording itself does not trip the
    # event; outputs are identical by construction
    golden = GoldenSet.record(fast, (2, 4), k=4, seed=7)
    fleet = Fleet(FleetConfig(
        replicas=2, health_interval_s=0.05, default_deadline_s=5.0,
        golden_every=1, golden_timeout_s=5.0,
        server=ServerConfig(max_batch=4, default_deadline_s=5.0)))
    fleet.add_model("m")
    fleet.register_version("m", "1", runner=slow_runner,
                           golden=golden.to_json())
    fleet.start()
    assert probe_entered.wait(timeout=10.0), "no golden probe started"
    start = time.monotonic()
    fleet.close()
    assert time.monotonic() - start < 10.0
    assert fleet.sdc_quarantined == 0
    assert fleet.requests_lost == 0
