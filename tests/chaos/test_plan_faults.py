"""Plan-mutation chaos: every seeded IR fault must be refused by the static
verifier AND the registry gate, and the pristine plan must keep verifying
clean afterwards.  A silent miss here means a corrupted program could serve."""
import copy

import numpy as np
import pytest

from repro.chaos import ChaosPlan
from repro.chaos.injectors import PLAN_INJECTORS
from repro.core import DeploySpec, deploy
from repro.core.qconfig import QConfig
from repro.core.qmodels import quantize_model
from repro.core.t2c import calibrate_model
from repro.models import build_model


@pytest.fixture(scope="session")
def compiled_plan():
    """One verified vgg8 plan for the whole suite; injectors work on
    deep copies, so tests must never mutate it directly."""
    rng = np.random.default_rng(20240508)
    qm = quantize_model(build_model("vgg8", num_classes=10, width_mult=0.5),
                        QConfig(8, 8))
    calibrate_model(qm, [rng.standard_normal((4, 3, 32, 32))
                         .astype(np.float32) for _ in range(2)])
    d = deploy(qm, DeploySpec(runtime="auto"))
    assert d.plan is not None and d.plan_verification.ok
    return d.plan


class TestCatalog:
    @pytest.mark.parametrize("seed", [0, 7, 1234])
    def test_full_catalog_fully_detected(self, compiled_plan, seed):
        """The acceptance bar: every plan-fault class is caught by both
        layers and the pristine plan still proves clean (recovered)."""
        report = ChaosPlan.plan_default(seed=seed).run_plan(compiled_plan)
        assert report.injected == len(PLAN_INJECTORS) == 4
        assert report.missed == 0 and report.ok
        assert report.recovered == report.injected
        for rec in report.records:
            assert rec.layers == {"verifier": True, "registry": True}
            assert "plan." in rec.note, rec.note

    def test_multi_round_stays_detected(self, compiled_plan):
        report = ChaosPlan.plan_default(seed=3, rounds=2) \
            .run_plan(compiled_plan)
        assert report.injected == 8 and report.missed == 0

    def test_widen_scale_trips_overflow_rule(self, compiled_plan):
        report = ChaosPlan(seed=5).add("widen_scale").run_plan(compiled_plan)
        assert report.ok
        assert "plan.accum-overflow" in report.records[0].note

    def test_swap_register_breaks_dataflow(self, compiled_plan):
        report = ChaosPlan(seed=5).add("swap_register") \
            .run_plan(compiled_plan)
        assert report.ok and report.records[0].layers["verifier"]

    def test_drop_op_detected(self, compiled_plan):
        report = ChaosPlan(seed=5).add("drop_op").run_plan(compiled_plan)
        assert report.ok
        assert report.records[0].details["op_kind"]

    def test_fuse_illegal_trips_dataflow_rule(self, compiled_plan):
        """A fusion that reads a forward register (broken legality oracle)
        is structurally a use-before-def: the dataflow pass must refuse it
        without needing any shape information."""
        report = ChaosPlan(seed=5).add("fuse_illegal").run_plan(compiled_plan)
        assert report.ok and report.records[0].layers["verifier"]
        assert "plan.dead-read" in report.records[0].note
        assert report.records[0].details["shortcut_reg"] is not None


class TestHarnessContracts:
    def test_reports_are_reproducible(self, compiled_plan):
        r1 = ChaosPlan.plan_default(seed=9).run_plan(compiled_plan)
        r2 = ChaosPlan.plan_default(seed=9).run_plan(compiled_plan)
        assert [a.details for a in r1.records] \
            == [b.details for b in r2.records]
        assert r1.to_json()["summary"] == r2.to_json()["summary"]

    def test_injectors_are_seed_deterministic(self, compiled_plan):
        for name, inject in PLAN_INJECTORS.items():
            d1 = inject(copy.deepcopy(compiled_plan),
                        np.random.default_rng([11, 0]))
            d2 = inject(copy.deepcopy(compiled_plan),
                        np.random.default_rng([11, 0]))
            assert d1 == d2, name

    def test_clean_plan_is_never_mutated(self, compiled_plan):
        sig = compiled_plan.signature()
        ChaosPlan.plan_default(seed=1).run_plan(compiled_plan)
        assert compiled_plan.signature() == sig
        assert compiled_plan.verify(refresh=True).ok

    def test_non_plan_injector_rejected(self, compiled_plan):
        with pytest.raises(ValueError, match="non-plan injector"):
            ChaosPlan(seed=0).add("truncate_file").run_plan(compiled_plan)

    def test_chaos_telemetry_events(self, compiled_plan):
        from repro import telemetry

        with telemetry.TelemetrySession(out_dir=None) as session:
            ChaosPlan.plan_default(seed=0).run_plan(compiled_plan)
        kinds = [e["kind"] for e in session.events.events
                 if e["kind"].startswith("chaos_")]
        assert kinds.count("chaos_inject") == 4
        assert kinds.count("chaos_detected") == 4
        assert "chaos_missed" not in kinds

    def test_report_json_roundtrips(self, compiled_plan):
        import json

        report = ChaosPlan.plan_default(seed=2).run_plan(compiled_plan)
        doc = json.loads(json.dumps(report.to_json()))
        assert doc["summary"]["missed"] == 0
        assert {r["injector"] for r in doc["faults"]} \
            == set(PLAN_INJECTORS)
