"""Shared fixtures for the fault-injection suite.

Everything here carries the ``chaos`` marker so the suite can be selected
(``-m chaos``) or excluded in isolation.  The exported artifact directory is
built once per session — injectors always work on copies.
"""
from __future__ import annotations

import numpy as np
import pytest

from repro.export.writer import export_state_dict


def pytest_collection_modifyitems(items):
    for item in items:
        item.add_marker(pytest.mark.chaos)


@pytest.fixture(scope="session")
def clean_export(tmp_path_factory):
    """One clean all-formats export; tests must never mutate it."""
    rng = np.random.default_rng(42)
    out = str(tmp_path_factory.mktemp("chaos") / "artifacts")
    state = {"a_weight": rng.integers(-8, 8, (4, 4)).astype(np.float32),
             "b_weight": rng.integers(-60, 60, (3, 5)).astype(np.float32),
             "c_bias": rng.integers(-4, 4, 6).astype(np.float32),
             "s_scale": np.linspace(0.05, 0.95, 4).astype(np.float32)}
    export_state_dict(state, out, formats=("dec", "hex", "bin", "qint"),
                      bits_map={"a_weight": 5})
    return out
