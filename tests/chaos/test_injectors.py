"""Injector determinism and damage contracts.

The harness's value rests on replayability: the same seed must produce the
same fault, byte for byte, so a missed detection can be re-run and debugged.
"""
import os
import shutil

import numpy as np
import pytest

from repro.chaos import ARTIFACT_INJECTORS
from repro.export.integrity import verify_artifacts


def _copy(clean_export, tmp_path, name):
    dst = str(tmp_path / name)
    shutil.copytree(clean_export, dst)
    return dst


def _dir_bytes(d):
    return {n: open(os.path.join(d, n), "rb").read()
            for n in sorted(os.listdir(d))}


@pytest.mark.parametrize("name", sorted(ARTIFACT_INJECTORS))
class TestArtifactInjectors:
    def test_deterministic_under_fixed_seed(self, clean_export, tmp_path,
                                            name):
        inject = ARTIFACT_INJECTORS[name]
        a = _copy(clean_export, tmp_path, "a")
        b = _copy(clean_export, tmp_path, "b")
        da = inject(a, np.random.default_rng([7, 0]))
        db = inject(b, np.random.default_rng([7, 0]))
        assert da == db
        assert _dir_bytes(a) == _dir_bytes(b), \
            "same seed must produce byte-identical damage"

    def test_different_seed_differs(self, clean_export, tmp_path, name):
        inject = ARTIFACT_INJECTORS[name]
        damage = set()
        for seed in range(4):
            d = _copy(clean_export, tmp_path, f"s{seed}")
            inject(d, np.random.default_rng([seed, 0]))
            damage.add(tuple(sorted(
                (n, v) for n, v in _dir_bytes(d).items())))
        assert len(damage) > 1, "seeds should explore different faults"

    def test_damage_actually_fails_verification(self, clean_export, tmp_path,
                                                name):
        d = _copy(clean_export, tmp_path, "dmg")
        ARTIFACT_INJECTORS[name](d, np.random.default_rng([1, 0]))
        assert not verify_artifacts(d).ok

    def test_only_target_directory_is_touched(self, clean_export, tmp_path,
                                              name):
        before = _dir_bytes(clean_export)
        d = _copy(clean_export, tmp_path, "x")
        ARTIFACT_INJECTORS[name](d, np.random.default_rng([2, 0]))
        assert _dir_bytes(clean_export) == before


def test_flip_bits_flips_exactly_n(clean_export, tmp_path):
    from repro.chaos import flip_bits

    d = _copy(clean_export, tmp_path, "n")
    details = flip_bits(d, np.random.default_rng([0, 0]), n_bits=3)
    assert len(details["bits_flipped"]) == 3
    orig = open(os.path.join(clean_export, details["file"]), "rb").read()
    new = open(os.path.join(d, details["file"]), "rb").read()
    diff_bits = sum(bin(a ^ b).count("1") for a, b in zip(orig, new))
    assert diff_bits == 3


def test_truncate_respects_fraction(clean_export, tmp_path):
    from repro.chaos import truncate_file

    d = _copy(clean_export, tmp_path, "t")
    details = truncate_file(d, np.random.default_rng([0, 0]),
                            keep_fraction=0.25)
    assert details["bytes_after"] < details["bytes_before"]
    assert os.path.getsize(os.path.join(d, details["file"])) \
        == details["bytes_after"]


def test_corrupt_header_resigns_bookkeeping(clean_export, tmp_path):
    """corrupt_header's whole point: checksums and digest stay consistent, so
    only the semantic header/payload check may fire — never a byte-level one."""
    d = _copy(clean_export, tmp_path, "h")
    from repro.chaos import corrupt_header

    corrupt_header(d, np.random.default_rng([5, 0]))
    rules = {f.rule for f in verify_artifacts(d).findings}
    assert "integrity.checksum-mismatch" not in rules
    assert "integrity.stale-manifest" not in rules
    assert rules & {"integrity.header-mismatch", "integrity.truncated"}


def test_stale_manifest_trips_digest(clean_export, tmp_path):
    from repro.chaos import stale_manifest

    d = _copy(clean_export, tmp_path, "m")
    stale_manifest(d, np.random.default_rng([0, 0]))
    rules = {f.rule for f in verify_artifacts(d).findings}
    assert "integrity.stale-manifest" in rules
