"""ChaosPlan end to end: every artifact fault detected by every consumer
layer, registry stays on known-good state, gateway survives server faults."""
import numpy as np
import pytest

from repro.chaos import ChaosPlan
from repro.runtime.serve import _can_fork
from repro.server import ModelRegistry, Server
from tests.server.conftest import StubPlan, stub_sample


class TestArtifactRuns:
    @pytest.mark.parametrize("seed", [0, 7, 1234])
    def test_full_catalog_fully_detected(self, clean_export, seed):
        """The acceptance bar: a seeded schedule over every artifact-fault
        class reports 100% detected — verify, load AND registry each refuse,
        and the registry stays on the previous active version."""
        report = ChaosPlan.artifact_default(seed=seed).run_artifacts(
            clean_export)
        assert report.injected == 4
        assert report.missed == 0 and report.ok
        assert report.detected == report.injected
        assert report.recovered == report.injected
        for rec in report.records:
            assert rec.layers == {"verify": True, "load": True,
                                  "registry": True}

    def test_multi_round_stays_detected(self, clean_export):
        report = ChaosPlan.artifact_default(seed=3, rounds=3).run_artifacts(
            clean_export)
        assert report.injected == 12 and report.missed == 0

    def test_reports_are_reproducible(self, clean_export):
        r1 = ChaosPlan.artifact_default(seed=9).run_artifacts(clean_export)
        r2 = ChaosPlan.artifact_default(seed=9).run_artifacts(clean_export)
        assert [a.details for a in r1.records] \
            == [b.details for b in r2.records]
        assert r1.to_json()["summary"] == r2.to_json()["summary"]

    def test_clean_dir_is_never_mutated(self, clean_export):
        from repro.export.integrity import verify_artifacts

        ChaosPlan.artifact_default(seed=1).run_artifacts(clean_export)
        assert verify_artifacts(clean_export).ok

    def test_unknown_injector_rejected(self):
        with pytest.raises(ValueError, match="unknown injector"):
            ChaosPlan().add("set_on_fire")

    def test_server_injector_rejected_in_artifact_run(self, clean_export):
        with pytest.raises(ValueError, match="server injector"):
            ChaosPlan().add("kill_worker").run_artifacts(clean_export)

    def test_chaos_telemetry_events(self, clean_export):
        from repro import telemetry

        with telemetry.TelemetrySession(out_dir=None) as session:
            ChaosPlan.artifact_default(seed=0).run_artifacts(clean_export)
        kinds = [e["kind"] for e in session.events.events
                 if e["kind"].startswith("chaos_")]
        assert kinds.count("chaos_inject") == 4
        assert kinds.count("chaos_detected") == 4
        assert "chaos_missed" not in kinds


class TestServerRuns:
    def _server(self, workers=0, **cfg):
        registry = ModelRegistry()
        registry.register("stub", "1", runner=StubPlan(gain=2.0))
        return Server(registry, max_batch=8, workers=workers,
                      default_deadline_s=2.0, **cfg)

    def test_delay_clock_forces_typed_shedding(self):
        with self._server() as srv:
            report = ChaosPlan(seed=0).add("delay_clock", skew_s=1.0) \
                .run_server(srv, "stub", stub_sample(1.0))
        assert report.ok and report.injected == 1
        rec = report.records[0]
        assert rec.layers == {"admission": True} and rec.recovered

    @pytest.mark.skipif(not _can_fork(), reason="requires fork for PlanPool")
    def test_kill_worker_detected_and_recovered(self):
        with self._server(workers=2) as srv:
            report = ChaosPlan(seed=0).add("kill_worker") \
                .run_server(srv, "stub", stub_sample(1.0))
            deaths = srv._lanes["stub"].stats.worker_deaths
        assert report.ok and report.records[0].recovered
        assert deaths >= 1

    @pytest.mark.skipif(not _can_fork(), reason="requires fork for PlanPool")
    def test_stall_worker_liveness(self):
        with self._server(workers=2) as srv:
            report = ChaosPlan(seed=0).add("stall_worker", stall_s=0.2) \
                .run_server(srv, "stub", stub_sample(1.0))
        rec = report.records[0]
        assert report.ok and rec.layers == {"liveness": True}

    @pytest.mark.skipif(not _can_fork(), reason="requires fork for PlanPool")
    def test_default_server_schedule(self):
        with self._server(workers=2) as srv:
            report = ChaosPlan.server_default(seed=5).run_server(
                srv, "stub", stub_sample(1.0))
        assert report.injected == 3
        assert report.missed == 0, report.render()

    def test_artifact_injector_rejected_in_server_run(self):
        with self._server() as srv:
            with pytest.raises(ValueError, match="artifact injector"):
                ChaosPlan(seed=0).add("flip_bits").run_server(
                    srv, "stub", stub_sample(1.0))


class TestRegistryStaysOnGoodVersion:
    def test_corrupted_candidate_never_activates(self, clean_export,
                                                 tmp_path):
        """The recovery contract in miniature: registry serving a good
        version refuses a corrupted successor and keeps serving."""
        import shutil

        from repro.chaos import flip_bits
        from repro.export.errors import ArtifactError

        damaged = str(tmp_path / "damaged")
        shutil.copytree(clean_export, damaged)
        flip_bits(damaged, np.random.default_rng([0, 0]))

        reg = ModelRegistry()
        reg.register("m", "1", runner=StubPlan(gain=1.0),
                     artifacts=clean_export)
        with pytest.raises(ArtifactError):
            reg.register("m", "2", runner=StubPlan(gain=9.0),
                         artifacts=damaged, activate=True)
        assert reg.active_version("m") == "1"
        assert reg.versions("m") == ["1"], "rejected entry must not linger"
