"""Fleet-side fault injection: replica kill and network partition.

The scorecard contract: *detected* means the router ejected the victim and
straddling requests were rerouted (nothing lost); *recovered* means the
fleet returned to its target replica count (kill) or the victim rejoined
the ring after the partition healed (partition).
"""
from __future__ import annotations

import numpy as np
import pytest

from repro.chaos import ChaosPlan, FLEET_INJECTORS, INJECTORS
from repro.fleet import Fleet, FleetConfig
from repro.server import ServerConfig


def _runner(batch):
    flat = np.asarray(batch, dtype=np.float32).reshape(len(batch), -1)
    return flat[:, :4] * np.float32(2.0)


def _sample():
    return np.full((2, 4), 1.0, dtype=np.float32)


def _fleet(replicas=3):
    fleet = Fleet(FleetConfig(
        replicas=replicas, health_interval_s=0.05, default_deadline_s=5.0,
        server=ServerConfig(max_batch=4, default_deadline_s=5.0)))
    fleet.add_model("m")
    fleet.register_version("m", "1", runner=_runner)
    return fleet.start()


def test_catalog_exposes_fleet_injectors():
    assert set(FLEET_INJECTORS) == {"kill_replica", "partition_replica"}
    for name in FLEET_INJECTORS:
        assert INJECTORS[name] is FLEET_INJECTORS[name]


def test_fleet_default_plan_fully_detected_and_recovered():
    fleet = _fleet()
    try:
        report = ChaosPlan.fleet_default(seed=5).run_fleet(
            fleet, "m", _sample())
    finally:
        fleet.close()
    assert report.injected == len(report.records) >= 2
    assert report.detected == report.injected, report.render()
    assert report.recovered == report.injected, report.render()
    assert report.ok
    assert fleet.requests_lost == 0


def test_kill_replica_scorecard_layers():
    fleet = _fleet()
    try:
        report = ChaosPlan(seed=1).add("kill_replica").run_fleet(
            fleet, "m", _sample())
        rec = report.records[0]
        assert rec.detected and rec.recovered
        assert rec.layers.get("ejected") and rec.layers.get("requeued")
        assert rec.layers.get("rerouted")
        # the fleet healed back to target
        assert len(fleet.replicas("m")) == 3
    finally:
        fleet.close()


def test_partition_replica_heals_and_rejoins():
    fleet = _fleet()
    try:
        report = ChaosPlan(seed=2).add("partition_replica").run_fleet(
            fleet, "m", _sample())
        rec = report.records[0]
        assert rec.detected and rec.recovered, report.render()
        assert rec.layers.get("not_replaced"), (
            "a partitioned replica must not be replaced (it will rejoin)")
    finally:
        fleet.close()


def test_fleet_faults_are_seed_deterministic():
    victims = []
    for _ in range(2):
        fleet = _fleet()
        try:
            report = ChaosPlan(seed=9).add("kill_replica").run_fleet(
                fleet, "m", _sample())
        finally:
            fleet.close()
        victims.append(report.records[0].note.split()[1])
    assert victims[0] == victims[1], f"same seed, different victim: {victims}"


def test_partition_rejoin_is_ring_idempotent():
    """A healed replica rejoins at *exactly* its original vnode positions.

    Vnode hashes are a pure function of the member id
    (``hash64(f"{member}#{i}", salt="ring")``), so a partition round-trip
    must restore the ring byte for byte — re-admission never reshuffles
    keys between the survivors.
    """
    from repro.fleet.router import ROLE_STABLE

    fleet = _fleet()
    try:
        assert fleet.submit("m", _sample()).result(timeout=10).ok
        with fleet.router._lock:
            before = list(fleet.router._ring("m", ROLE_STABLE)._points)
        report = ChaosPlan(seed=2).add("partition_replica").run_fleet(
            fleet, "m", _sample())
        rec = report.records[0]
        assert rec.detected and rec.recovered, report.render()
        with fleet.router._lock:
            after = list(fleet.router._ring("m", ROLE_STABLE)._points)
        assert before == after, (
            "ring changed across a partition/heal round-trip")
    finally:
        fleet.close()


def test_kill_requires_spare_capacity():
    fleet = _fleet(replicas=1)
    try:
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError, match="need >= 2"):
            FLEET_INJECTORS["kill_replica"](fleet, "m", rng)
    finally:
        fleet.close()
