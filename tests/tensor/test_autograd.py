"""Autograd engine mechanics: graph traversal, accumulation, modes."""
import numpy as np
import pytest

from repro.tensor import Tensor, no_grad, is_grad_enabled, randn


def t(arr):
    return Tensor(np.asarray(arr, dtype=np.float32), requires_grad=True)


class TestBackwardMechanics:
    def test_scalar_backward_default_grad(self):
        a = t([3.0])
        (a * 2.0).sum().backward()
        np.testing.assert_allclose(a.grad, [2.0])

    def test_nonscalar_backward_requires_grad_arg(self):
        a = t([1.0, 2.0])
        with pytest.raises(RuntimeError):
            (a * 2.0).backward()
        (a * 2.0).backward(np.array([1.0, 10.0]))
        np.testing.assert_allclose(a.grad, [2.0, 20.0])

    def test_diamond_graph_accumulates_once(self):
        # a -> b, a -> c, d = b + c: grad(a) must be 2, not 1 or 4.
        a = t([1.0])
        b = a * 1.0
        c = a * 1.0
        (b + c).backward()
        np.testing.assert_allclose(a.grad, [2.0])

    def test_reused_tensor_in_single_op(self):
        a = t([3.0])
        (a * a).backward()
        np.testing.assert_allclose(a.grad, [6.0])

    def test_grad_accumulates_across_backward_calls(self):
        a = t([1.0])
        (a * 2.0).backward()
        (a * 3.0).backward()
        np.testing.assert_allclose(a.grad, [5.0])

    def test_zero_grad(self):
        a = t([1.0])
        (a * 2.0).backward()
        a.zero_grad()
        assert a.grad is None

    def test_deep_chain_no_recursion_error(self):
        a = t([1.0])
        x = a
        for _ in range(3000):
            x = x + 1.0
        x.backward()
        np.testing.assert_allclose(a.grad, [1.0])

    def test_branch_without_grad_is_pruned(self):
        a = t([1.0])
        b = Tensor(np.array([2.0], dtype=np.float32))  # no grad
        out = a * b
        out.backward()
        np.testing.assert_allclose(a.grad, [2.0])
        assert b.grad is None


class TestGradModes:
    def test_no_grad_blocks_graph(self):
        a = t([1.0])
        with no_grad():
            out = a * 2.0
        assert not out.requires_grad
        assert out._prev == ()

    def test_no_grad_restores_state(self):
        assert is_grad_enabled()
        with no_grad():
            assert not is_grad_enabled()
            with no_grad():
                assert not is_grad_enabled()
            assert not is_grad_enabled()
        assert is_grad_enabled()

    def test_detach_cuts_graph(self):
        a = t([2.0])
        b = (a * 3.0).detach()
        (b * 5.0).backward()
        assert a.grad is None

    def test_clone_keeps_graph(self):
        a = t([2.0])
        a.clone().sum().backward()
        np.testing.assert_allclose(a.grad, [1.0])

    def test_copy_inplace_not_tracked(self):
        a = t([1.0])
        a.copy_(np.array([5.0]))
        np.testing.assert_allclose(a.data, [5.0])
        assert a.requires_grad


class TestDtypes:
    def test_float64_input_downcast(self):
        a = Tensor(np.ones(3, dtype=np.float64))
        assert a.dtype == np.float32

    def test_int_tensor_cannot_require_grad(self):
        with pytest.raises(TypeError):
            Tensor(np.array([1, 2], dtype=np.int64), requires_grad=True)

    def test_int_conversion(self):
        a = Tensor(np.array([1.7, -2.3], dtype=np.float32))
        assert a.int().dtype == np.int64
