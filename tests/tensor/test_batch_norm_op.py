"""Fused training-mode batch norm op."""
import numpy as np
import pytest

from repro import nn
from repro.tensor import Tensor, functional as F


class TestBatchNormTrain:
    def _params(self, c=3):
        gamma = Tensor(np.array([1.0, 2.0, 0.5][:c], dtype=np.float32), requires_grad=True)
        beta = Tensor(np.array([0.0, -0.1, 0.3][:c], dtype=np.float32), requires_grad=True)
        return gamma, beta

    def test_matches_composed_reference(self, rng):
        x = rng.standard_normal((4, 3, 5, 5)).astype(np.float32) * 2 + 1
        gamma, beta = self._params()
        out, mean, var = F.batch_norm_train(Tensor(x), gamma, beta)
        m = x.mean(axis=(0, 2, 3), keepdims=True)
        v = x.var(axis=(0, 2, 3), keepdims=True)
        ref = (x - m) / np.sqrt(v + 1e-5) * gamma.data.reshape(1, -1, 1, 1) + beta.data.reshape(1, -1, 1, 1)
        np.testing.assert_allclose(out.data, ref, atol=1e-5)
        np.testing.assert_allclose(mean, m.reshape(-1), rtol=1e-5)

    def test_gradcheck(self, gradcheck, rng):
        x = Tensor(rng.standard_normal((3, 2, 4, 4)).astype(np.float32), requires_grad=True)
        gamma = Tensor(np.array([1.5, 0.7], dtype=np.float32), requires_grad=True)
        beta = Tensor(np.array([0.2, -0.4], dtype=np.float32), requires_grad=True)
        const = Tensor(rng.standard_normal((3, 2, 4, 4)).astype(np.float32))
        gradcheck(lambda: (F.batch_norm_train(x, gamma, beta)[0] * const).sum(),
                  [x, gamma, beta])

    def test_gradient_sums_to_zero_per_channel(self, rng):
        """BN output is mean-invariant, so dL/dx must sum to ~0 per channel
        for any upstream gradient."""
        x = Tensor(rng.standard_normal((4, 3, 4, 4)).astype(np.float32), requires_grad=True)
        gamma, beta = self._params()
        out, _, _ = F.batch_norm_train(x, gamma, beta)
        (out * Tensor(rng.standard_normal(out.shape).astype(np.float32))).sum().backward()
        per_ch = x.grad.sum(axis=(0, 2, 3))
        np.testing.assert_allclose(per_ch, 0.0, atol=1e-3)

    def test_module_uses_fused_op_in_training(self, rng):
        bn = nn.BatchNorm2d(4)
        bn.train()
        x = Tensor(rng.standard_normal((2, 4, 3, 3)).astype(np.float32), requires_grad=True)
        out = bn(x)
        assert out._op == "batch_norm"

    def test_eval_path_unchanged(self, rng):
        bn = nn.BatchNorm2d(2)
        bn.running_mean.data[:] = 1.0
        bn.running_var.data[:] = 4.0
        bn.eval()
        out = bn(Tensor(np.full((1, 2, 2, 2), 3.0, dtype=np.float32)))
        np.testing.assert_allclose(out.data, 1.0, rtol=1e-3)
