"""Hypothesis property-based tests on the tensor engine."""
import numpy as np
from hypothesis import given, settings, strategies as st
from hypothesis.extra import numpy as hnp

from repro.tensor import Tensor, maximum, minimum
from repro.tensor.im2col import col2im, im2col

floats = st.floats(min_value=-100, max_value=100, allow_nan=False, width=32)


def arrays(max_side=6, max_dims=3):
    return hnp.arrays(np.float32,
                      hnp.array_shapes(min_dims=1, max_dims=max_dims, min_side=1, max_side=max_side),
                      elements=floats)


@settings(max_examples=50, deadline=None)
@given(arrays())
def test_add_commutative(a):
    x, y = Tensor(a), Tensor(a[::-1].copy() if a.ndim == 1 else a)
    np.testing.assert_array_equal((x + y).data, (y + x).data)


@settings(max_examples=50, deadline=None)
@given(arrays())
def test_double_negation(a):
    x = Tensor(a)
    np.testing.assert_allclose((-(-x)).data, a, rtol=1e-6)


@settings(max_examples=50, deadline=None)
@given(arrays())
def test_relu_idempotent(a):
    x = Tensor(a)
    once = x.relu().data
    twice = Tensor(once).relu().data
    np.testing.assert_array_equal(once, twice)


@settings(max_examples=50, deadline=None)
@given(arrays())
def test_clamp_bounds_respected(a):
    out = Tensor(a).clamp(-1.0, 1.0).data
    assert out.min() >= -1.0 and out.max() <= 1.0


@settings(max_examples=50, deadline=None)
@given(arrays())
def test_max_min_consistency(a):
    x = Tensor(a)
    np.testing.assert_array_equal(maximum(x, x).data, a)
    np.testing.assert_array_equal(minimum(x, x).data, a)


@settings(max_examples=50, deadline=None)
@given(arrays(max_dims=2))
def test_sum_of_parts_equals_total(a):
    x = Tensor(a)
    total = x.sum().item()
    by_axis = x.sum(axis=0).sum().item()
    np.testing.assert_allclose(total, by_axis, rtol=1e-3, atol=1e-3)


@settings(max_examples=30, deadline=None)
@given(st.integers(4, 10), st.integers(1, 3), st.integers(0, 2), st.integers(1, 2),
       st.integers(1, 3), st.integers(1, 2))
def test_im2col_col2im_adjoint(size, kh, pad, stride, c, n):
    if (size + 2 * pad - kh) < 0:
        return
    rng = np.random.default_rng(size * 100 + kh)
    x = rng.standard_normal((n, c, size, size))
    cols = im2col(x, kh, kh, stride, pad)
    y = rng.standard_normal(cols.shape)
    lhs = float((cols * y).sum())
    rhs = float((x * col2im(y, x.shape, kh, kh, stride, pad)).sum())
    np.testing.assert_allclose(lhs, rhs, rtol=1e-8)


@settings(max_examples=40, deadline=None)
@given(arrays(max_dims=2))
def test_softmax_is_distribution(a):
    if a.ndim == 1:
        a = a[None]
    p = Tensor(a).softmax(axis=-1).data
    assert (p >= 0).all()
    np.testing.assert_allclose(p.sum(-1), np.ones(p.shape[0]), rtol=1e-4)


@settings(max_examples=40, deadline=None)
@given(arrays())
def test_round_ste_output_is_integral(a):
    out = Tensor(a).round_ste().data
    np.testing.assert_array_equal(out, np.round(out))
