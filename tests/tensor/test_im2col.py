"""im2col / col2im transform correctness."""
import numpy as np
import pytest

from repro.tensor.im2col import col2im, conv_out_size, im2col


class TestConvOutSize:
    @pytest.mark.parametrize("size,k,s,p,expected", [
        (32, 3, 1, 1, 32), (32, 3, 2, 1, 16), (7, 3, 1, 0, 5), (8, 2, 2, 0, 4),
    ])
    def test_known(self, size, k, s, p, expected):
        assert conv_out_size(size, k, s, p) == expected


class TestIm2col:
    def test_shape(self, rng):
        x = rng.standard_normal((2, 3, 8, 8)).astype(np.float32)
        cols = im2col(x, 3, 3, 1, 1)
        assert cols.shape == (2, 3 * 9, 64)

    def test_identity_kernel_1x1(self, rng):
        x = rng.standard_normal((1, 2, 4, 4)).astype(np.float32)
        cols = im2col(x, 1, 1, 1, 0)
        np.testing.assert_array_equal(cols.reshape(1, 2, 4, 4), x)

    def test_patch_content(self):
        x = np.arange(16.0, dtype=np.float32).reshape(1, 1, 4, 4)
        cols = im2col(x, 2, 2, 2, 0)  # non-overlapping 2x2 patches
        # first patch = [[0,1],[4,5]]
        np.testing.assert_array_equal(cols[0, :, 0], [0, 1, 4, 5])

    def test_col2im_adjointness(self, rng):
        """col2im must be the adjoint of im2col: <im2col(x), c> == <x, col2im(c)>."""
        x = rng.standard_normal((2, 3, 6, 6)).astype(np.float64)
        c = rng.standard_normal((2, 27, 36)).astype(np.float64)
        lhs = (im2col(x, 3, 3, 1, 1) * c).sum()
        rhs = (x * col2im(c, x.shape, 3, 3, 1, 1)).sum()
        assert lhs == pytest.approx(rhs, rel=1e-10)

    def test_col2im_counts_overlaps(self):
        ones = np.ones((1, 1 * 9, 16), dtype=np.float32)
        out = col2im(ones, (1, 1, 4, 4), 3, 3, 1, 1)
        # center pixels are covered by all 9 kernel offsets
        assert out[0, 0, 1, 1] == 9
        # corners only by 4
        assert out[0, 0, 0, 0] == 4
