"""Elementwise / reduction / shape operations and their gradients."""
import numpy as np
import pytest

from repro.tensor import Tensor, randn, where, maximum, minimum, stack, cat


def t(arr, rg=True):
    return Tensor(np.asarray(arr, dtype=np.float32), requires_grad=rg)


class TestArithmetic:
    def test_add_broadcast(self):
        a = t([[1.0, 2.0], [3.0, 4.0]])
        b = t([10.0, 20.0])
        out = a + b
        np.testing.assert_allclose(out.data, [[11, 22], [13, 24]])
        out.sum().backward()
        np.testing.assert_allclose(a.grad, np.ones((2, 2)))
        np.testing.assert_allclose(b.grad, [2.0, 2.0])  # summed over broadcast dim

    def test_scalar_radd_rsub_rmul(self):
        a = t([2.0, 4.0])
        np.testing.assert_allclose((1.0 + a).data, [3, 5])
        np.testing.assert_allclose((10.0 - a).data, [8, 6])
        np.testing.assert_allclose((3.0 * a).data, [6, 12])
        np.testing.assert_allclose((8.0 / a).data, [4, 2])

    def test_mul_grad(self):
        a, b = t([2.0, 3.0]), t([5.0, 7.0])
        (a * b).sum().backward()
        np.testing.assert_allclose(a.grad, [5, 7])
        np.testing.assert_allclose(b.grad, [2, 3])

    def test_div_grad(self):
        a, b = t([6.0]), t([3.0])
        (a / b).backward()
        np.testing.assert_allclose(a.grad, [1 / 3])
        np.testing.assert_allclose(b.grad, [-6 / 9])

    def test_pow_grad(self):
        a = t([2.0, 3.0])
        (a ** 3.0).sum().backward()
        np.testing.assert_allclose(a.grad, [12.0, 27.0])

    def test_neg(self):
        a = t([1.0, -2.0])
        (-a).sum().backward()
        np.testing.assert_allclose(a.grad, [-1, -1])

    def test_comparison_returns_bool_tensor(self):
        a = t([1.0, 5.0], rg=False)
        assert (a > 2.0).data.tolist() == [False, True]
        assert (a <= 1.0).data.tolist() == [True, False]


class TestUnary:
    def test_exp_log_roundtrip(self):
        a = t([0.5, 1.0, 2.0])
        out = a.exp().log()
        np.testing.assert_allclose(out.data, a.data, rtol=1e-5)

    def test_sqrt_grad(self):
        a = t([4.0])
        a.sqrt().backward()
        np.testing.assert_allclose(a.grad, [0.25])

    def test_abs_grad(self):
        a = t([-2.0, 3.0])
        a.abs().sum().backward()
        np.testing.assert_allclose(a.grad, [-1, 1])

    def test_relu_grad_zero_below(self):
        a = t([-1.0, 0.0, 2.0])
        a.relu().sum().backward()
        np.testing.assert_allclose(a.grad, [0, 0, 1])

    def test_clamp_grad_passes_in_range_only(self):
        a = t([-5.0, 0.3, 5.0])
        a.clamp(-1.0, 1.0).sum().backward()
        np.testing.assert_allclose(a.grad, [0, 1, 0])

    def test_sigmoid_tanh_values(self):
        a = t([0.0], rg=False)
        assert abs(a.sigmoid().item() - 0.5) < 1e-6
        assert abs(a.tanh().item()) < 1e-6


class TestSTE:
    def test_round_ste_forward_and_grad(self):
        a = t([0.4, 0.6, -1.2])
        out = a.round_ste()
        np.testing.assert_allclose(out.data, [0, 1, -1])
        out.sum().backward()
        np.testing.assert_allclose(a.grad, [1, 1, 1])  # straight-through

    def test_floor_ste(self):
        a = t([1.7, -0.3])
        out = a.floor_ste()
        np.testing.assert_allclose(out.data, [1, -1])
        out.sum().backward()
        np.testing.assert_allclose(a.grad, [1, 1])

    def test_hard_round_blocks_grad(self):
        a = t([0.4])
        a.round().backward()
        np.testing.assert_allclose(a.grad, [0.0])


class TestReductions:
    def test_sum_axis_keepdims(self):
        a = t(np.arange(6).reshape(2, 3))
        assert a.sum(axis=1).shape == (2,)
        assert a.sum(axis=1, keepdims=True).shape == (2, 1)
        np.testing.assert_allclose(a.sum(axis=0).data, [3, 5, 7])

    def test_mean_grad(self):
        a = t(np.ones((2, 4)))
        a.mean().backward()
        np.testing.assert_allclose(a.grad, np.full((2, 4), 1 / 8))

    def test_var_matches_numpy(self):
        x = np.random.default_rng(0).standard_normal((4, 5)).astype(np.float32)
        a = t(x, rg=False)
        np.testing.assert_allclose(a.var(axis=1).data, x.var(axis=1), rtol=1e-4)

    def test_max_grad_spreads_over_ties(self):
        a = t([[1.0, 3.0, 3.0]])
        a.max(axis=1).backward()
        np.testing.assert_allclose(a.grad, [[0, 0.5, 0.5]])

    def test_min(self):
        a = t([[3.0, -1.0, 2.0]], rg=False)
        assert a.min().item() == -1.0

    def test_argmax(self):
        a = t([[0.0, 5.0, 2.0]], rg=False)
        assert a.argmax(axis=1).data.tolist() == [1]


class TestShapeOps:
    def test_reshape_grad(self):
        a = t(np.arange(6.0))
        a.reshape(2, 3).sum().backward()
        assert a.grad.shape == (6,)

    def test_transpose_roundtrip(self):
        a = t(np.arange(24.0).reshape(2, 3, 4))
        out = a.transpose(2, 0, 1)
        assert out.shape == (4, 2, 3)
        (out ** 2.0).sum().backward()
        np.testing.assert_allclose(a.grad, 2 * a.data)

    def test_getitem_grad_scatters(self):
        a = t(np.arange(5.0))
        a[np.array([0, 0, 2])].sum().backward()
        np.testing.assert_allclose(a.grad, [2, 0, 1, 0, 0])

    def test_slice(self):
        a = t(np.arange(10.0))
        out = a[2:5]
        np.testing.assert_allclose(out.data, [2, 3, 4])
        out.sum().backward()
        assert a.grad.sum() == 3

    def test_pad_grad(self):
        a = t(np.ones((2, 2)))
        out = a.pad(((1, 1), (0, 2)))
        assert out.shape == (4, 4)
        out.sum().backward()
        np.testing.assert_allclose(a.grad, np.ones((2, 2)))

    def test_flatten_unsqueeze_squeeze(self):
        a = t(np.ones((2, 3, 4)), rg=False)
        assert a.flatten(1).shape == (2, 12)
        assert a.unsqueeze(0).shape == (1, 2, 3, 4)
        assert a.unsqueeze(0).squeeze(0).shape == (2, 3, 4)

    def test_broadcast_to_grad(self):
        a = t(np.ones((1, 3)))
        a.broadcast_to((4, 3)).sum().backward()
        np.testing.assert_allclose(a.grad, np.full((1, 3), 4.0))

    def test_swapaxes(self):
        a = t(np.zeros((2, 5, 7)), rg=False)
        assert a.swapaxes(1, 2).shape == (2, 7, 5)


class TestCombining:
    def test_stack_and_grad(self):
        a, b = t([1.0, 2.0]), t([3.0, 4.0])
        out = stack([a, b], axis=0)
        assert out.shape == (2, 2)
        out.sum().backward()
        np.testing.assert_allclose(a.grad, [1, 1])

    def test_cat_grad_splits(self):
        a, b = t(np.ones((2, 2))), t(np.ones((3, 2)))
        out = cat([a, b], axis=0)
        assert out.shape == (5, 2)
        (out * 2.0).sum().backward()
        np.testing.assert_allclose(b.grad, np.full((3, 2), 2.0))

    def test_where_grad(self):
        a, b = t([1.0, 2.0]), t([10.0, 20.0])
        out = where(np.array([True, False]), a, b)
        np.testing.assert_allclose(out.data, [1, 20])
        out.sum().backward()
        np.testing.assert_allclose(a.grad, [1, 0])
        np.testing.assert_allclose(b.grad, [0, 1])

    def test_maximum_minimum_grads(self):
        a, b = t([1.0, 5.0]), t([3.0, 2.0])
        maximum(a, b).sum().backward()
        np.testing.assert_allclose(a.grad, [0, 1])
        np.testing.assert_allclose(b.grad, [1, 0])
        a.grad = b.grad = None
        minimum(a, b).sum().backward()
        np.testing.assert_allclose(a.grad, [1, 0])
        np.testing.assert_allclose(b.grad, [0, 1])


class TestMatmul:
    def test_2d(self, gradcheck):
        a = randn(3, 4, rng=np.random.default_rng(1), requires_grad=True)
        b = randn(4, 5, rng=np.random.default_rng(2), requires_grad=True)
        gradcheck(lambda: (a @ b).sum(), [a, b])

    def test_batched(self, gradcheck):
        a = randn(2, 3, 4, rng=np.random.default_rng(1), requires_grad=True)
        b = randn(2, 4, 5, rng=np.random.default_rng(2), requires_grad=True)
        gradcheck(lambda: ((a @ b) ** 2.0).mean(), [a, b])

    def test_broadcast_batch(self):
        a = Tensor(np.ones((2, 3, 4), dtype=np.float32), requires_grad=True)
        b = Tensor(np.ones((4, 5), dtype=np.float32), requires_grad=True)
        out = a @ b
        assert out.shape == (2, 3, 5)
        out.sum().backward()
        assert b.grad.shape == (4, 5)
        np.testing.assert_allclose(b.grad, np.full((4, 5), 6.0))

    def test_softmax_rows_sum_to_one(self):
        a = randn(4, 7, rng=np.random.default_rng(0))
        np.testing.assert_allclose(a.softmax(axis=-1).data.sum(-1), np.ones(4), rtol=1e-5)

    def test_log_softmax_grad(self, gradcheck):
        a = randn(3, 5, rng=np.random.default_rng(3), requires_grad=True)
        const = Tensor(np.random.default_rng(4).standard_normal((3, 5)).astype(np.float32))
        gradcheck(lambda: (a.log_softmax(axis=-1) * const).sum(), [a])
