"""Edge cases across the tensor engine."""
import numpy as np
import pytest

from repro.tensor import Tensor, arange, full, ones, randn, zeros


class TestFactories:
    def test_zeros_ones_full(self):
        assert zeros(2, 3).data.sum() == 0
        assert ones((2, 3)).data.sum() == 6
        assert (full((4,), 2.5).data == 2.5).all()

    def test_arange(self):
        np.testing.assert_array_equal(arange(3).data, [0, 1, 2])

    def test_randn_seeded(self):
        a = randn(5, rng=np.random.default_rng(1))
        b = randn(5, rng=np.random.default_rng(1))
        np.testing.assert_array_equal(a.data, b.data)

    def test_requires_grad_factory(self):
        assert zeros(2, requires_grad=True).requires_grad


class TestScalars:
    def test_item_on_scalar(self):
        assert Tensor(np.float32(3.5)).item() == 3.5

    def test_item_like_single_element(self):
        assert Tensor(np.array([7.0], dtype=np.float32)).item() == 7.0

    def test_len(self):
        assert len(Tensor(np.zeros((4, 2), dtype=np.float32))) == 4


class TestVar:
    def test_unbiased_correction(self, rng):
        x = rng.standard_normal(50).astype(np.float32)
        t = Tensor(x)
        np.testing.assert_allclose(t.var(unbiased=True).item(), x.var(ddof=1), rtol=1e-4)
        np.testing.assert_allclose(t.var().item(), x.var(), rtol=1e-4)


class TestZeroDimensionalReductions:
    def test_sum_empty_axis_tuple(self):
        t = Tensor(np.ones((2, 3), dtype=np.float32), requires_grad=True)
        out = t.sum(axis=(0, 1))
        assert out.item() == 6.0
        out.backward()
        np.testing.assert_array_equal(t.grad, np.ones((2, 3)))

    def test_negative_axis(self):
        t = Tensor(np.ones((2, 3), dtype=np.float32))
        assert t.sum(axis=-1).shape == (2,)
        assert t.mean(axis=-2).shape == (3,)


class TestChainedBroadcasting:
    def test_multi_level_broadcast_grads(self):
        a = Tensor(np.ones((1, 1, 3), dtype=np.float32), requires_grad=True)
        b = Tensor(np.ones((4, 1, 1), dtype=np.float32), requires_grad=True)
        c = Tensor(np.ones((1, 5, 1), dtype=np.float32), requires_grad=True)
        (a * b * c).sum().backward()
        assert a.grad.shape == (1, 1, 3) and a.grad[0, 0, 0] == 20
        assert b.grad.shape == (4, 1, 1) and b.grad[0, 0, 0] == 15
        assert c.grad.shape == (1, 5, 1) and c.grad[0, 0, 0] == 12

    def test_scalar_tensor_broadcast(self):
        s = Tensor(np.float32(2.0), requires_grad=True)
        m = Tensor(np.ones((3, 3), dtype=np.float32))
        (s * m).sum().backward()
        assert s.grad.shape == ()
        assert s.grad == 9.0


class TestNumericalStability:
    def test_softmax_large_logits(self):
        t = Tensor(np.array([[1000.0, 0.0]], dtype=np.float32))
        p = t.softmax(axis=-1).data
        assert np.isfinite(p).all()
        np.testing.assert_allclose(p, [[1.0, 0.0]], atol=1e-6)

    def test_log_of_nonpositive_clamped(self):
        t = Tensor(np.array([0.0, -1.0], dtype=np.float32))
        out = t.log().data
        assert np.isfinite(out).all()

    def test_sqrt_at_zero_grad_finite(self):
        t = Tensor(np.array([0.0], dtype=np.float32), requires_grad=True)
        t.sqrt().backward()
        assert np.isfinite(t.grad).all()

    def test_pow_negative_base_log_guard(self):
        a = Tensor(np.array([2.0], dtype=np.float32))
        b = Tensor(np.array([3.0], dtype=np.float32), requires_grad=True)
        (a ** b).backward()
        assert np.isfinite(b.grad).all()
