"""Neural-net primitives: conv, pooling, activations, losses."""
import numpy as np
import pytest

from repro.tensor import Tensor, randn
from repro.tensor import functional as F
from repro.tensor.im2col import conv_out_size


def _ref_conv2d(x, w, stride, padding, groups=1):
    """Naive reference convolution."""
    n, c, h, ww = x.shape
    o, cg, kh, kw = w.shape
    oh = conv_out_size(h, kh, stride, padding)
    ow = conv_out_size(ww, kw, stride, padding)
    xp = np.pad(x, ((0, 0), (0, 0), (padding, padding), (padding, padding)))
    out = np.zeros((n, o, oh, ow), dtype=np.float64)
    og = o // groups
    for b in range(n):
        for oc in range(o):
            g = oc // og
            for i in range(oh):
                for j in range(ow):
                    patch = xp[b, g * cg:(g + 1) * cg, i * stride:i * stride + kh, j * stride:j * stride + kw]
                    out[b, oc, i, j] = (patch * w[oc]).sum()
    return out.astype(np.float32)


class TestConv2d:
    @pytest.mark.parametrize("stride,padding,groups", [(1, 0, 1), (2, 1, 1), (1, 1, 2), (1, 1, 4)])
    def test_matches_naive_reference(self, rng, stride, padding, groups):
        x = rng.standard_normal((2, 4, 7, 7)).astype(np.float32)
        w = rng.standard_normal((8, 4 // groups, 3, 3)).astype(np.float32)
        out = F.conv2d(Tensor(x), Tensor(w), stride=stride, padding=padding, groups=groups)
        ref = _ref_conv2d(x, w, stride, padding, groups)
        np.testing.assert_allclose(out.data, ref, atol=1e-4)

    def test_depthwise(self, rng):
        x = rng.standard_normal((1, 3, 5, 5)).astype(np.float32)
        w = rng.standard_normal((3, 1, 3, 3)).astype(np.float32)
        out = F.conv2d(Tensor(x), Tensor(w), padding=1, groups=3)
        ref = _ref_conv2d(x, w, 1, 1, 3)
        np.testing.assert_allclose(out.data, ref, atol=1e-4)

    def test_bias_added_per_channel(self, rng):
        x = Tensor(np.zeros((1, 2, 4, 4), dtype=np.float32))
        w = Tensor(np.zeros((3, 2, 1, 1), dtype=np.float32))
        b = Tensor(np.array([1.0, 2.0, 3.0], dtype=np.float32))
        out = F.conv2d(x, w, b)
        np.testing.assert_allclose(out.data[0, :, 0, 0], [1, 2, 3])

    def test_grad_wrt_input_and_weight(self, gradcheck, rng):
        x = randn(2, 2, 6, 6, rng=rng, requires_grad=True)
        w = randn(4, 2, 3, 3, rng=rng, requires_grad=True)
        gradcheck(lambda: (F.conv2d(x, w, stride=2, padding=1) ** 2.0).mean(), [x, w])

    def test_invalid_groups_raises(self):
        x = Tensor(np.zeros((1, 3, 4, 4), dtype=np.float32))
        w = Tensor(np.zeros((4, 1, 3, 3), dtype=np.float32))
        with pytest.raises(ValueError):
            F.conv2d(x, w, groups=2)


class TestPooling:
    def test_max_pool_values(self):
        x = Tensor(np.arange(16.0, dtype=np.float32).reshape(1, 1, 4, 4))
        out = F.max_pool2d(x, 2)
        np.testing.assert_allclose(out.data[0, 0], [[5, 7], [13, 15]])

    def test_avg_pool_values(self):
        x = Tensor(np.arange(16.0, dtype=np.float32).reshape(1, 1, 4, 4))
        out = F.avg_pool2d(x, 2)
        np.testing.assert_allclose(out.data[0, 0], [[2.5, 4.5], [10.5, 12.5]])

    def test_max_pool_grad_goes_to_argmax(self):
        x = Tensor(np.arange(16.0, dtype=np.float32).reshape(1, 1, 4, 4), requires_grad=True)
        F.max_pool2d(x, 4).sum().backward()
        assert x.grad[0, 0, 3, 3] == 1.0
        assert x.grad.sum() == 1.0

    def test_adaptive_avg_pool_global(self, rng):
        x = rng.standard_normal((2, 3, 5, 5)).astype(np.float32)
        out = F.adaptive_avg_pool2d(Tensor(x))
        np.testing.assert_allclose(out.data[:, :, 0, 0], x.mean(axis=(2, 3)), rtol=1e-5)

    def test_adaptive_pool_non_unit_raises(self):
        with pytest.raises(NotImplementedError):
            F.adaptive_avg_pool2d(Tensor(np.zeros((1, 1, 4, 4), dtype=np.float32)), 2)


class TestActivations:
    def test_gelu_known_values(self):
        x = Tensor(np.array([0.0, 100.0, -100.0], dtype=np.float32))
        out = F.gelu(x)
        np.testing.assert_allclose(out.data, [0.0, 100.0, 0.0], atol=1e-3)

    def test_gelu_grad(self, gradcheck, rng):
        x = randn(4, 4, rng=rng, requires_grad=True)
        gradcheck(lambda: (F.gelu(x) ** 2.0).sum(), [x])

    def test_dropout_eval_identity(self, rng):
        x = rng.standard_normal((8, 8)).astype(np.float32)
        out = F.dropout(Tensor(x), 0.5, training=False)
        np.testing.assert_array_equal(out.data, x)

    def test_dropout_training_scales(self, rng):
        x = np.ones((1000,), dtype=np.float32)
        out = F.dropout(Tensor(x), 0.5, training=True, rng=rng)
        kept = out.data[out.data != 0]
        np.testing.assert_allclose(kept, 2.0)
        assert 0.35 < (out.data != 0).mean() < 0.65


class TestLosses:
    def test_cross_entropy_uniform(self):
        logits = Tensor(np.zeros((4, 10), dtype=np.float32))
        loss = F.cross_entropy(logits, np.zeros(4, dtype=np.int64))
        np.testing.assert_allclose(loss.item(), np.log(10), rtol=1e-5)

    def test_cross_entropy_confident_is_low(self):
        logits = np.full((2, 3), -10.0, dtype=np.float32)
        logits[:, 1] = 10.0
        loss = F.cross_entropy(Tensor(logits), np.array([1, 1]))
        assert loss.item() < 1e-3

    def test_cross_entropy_label_smoothing_raises_floor(self):
        logits = np.full((1, 4), -20.0, dtype=np.float32)
        logits[0, 0] = 20.0
        plain = F.cross_entropy(Tensor(logits), np.array([0])).item()
        smooth = F.cross_entropy(Tensor(logits), np.array([0]), label_smoothing=0.2).item()
        assert smooth > plain

    def test_cross_entropy_grad(self, gradcheck, rng):
        x = randn(4, 5, rng=rng, requires_grad=True)
        gradcheck(lambda: F.cross_entropy(x, np.array([0, 1, 2, 3])), [x])

    def test_mse(self):
        a = Tensor(np.array([1.0, 2.0], dtype=np.float32))
        b = Tensor(np.array([3.0, 2.0], dtype=np.float32))
        assert F.mse_loss(a, b).item() == pytest.approx(2.0)

    def test_kl_div_zero_for_equal(self, rng):
        logits = randn(4, 6, rng=rng)
        logp = logits.log_softmax(axis=-1)
        p = logits.softmax(axis=-1)
        assert abs(F.kl_div_loss(logp, p).item()) < 1e-5

    def test_linear_matches_manual(self, rng):
        x = rng.standard_normal((3, 4)).astype(np.float32)
        w = rng.standard_normal((5, 4)).astype(np.float32)
        b = rng.standard_normal(5).astype(np.float32)
        out = F.linear(Tensor(x), Tensor(w), Tensor(b))
        np.testing.assert_allclose(out.data, x @ w.T + b, rtol=1e-4)
