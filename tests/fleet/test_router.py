"""Consistent-hash router invariants, property-tested with hypothesis.

The properties the fleet's correctness rests on:

* routing is a pure function of (topology, key) — no hidden state;
* adding or removing one member of *N* moves only the keys that the ring
  says must move: removal relocates exactly the removed member's keys,
  addition only steals keys for the new member (~K/N of them);
* a replica absent from the ring (draining, ejected, dead) receives no
  new keys, with or without failover exclusions.
"""
from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fleet import HashRing, ROLE_CANARY, ROLE_STABLE, Router, hash64

members_st = st.lists(
    st.text(alphabet="abcdefgh0123456789-", min_size=1, max_size=12),
    min_size=2, max_size=8, unique=True)
keys_st = st.lists(st.text(min_size=0, max_size=24),
                   min_size=1, max_size=200, unique=True)


def test_hash64_is_stable_and_salted():
    assert hash64("req-0") == hash64("req-0")
    assert hash64("req-0", salt="ring") != hash64("req-0", salt="key")


def test_ring_rejects_bad_vnodes():
    with pytest.raises(ValueError, match="vnodes"):
        HashRing(vnodes=0)


@settings(max_examples=50, deadline=None)
@given(members=members_st, keys=keys_st)
def test_lookup_is_deterministic(members, keys):
    a = HashRing(members, vnodes=16)
    b = HashRing(reversed(members), vnodes=16)   # insertion order irrelevant
    for k in keys:
        owner = a.lookup(k)
        assert owner in members
        assert owner == a.lookup(k) == b.lookup(k)


@settings(max_examples=50, deadline=None)
@given(members=members_st, keys=keys_st)
def test_remove_moves_only_the_removed_members_keys(members, keys):
    ring = HashRing(members, vnodes=16)
    before = {k: ring.lookup(k) for k in keys}
    gone = members[0]
    ring.remove(gone)
    for k in keys:
        after = ring.lookup(k)
        assert after != gone
        if before[k] != gone:
            # the ring property: survivors keep every key they owned
            assert after == before[k]


@settings(max_examples=50, deadline=None)
@given(members=members_st, keys=keys_st,
       newcomer=st.text(alphabet="xyz", min_size=1, max_size=8))
def test_add_only_steals_keys_for_the_newcomer(members, keys, newcomer):
    ring = HashRing(members, vnodes=16)
    before = {k: ring.lookup(k) for k in keys}
    ring.add(newcomer)
    moved = 0
    for k in keys:
        after = ring.lookup(k)
        if after != before[k]:
            assert after == newcomer or newcomer in members
            moved += 1
    if newcomer not in members:
        # statistically ~K/(N+1); assert a loose upper bound so the test
        # is deterministic-safe rather than flaky
        assert moved <= len(keys)


def test_join_moves_roughly_k_over_n_keys():
    members = [f"r{i}" for i in range(4)]
    keys = [f"req-{i}" for i in range(2000)]
    ring = HashRing(members, vnodes=64)
    before = {k: ring.lookup(k) for k in keys}
    ring.add("r4")
    moved = sum(1 for k in keys if ring.lookup(k) != before[k])
    expected = len(keys) / 5.0
    assert 0.4 * expected <= moved <= 2.0 * expected, (
        f"join moved {moved} keys, expected ~{expected:.0f}")


@settings(max_examples=50, deadline=None)
@given(members=members_st, keys=keys_st)
def test_excluded_member_never_chosen(members, keys):
    ring = HashRing(members, vnodes=16)
    dead = {members[0]}
    for k in keys:
        owner = ring.lookup(k, exclude=dead)
        assert owner is not None and owner not in dead
    assert ring.lookup(keys[0], exclude=set(members)) is None


def test_router_draining_replica_receives_no_new_keys():
    router = Router(vnodes=32)
    router.set_members("m", ROLE_STABLE, ["m-r0", "m-r1", "m-r2"])
    keys = [f"req-{i}" for i in range(500)]
    owned = {k for k in keys if router.route("m", k) == "m-r1"}
    assert owned, "expected m-r1 to own some keys with 32 vnodes"
    # drain: the fleet removes the replica from every ring of the model
    router.eject("m", "m-r1")
    assert "m-r1" not in router.members("m", ROLE_STABLE)
    for k in keys:
        assert router.route("m", k) != "m-r1"
    # the ejected member's keys redistribute; everyone else's stay put
    router.set_members("m", ROLE_STABLE, ["m-r0", "m-r1", "m-r2"])
    for k in keys:
        owner = router.route("m", k)
        if k not in owned:
            assert owner != "m-r1" or k in owned


def test_router_role_fallback():
    router = Router(vnodes=16)
    router.set_members("m", ROLE_STABLE, ["m-r0"])
    # no canary ring yet: canary-assigned traffic falls back to stable
    assert router.route("m", "k", role=ROLE_CANARY) == "m-r0"
    # at 100% rollout the stable ring may be empty: stable falls back too
    router.set_members("m", ROLE_STABLE, [])
    router.set_members("m", ROLE_CANARY, ["m-r1"])
    assert router.route("m", "k", role=ROLE_STABLE) == "m-r1"
    # whole group down -> unroutable
    router.set_members("m", ROLE_CANARY, [])
    assert router.route("m", "k") is None
