"""Rollout state machine and deterministic traffic assignment."""
from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fleet import (CANARY, IDLE, PROMOTED, ROLE_CANARY, ROLE_STABLE,
                         ROLLED_BACK, SHADOW, TrafficSplitter)


def _splitter():
    sp = TrafficSplitter()
    sp.ensure("m", "1")
    return sp


def test_full_canary_ladder_to_promote():
    sp = _splitter()
    ro = sp.begin_canary("m", "2", fraction=0.01)
    assert ro.state == CANARY and ro.fraction == 0.01
    sp.advance("m", 0.5)
    with pytest.raises(ValueError, match="forward"):
        sp.advance("m", 0.1)
    ro = sp.promote("m")
    assert ro.state == PROMOTED
    assert ro.stable_version == "2" and ro.canary_version is None
    assert ro.fraction == 0.0


def test_shadow_graduates_to_canary():
    sp = _splitter()
    ro = sp.begin_shadow("m", "2", mirror_fraction=0.3)
    assert ro.state == SHADOW and ro.mirror_fraction == 0.3
    assert ro.fraction == 0.0           # shadow takes no primary traffic
    ro = sp.begin_canary("m", "2", fraction=0.1)
    assert ro.state == CANARY
    assert ro.mirror_fraction == 0.0    # mirroring stops once live


def test_rollback_retires_candidate_and_records_reason():
    sp = _splitter()
    sp.begin_canary("m", "2", fraction=0.1)
    ro = sp.rollback("m", reason="error budget burn 2.3")
    assert ro.state == ROLLED_BACK
    assert ro.canary_version is None and ro.fraction == 0.0
    assert "burn" in ro.reason
    # terminal states implicitly reset when a fresh candidate arrives
    ro = sp.begin_canary("m", "3", fraction=0.05)
    assert ro.state == CANARY and ro.canary_version == "3"


def test_guarded_transitions():
    sp = _splitter()
    with pytest.raises(RuntimeError, match="no active canary"):
        sp.advance("m", 0.5)
    with pytest.raises(RuntimeError, match="no active"):
        sp.rollback("m")
    with pytest.raises(KeyError, match="no rollout state"):
        sp.begin_canary("ghost", "2")
    with pytest.raises(ValueError, match="already the stable"):
        sp.begin_canary("m", "1")
    for bad in (0.0, -0.1, 1.5):
        with pytest.raises(ValueError, match="fraction"):
            sp.begin_canary("m", "2", fraction=bad)
    sp.begin_canary("m", "2", fraction=0.1)
    with pytest.raises(RuntimeError, match="refused"):
        sp.begin_canary("m", "3", fraction=0.1)
    with pytest.raises(RuntimeError, match="active"):
        sp.reset("m")


def test_reset_after_promote_allows_next_rollout():
    sp = _splitter()
    sp.begin_canary("m", "2", fraction=1.0)
    sp.promote("m")
    ro = sp.reset("m")
    assert ro.state == IDLE and ro.stable_version == "2"
    assert sp.begin_shadow("m", "3").state == SHADOW


@settings(max_examples=30, deadline=None)
@given(fraction=st.floats(min_value=0.01, max_value=1.0),
       keys=st.lists(st.text(min_size=1, max_size=16), min_size=50,
                     max_size=200, unique=True))
def test_assignment_is_deterministic_and_sticky(fraction, keys):
    sp = TrafficSplitter()
    sp.ensure("m", "1")
    ro = sp.begin_canary("m", "2", fraction=fraction)
    first = {k: ro.assign(k) for k in keys}
    for k in keys:
        role, mirror = first[k]
        assert role in (ROLE_STABLE, ROLE_CANARY)
        assert mirror is False          # canary mode never mirrors
        assert ro.assign(k) == first[k]
    # growing the fraction only moves keys stable -> canary, never back
    if fraction < 1.0:
        sp.advance("m", 1.0)
        for k in keys:
            if first[k][0] == ROLE_CANARY:
                assert ro.assign(k)[0] == ROLE_CANARY


def test_canary_fraction_statistics():
    sp = _splitter()
    ro = sp.begin_canary("m", "2", fraction=0.25)
    keys = [f"user-{i}" for i in range(4000)]
    share = sum(ro.assign(k)[0] == ROLE_CANARY for k in keys) / len(keys)
    assert 0.20 < share < 0.30, f"canary share {share:.3f} far from 0.25"


def test_shadow_assignment_mirrors_without_moving_traffic():
    sp = _splitter()
    ro = sp.begin_shadow("m", "2", mirror_fraction=0.5)
    keys = [f"user-{i}" for i in range(2000)]
    roles = {ro.assign(k) for k in keys}
    assert all(role == ROLE_STABLE for role, _ in roles)
    mirrored = sum(ro.assign(k)[1] for k in keys) / len(keys)
    assert 0.42 < mirrored < 0.58, f"mirror share {mirrored:.3f} far from 0.5"


def test_shadow_and_canary_draws_are_independent_of_placement():
    """The canary draw uses its own salt domain: the set of canary-assigned
    keys must not be correlated with ring placement salts."""
    sp = _splitter()
    ro = sp.begin_canary("m", "2", fraction=0.5)
    from repro.fleet import HashRing
    ring = HashRing(["r0", "r1"], vnodes=32)
    keys = [f"user-{i}" for i in range(2000)]
    on_r0_and_canary = sum(
        1 for k in keys
        if ring.lookup(k) == "r0" and ro.assign(k)[0] == ROLE_CANARY)
    frac = on_r0_and_canary / len(keys)
    # independent draws: P(r0) * P(canary) ~ 0.5 * 0.5
    assert 0.17 < frac < 0.33, f"joint fraction {frac:.3f} far from 0.25"
