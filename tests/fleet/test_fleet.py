"""Fleet integration: failover, self-heal, rollouts, SLO windows, metrics.

Tests drive :meth:`Fleet.health_tick` by hand instead of starting the
background loop — every lifecycle transition is deterministic.
"""
from __future__ import annotations

import numpy as np
import pytest

from repro.fleet import (DEAD, PARTITIONED, READY, ROLE_CANARY, CANARY,
                         ROLLED_BACK)
from repro.telemetry.obs import parse_prometheus
from tests.fleet.conftest import (failing_runner, gain_runner, make_fleet,
                                  sample)


def _drain(requests, timeout=10.0):
    return [r.result(timeout=timeout) for r in requests]


def test_serves_and_accounts_primary_window_only():
    with make_fleet(replicas=3) as fleet:
        resps = _drain([fleet.submit("m", sample(float(i)))
                        for i in range(30)])
    assert all(r.ok for r in resps)
    assert np.array_equal(resps[3].logits,
                          np.full(4, 6.0, dtype=np.float32))
    st = fleet.status()["models"]["m"]
    assert st["window"]["primary"]["requests"] == 30
    assert st["window"]["canary"]["requests"] == 0
    assert st["window"]["shadow"]["requests"] == 0
    assert len(st["replicas"]) == 3
    assert fleet.requests_lost == 0


def test_kill_under_load_fails_over_and_self_heals():
    fleet = make_fleet(replicas=3)
    try:
        pending = [fleet.submit("m", sample(1.0)) for _ in range(20)]
        victim = fleet.replicas("m")[1]
        victim.kill()
        pending += [fleet.submit("m", sample(2.0)) for _ in range(20)]
        resps = _drain(pending)
        assert all(r.ok for r in resps), (
            f"{sum(not r.ok for r in resps)} requests lost to the kill")
        assert fleet.requests_lost == 0
        fleet.health_tick()            # detect the corpse, spawn replacement
        reps = fleet.replicas("m")
        assert victim.replica_id not in {r.replica_id for r in reps}
        assert len([r for r in reps if r.state == READY]) == 3
        # the replacement serves
        assert fleet.submit("m", sample(3.0)).result(timeout=10.0).ok
    finally:
        fleet.close()


def test_partition_ejects_but_does_not_replace():
    fleet = make_fleet(replicas=3)
    try:
        fleet.health_tick()
        victim = fleet.replicas("m")[0]
        victim.partition()
        fleet.health_tick()
        assert victim.state == PARTITIONED
        routing = fleet.status()["models"]["m"]["routing"]
        assert victim.replica_id not in routing["stable"]
        # partitioned counts toward target: no replacement is spawned
        assert len(fleet.replicas("m")) == 3
        # traffic still flows on the survivors
        assert fleet.submit("m", sample(1.0)).result(timeout=10.0).ok
        victim.heal()
        fleet.health_tick()
        assert victim.state == READY
        routing = fleet.status()["models"]["m"]["routing"]
        assert victim.replica_id in routing["stable"]
    finally:
        fleet.close()


def test_canary_serves_candidate_and_promote_cuts_over():
    fleet = make_fleet(replicas=3)
    try:
        fleet.register_version("m", "2", runner=gain_runner(5.0))
        fleet.begin_canary("m", "2", fraction=0.5)
        canaries = [r for r in fleet.replicas("m") if r.role == ROLE_CANARY]
        assert canaries and all(r.active_version() == "2" for r in canaries)
        resps = _drain([fleet.submit("m", sample(1.0),
                                     route_key=f"user-{i}")
                        for i in range(40)])
        gains = {float(r.logits[0]) for r in resps if r.ok}
        assert gains == {2.0, 5.0}, f"expected both versions, saw {gains}"
        st = fleet.status()["models"]["m"]
        assert 0 < st["window"]["canary"]["requests"] < 40
        assert st["window"]["primary"]["requests"] == 40
        fleet.promote("m")
        assert all(r.active_version() == "2" for r in fleet.replicas("m"))
        resp = fleet.submit("m", sample(1.0)).result(timeout=10.0)
        assert float(resp.logits[0]) == 5.0
    finally:
        fleet.close()


def test_auto_rollback_on_canary_budget_burn():
    fleet = make_fleet(replicas=3, rollback_min_requests=5,
                       rollback_burn=1.0)
    try:
        fleet.register_version("m", "2", runner=failing_runner)
        fleet.begin_canary("m", "2", fraction=0.5)
        assert fleet.splitter.get("m").state == CANARY
        # push keys until enough land on the (failing) canary
        for i in range(60):
            fleet.submit("m", sample(1.0),
                         route_key=f"user-{i}").result(timeout=10.0)
        fleet.health_tick()
        ro = fleet.splitter.get("m")
        assert ro.state == ROLLED_BACK, (
            f"burning canary not rolled back: {ro.to_json()}")
        assert "burn" in ro.reason
        # every replica is back on stable and serving
        assert all(r.active_version() == "1" for r in fleet.replicas("m"))
        resp = fleet.submit("m", sample(1.0),
                            route_key="user-0").result(timeout=10.0)
        assert resp.ok and float(resp.logits[0]) == 2.0
    finally:
        fleet.close()


def test_shadow_traffic_never_touches_primary_slo():
    fleet = make_fleet(replicas=3)
    try:
        fleet.register_version("m", "2", runner=failing_runner)
        fleet.begin_shadow("m", "2", mirror_fraction=1.0)
        resps = _drain([fleet.submit("m", sample(1.0),
                                     route_key=f"user-{i}")
                        for i in range(20)])
        assert all(r.ok for r in resps)
        # let the mirrored copies resolve
        import time
        deadline = time.monotonic() + 10.0
        while time.monotonic() < deadline:
            st = fleet.status()["models"]["m"]
            if st["window"]["shadow"]["requests"] >= 20:
                break
            time.sleep(0.05)
        st = fleet.status()["models"]["m"]
        primary, shadow = st["window"]["primary"], st["window"]["shadow"]
        assert primary["requests"] == 20 and primary["failed"] == 0
        assert shadow["requests"] == 20 and shadow["failed"] == 20, (
            "the failing candidate must burn only the shadow window")
        # a silently failing shadow never triggers rollback (operator's call)
        fleet.health_tick()
        assert fleet.splitter.get("m").state == "shadow"
        assert fleet.requests_lost == 0
    finally:
        fleet.close()


def test_exposition_namespaces_replicas_and_round_trips():
    with make_fleet(replicas=2) as fleet:
        _drain([fleet.submit("m", sample(1.0)) for _ in range(10)])
        text = fleet.render_exposition()
    series = parse_prometheus(text)
    ups = series["fleet_replica_up"]
    replicas = {labels["replica"] for labels, _ in ups}
    assert len(replicas) == 2, f"expected 2 replica labels, got {replicas}"
    assert all(labels["model"] == "m" for labels, _ in ups)
    # per-replica server gauges carry the replica label too, so two
    # replicas of one model never collide into one series
    depth = series["server_queue_depth_now"]
    assert {labels["replica"] for labels, _ in depth} == replicas
    per_rep = series["server_window_requests"]
    assert all("replica" in labels for labels, _ in per_rep)
    assert sum(v for _, v in per_rep) == 10
    # fleet-level window series aggregate per traffic class
    fw = series["fleet_window_requests"]
    assert {labels["class"] for labels, _ in fw} == {
        "primary", "canary", "shadow"}
    assert {(l["class"], v) for l, v in fw} == {
        ("primary", 10.0), ("canary", 0.0), ("shadow", 0.0)}


def test_submit_unknown_model_raises():
    with make_fleet(replicas=1) as fleet:
        with pytest.raises(KeyError, match="not added"):
            fleet.submit("ghost", sample(1.0))


def test_group_down_resolves_failed_not_hangs():
    fleet = make_fleet(replicas=2, self_heal=False)
    try:
        for rep in fleet.replicas("m"):
            rep.kill()
        fleet.health_tick()
        resp = fleet.submit("m", sample(1.0)).result(timeout=10.0)
        assert not resp.ok and resp.retryable
    finally:
        fleet.close()
