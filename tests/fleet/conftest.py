"""Shared fixtures for the replicated-fleet suite.

Everything here serves stub runners — the fleet's routing, health, rollout
and autoscaling logic is independent of model build cost, and the
bit-exactness-under-replication contract is covered end-to-end by
``benchmarks/test_fleet_throughput.py``.
"""
from __future__ import annotations

import numpy as np
import pytest

from repro.fleet import Fleet, FleetConfig
from repro.server import ServerConfig


def pytest_collection_modifyitems(items):
    """Everything under tests/fleet carries the `fleet` marker so the suite
    can be selected (`-m fleet`) or skipped in isolation."""
    for item in items:
        item.add_marker(pytest.mark.fleet)


def gain_runner(gain: float):
    """A deterministic stub model: ``logits = flat[:, :4] * gain``."""
    g = np.float32(gain)

    def run(batch):
        flat = np.asarray(batch, dtype=np.float32).reshape(len(batch), -1)
        return flat[:, :4] * g

    return run


def failing_runner(batch):
    raise RuntimeError("canary regression: refusing every batch")


def sample(value: float = 1.0) -> np.ndarray:
    return np.full((2, 4), value, dtype=np.float32)


def make_fleet(replicas: int = 3, *, runner=None, version: str = "1",
               model: str = "m", start: bool = False,
               **cfg_overrides) -> Fleet:
    """A fleet of stub replicas, one registered model, not yet started
    (tests drive ``health_tick`` by hand unless ``start=True``)."""
    defaults = dict(replicas=replicas, health_interval_s=0.05,
                    default_deadline_s=5.0,
                    server=ServerConfig(max_batch=4, default_deadline_s=5.0))
    defaults.update(cfg_overrides)
    fleet = Fleet(FleetConfig(**defaults))
    fleet.add_model(model)
    fleet.register_version(model, version,
                           runner=runner if runner is not None
                           else gain_runner(2.0))
    if start:
        fleet.start()
    return fleet
