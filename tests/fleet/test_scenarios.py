"""Shaped multi-tenant load scenarios: reproducibility + report shape."""
from __future__ import annotations

import numpy as np
import pytest

from repro.server import LoadGenError
from repro.fleet import (Scenario, diurnal_wave, flash_crowd, mixed_sizes,
                         run_scenario, slow_loris, standard_suite)
from tests.fleet.conftest import make_fleet, sample


def test_scenario_validation():
    with pytest.raises(LoadGenError, match="duration_s"):
        diurnal_wave("m", duration_s=0.0)
    with pytest.raises(LoadGenError, match="peak_rate_hz"):
        Scenario("bad", [], 1.0, rate_fn=lambda t: 1.0, peak_rate_hz=0.0)


def test_arrivals_are_reproducible_and_respect_the_envelope():
    sc = flash_crowd("m", base_hz=30.0, spike_mult=4.0, duration_s=3.0)
    a = sc.arrivals(np.random.default_rng(7))
    b = sc.arrivals(np.random.default_rng(7))
    assert np.array_equal(a, b)
    assert len(a) > 0 and a[-1] < sc.duration_s
    assert np.all(np.diff(a) >= 0)
    # the spike window holds a disproportionate share of the arrivals
    t0, t1 = 0.4 * 3.0, 0.7 * 3.0
    in_spike = np.sum((a >= t0) & (a < t1)) / len(a)
    assert in_spike > 0.35, f"spike share {in_spike:.2f} too small"


def test_diurnal_wave_peaks_mid_period():
    sc = diurnal_wave("m", trough_hz=10.0, peak_hz=90.0, duration_s=4.0)
    a = sc.arrivals(np.random.default_rng(0))
    first_half = np.sum(a < 2.0) / len(a)
    assert first_half > 0.6, (
        f"sine wave should front-load arrivals, got {first_half:.2f}")


def test_standard_suite_names_and_tenants():
    suite = standard_suite("m")
    assert [s.name for s in suite] == ["diurnal_wave", "flash_crowd",
                                       "slow_loris"]
    loris = suite[2]
    assert {t.name for t in loris.tenants} == {"fast", "loris"}
    assert any(t.collect_delay_s > 0 for t in loris.tenants)


def test_run_scenario_validates_sample_pools():
    sc = mixed_sizes("small", "large", rate_hz=20.0, duration_s=0.5)
    with make_fleet(replicas=1, model="small") as fleet:
        with pytest.raises(LoadGenError, match="no samples"):
            run_scenario(fleet, sc, {"small": [sample()]})


def test_slow_loris_against_a_fleet_reports_per_tenant():
    sc = slow_loris("m", rate_hz=60.0, duration_s=1.0, loris_share=0.3,
                    collect_delay_s=0.2, deadline_s=5.0)
    with make_fleet(replicas=2) as fleet:
        report = run_scenario(fleet, sc, {"m": [sample(1.0), sample(2.0)]},
                              seed=3)
    assert report.requests == report.ok + report.shed + report.failed
    assert report.failed == 0, "uncollected futures must not fail requests"
    per = report.per_tenant
    assert set(per) == {"fast", "loris"}
    assert per["fast"]["requests"] + per["loris"]["requests"] \
        == report.requests
    assert per["loris"]["requests"] > 0
    # the loris collecting late must not sink the fast tenant
    assert per["fast"]["failed"] == 0 and per["fast"]["shed"] == 0
    j = report.to_json()
    assert j["model"] == "<scenario:slow_loris>" and "per_tenant" in j


def test_mixed_sizes_routes_each_tenant_to_its_model():
    sc = mixed_sizes("small", "large", rate_hz=40.0, duration_s=1.0,
                     large_share=0.4, deadline_s=5.0)
    fleet = make_fleet(replicas=2, model="small")
    try:
        fleet.add_model("large")
        from tests.fleet.conftest import gain_runner
        fleet.register_version("large", "1", runner=gain_runner(7.0))
        fleet.start()
        report = run_scenario(
            fleet, sc, {"small": [sample(1.0)], "large": [sample(1.0)]},
            seed=5)
    finally:
        fleet.close()
    assert report.failed == 0
    per = report.per_tenant
    assert per["small"]["requests"] > 0 and per["large"]["requests"] > 0
    st = fleet.status()["models"]
    assert st["small"]["window"]["primary"]["requests"] \
        == per["small"]["requests"]
    assert st["large"]["window"]["primary"]["requests"] \
        == per["large"]["requests"]
