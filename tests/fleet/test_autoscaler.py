"""SLO-driven autoscaling policy: thresholds, cooldowns, bounds."""
from __future__ import annotations

import pytest

from repro.fleet import (HOLD, SCALE_IN, SCALE_OUT, Autoscaler,
                        AutoscalePolicy)


class FakeClock:
    def __init__(self):
        self.t = 1000.0

    def __call__(self):
        return self.t

    def advance(self, s):
        self.t += s


def window(requests=100, burn=0.0, p99_ms=10.0):
    return {"requests": requests,
            "latency_ms": {"p50": p99_ms / 2, "p95": p99_ms, "p99": p99_ms},
            "slo": {"target": 0.99, "error_budget_burn": burn}}


def scaler(**policy):
    clock = FakeClock()
    defaults = dict(min_replicas=1, max_replicas=4, scale_out_burn=1.0,
                    scale_in_burn=0.2, p99_budget_fraction=0.5,
                    scale_out_cooldown_s=5.0, scale_in_cooldown_s=15.0,
                    min_window_requests=20)
    defaults.update(policy)
    return Autoscaler(AutoscalePolicy(**defaults), clock=clock), clock


def test_policy_validation():
    with pytest.raises(ValueError, match="min_replicas"):
        AutoscalePolicy(min_replicas=0)
    with pytest.raises(ValueError, match="max_replicas"):
        AutoscalePolicy(min_replicas=3, max_replicas=2)
    with pytest.raises(ValueError, match="hysteresis"):
        AutoscalePolicy(scale_in_burn=1.0, scale_out_burn=1.0)


def test_scale_out_on_burn_with_cooldown():
    asc, clock = scaler()
    d = asc.tick("m", window(burn=2.0, p99_ms=300.0), current=2,
                 deadline_s=0.25)
    assert d.action == SCALE_OUT and d.target == 3
    # immediately after: same burn, but the cooldown gates
    d = asc.tick("m", window(burn=2.0, p99_ms=300.0), current=3,
                 deadline_s=0.25)
    assert d.action == HOLD and "cooldown" in d.reason
    clock.advance(6.0)
    d = asc.tick("m", window(burn=2.0, p99_ms=300.0), current=3,
                 deadline_s=0.25)
    assert d.action == SCALE_OUT and d.target == 4


def test_scale_out_clamped_at_max():
    asc, _ = scaler(max_replicas=2)
    d = asc.tick("m", window(burn=5.0), current=2, deadline_s=0.25)
    assert d.action == HOLD and d.target == 2


def test_scale_in_requires_low_burn_and_low_p99():
    asc, clock = scaler()
    # low burn but p99 above half the deadline -> hold (latency cliff guard)
    d = asc.tick("m", window(burn=0.0, p99_ms=200.0), current=3,
                 deadline_s=0.25)
    assert d.action == HOLD
    # low burn AND comfortable p99 -> shrink by one
    d = asc.tick("m", window(burn=0.0, p99_ms=50.0), current=3,
                 deadline_s=0.25)
    assert d.action == SCALE_IN and d.target == 2
    # scale-in cooldown is slower than scale-out
    d = asc.tick("m", window(burn=0.0, p99_ms=50.0), current=2,
                 deadline_s=0.25)
    assert d.action == HOLD and "cooldown" in d.reason
    clock.advance(16.0)
    d = asc.tick("m", window(burn=0.0, p99_ms=50.0), current=2,
                 deadline_s=0.25)
    assert d.action == SCALE_IN and d.target == 1


def test_scale_in_clamped_at_min():
    asc, _ = scaler(min_replicas=2)
    d = asc.tick("m", window(burn=0.0, p99_ms=1.0), current=2,
                 deadline_s=0.25)
    assert d.action == HOLD and d.target == 2


def test_thin_window_holds():
    asc, _ = scaler()
    d = asc.tick("m", window(requests=5, burn=9.0), current=1,
                 deadline_s=0.25)
    assert d.action == HOLD and "thin" in d.reason


def test_out_of_bounds_current_is_corrected():
    asc, _ = scaler(min_replicas=2, max_replicas=4)
    assert asc.tick("m", window(), 1, 0.25).target == 2
    assert asc.tick("m", window(), 6, 0.25).target == 4


def test_hysteresis_band_holds():
    asc, _ = scaler()
    d = asc.tick("m", window(burn=0.5, p99_ms=50.0), current=2,
                 deadline_s=0.25)
    assert d.action == HOLD and "hysteresis" in d.reason


def test_history_is_per_model_and_bounded():
    asc, _ = scaler()
    for i in range(10):
        asc.tick("a", window(), current=1, deadline_s=0.25)
        asc.tick("b", window(), current=1, deadline_s=0.25)
    assert len(asc.history("a")) == 10
    assert len(asc.history()) == 20
    assert all(d.to_json()["model"] == "a" for d in asc.history("a"))
