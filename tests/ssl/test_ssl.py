"""SSL losses and the XD model pair."""
import numpy as np
import pytest

from repro.models import build_model
from repro.ssl import Projector, XDModel, barlow_loss, cross_correlation, xd_loss
from repro.tensor import Tensor, randn


class TestCrossCorrelation:
    def test_identical_views_give_identity(self, rng):
        z = randn(64, 8, rng=rng)
        c = cross_correlation(z, z)
        np.testing.assert_allclose(np.diag(c.data), 1.0, atol=1e-3)

    def test_independent_views_near_zero_offdiag(self, rng):
        z1 = randn(512, 4, rng=rng)
        z2 = randn(512, 4, rng=np.random.default_rng(99))
        c = cross_correlation(z1, z2).data
        off = c[~np.eye(4, dtype=bool)]
        assert np.abs(off).mean() < 0.2

    def test_shape(self, rng):
        c = cross_correlation(randn(16, 6, rng=rng), randn(16, 6, rng=rng))
        assert c.shape == (6, 6)


class TestBarlowLoss:
    def test_zero_for_perfectly_aligned_decorrelated(self, rng):
        # orthogonal embedding dims, identical views -> loss ~ 0
        n = 256
        z = np.zeros((n, 4), dtype=np.float32)
        rng2 = np.random.default_rng(0)
        z = rng2.standard_normal((n, 4)).astype(np.float32)
        q, _ = np.linalg.qr(z.T @ z)  # decorrelate
        z = z @ q.astype(np.float32)
        t = Tensor(z)
        loss = barlow_loss(t, t)
        assert loss.item() < 0.1

    def test_positive_for_mismatched_views(self, rng):
        loss = barlow_loss(randn(64, 8, rng=rng), randn(64, 8, rng=np.random.default_rng(1)))
        assert loss.item() > 1.0

    def test_gradient_flows(self, rng):
        z1 = randn(32, 4, rng=rng, requires_grad=True)
        z2 = randn(32, 4, rng=np.random.default_rng(2), requires_grad=True)
        barlow_loss(z1, z2).backward()
        assert z1.grad is not None and np.abs(z1.grad).max() > 0

    def test_lambda_scales_offdiag_penalty(self, rng):
        z1 = randn(64, 6, rng=rng)
        z2 = randn(64, 6, rng=np.random.default_rng(3))
        small = barlow_loss(z1, z2, lambda_offdiag=1e-4).item()
        large = barlow_loss(z1, z2, lambda_offdiag=1.0).item()
        assert large > small


class TestXDLoss:
    def test_teacher_detached(self, rng):
        zs = randn(32, 4, rng=rng, requires_grad=True)
        zt = randn(32, 4, rng=np.random.default_rng(4), requires_grad=True)
        xd_loss(zs, zt).backward()
        assert zs.grad is not None
        assert zt.grad is None  # distillation never updates the teacher branch

    def test_aligned_embeddings_minimize(self, rng):
        z = randn(128, 8, rng=rng)
        aligned = xd_loss(z, z).item()
        random = xd_loss(z, randn(128, 8, rng=np.random.default_rng(5))).item()
        assert aligned < random


class TestXDModel:
    def test_loss_runs_and_backprops(self, tiny_data, rng):
        student = build_model("mobilenet-v1", num_classes=10, width_mult=0.25)
        teacher = build_model("resnet20", num_classes=10, width=8)
        pair = XDModel(student, teacher, student.out_channels, 32, embed_dim=16)
        x = Tensor(tiny_data[0].images[:16])
        loss = pair.loss(x, x)
        loss.backward()
        gs = [p.grad for p in student.parameters() if p.grad is not None]
        gt = [p.grad for p in teacher.parameters() if p.grad is not None]
        assert gs and gt  # both encoders train (teacher via its own Barlow term)

    def test_projector_shape(self, rng):
        p = Projector(32, 64, 16)
        out = p(randn(4, 32, rng=rng))
        assert out.shape == (4, 16)
