"""End-to-end: the paper's five-line workflow, export, reload, verify."""
import os

import numpy as np
import pytest

from repro.core import T2C
from repro.core.qconfig import QConfig
from repro.data import make_dataset
from repro.export.formats import load_tensor
from repro.export.writer import export_model
from repro.models import build_model
from repro.tensor import Tensor, no_grad
from repro.trainer import TRAINER, evaluate
from repro.utils import seed_everything

import json


@pytest.fixture(scope="module")
def workflow_artifacts(tmp_path_factory):
    """Run the full five-line flow once; share across assertions."""
    seed_everything(42)
    ds = make_dataset("synthetic-cifar10", noise=0.35, num_classes=4)
    train, test = ds.splits(600, 200)

    model = build_model("resnet20", num_classes=4, width=8)
    trainer = TRAINER["qat"](model, qcfg=QConfig(wbit=4, abit=4, wq="sawb", aq="pact"),
                             train_set=train, test_set=test, epochs=3, batch_size=50, lr=0.1)
    trainer.fit()
    nn2c = T2C(trainer.qmodel)
    out_dir = str(tmp_path_factory.mktemp("export"))
    qnn = nn2c.nn2chip(save_model=True, export_dir=out_dir, formats=("dec", "hex", "qint"))
    return dict(train=train, test=test, trainer=trainer, qmodel=trainer.qmodel,
                qnn=qnn, out_dir=out_dir)


class TestFiveLineWorkflow:
    def test_qat_learned(self, workflow_artifacts):
        acc = workflow_artifacts["trainer"].evaluate()
        assert acc > 0.6  # 4 classes, chance 0.25

    def test_integer_model_tracks_fakequant(self, workflow_artifacts):
        a = workflow_artifacts
        fq_acc = a["trainer"].evaluate()
        int_acc = evaluate(a["qnn"], a["test"])
        assert abs(fq_acc - int_acc) < 0.08

    def test_exported_weight_reloads_identically(self, workflow_artifacts):
        a = workflow_artifacts
        with open(os.path.join(a["out_dir"], "manifest.json")) as f:
            manifest = json.load(f)
        state = a["qnn"].state_dict()
        name = "stem.conv.weight"
        entry = manifest["tensors"][name]
        hexed = load_tensor(os.path.join(a["out_dir"], entry["files"]["hex"]),
                            "hex", entry["bits"], shape=entry["shape"])
        np.testing.assert_array_equal(hexed, state[name])

    def test_hex_and_dec_encode_same_values(self, workflow_artifacts):
        a = workflow_artifacts
        with open(os.path.join(a["out_dir"], "manifest.json")) as f:
            manifest = json.load(f)
        name = "stem.conv.weight"
        entry = manifest["tensors"][name]
        hexed = load_tensor(os.path.join(a["out_dir"], entry["files"]["hex"]),
                            "hex", entry["bits"], shape=entry["shape"])
        dec = load_tensor(os.path.join(a["out_dir"], entry["files"]["dec"]),
                          "dec", entry["bits"], shape=entry["shape"])
        np.testing.assert_array_equal(hexed, dec)

    def test_4bit_weights_within_range(self, workflow_artifacts):
        state = workflow_artifacts["qnn"].state_dict()
        w = state["stem.conv.weight"]
        assert w.min() >= -8 and w.max() <= 7  # 4-bit signed grid

    def test_rebuilt_model_from_export_matches(self, workflow_artifacts):
        """Load every exported integer tensor into a fresh repack and compare
        logits — the full RTL-style reload path."""
        a = workflow_artifacts
        import copy
        clone = copy.deepcopy(a["qnn"])
        with open(os.path.join(a["out_dir"], "manifest.json")) as f:
            manifest = json.load(f)
        own = dict(clone.named_parameters())
        own.update(dict(clone.named_buffers()))
        for name, entry in manifest["tensors"].items():
            if not entry["integer"] or name not in own:
                continue
            arr = load_tensor(os.path.join(a["out_dir"], entry["files"]["dec"]),
                              "dec", entry["bits"], shape=entry["shape"])
            own[name].data = arr.astype(own[name].data.dtype)
        x = Tensor(a["test"].images[:16])
        with no_grad():
            np.testing.assert_array_equal(clone(x).data, a["qnn"](x).data)
