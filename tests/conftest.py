"""Shared fixtures: RNGs, tiny datasets, small pre-trained models.

The heavier fixtures are session-scoped so the training cost is paid once per
test run.
"""
from __future__ import annotations

import numpy as np
import pytest

from repro.data import make_dataset
from repro.models import build_model
from repro.tensor import Tensor
from repro.utils import seed_everything


@pytest.fixture
def rng():
    return np.random.default_rng(0)


@pytest.fixture(autouse=True)
def _seed():
    seed_everything(0)


@pytest.fixture(scope="session")
def tiny_data():
    """Small synthetic-cifar10 splits (train=640, test=200)."""
    ds = make_dataset("synthetic-cifar10", noise=0.35)
    return ds.splits(640, 200)


@pytest.fixture(scope="session")
def resnet20_with_stats(tiny_data):
    """An (untrained) resnet20 with populated BN running statistics."""
    seed_everything(1)
    train, _ = tiny_data
    model = build_model("resnet20", num_classes=10, width=8)
    model.train()
    for i in range(3):
        model(Tensor(train.images[i * 64:(i + 1) * 64]))
    model.eval()
    return model


@pytest.fixture(scope="session")
def mobilenet_with_stats(tiny_data):
    """A briefly-trained MobileNet: untrained depthwise nets have near-tied
    logits that amplify integer-path LSB noise into meaningless correlation
    numbers, so equivalence tests need a model with real decision margins."""
    seed_everything(2)
    train, _ = tiny_data
    model = build_model("mobilenet-v1", num_classes=10, width_mult=1.0)
    from repro.optim import SGD
    from repro.tensor import functional as F

    opt = SGD(model.parameters(), lr=0.2, momentum=0.9, weight_decay=5e-4)
    model.train()
    for epoch in range(8):
        for i in range(len(train.images) // 64):
            x, y = train.images[i * 64:(i + 1) * 64], train.labels[i * 64:(i + 1) * 64]
            opt.zero_grad()
            F.cross_entropy(model(Tensor(x)), y).backward()
            opt.step()
    model.eval()
    return model


def numgrad(f, x, eps=1e-3):
    """Central-difference numeric gradient of scalar-valued ``f`` wrt ``x``."""
    g = np.zeros_like(x.data)
    it = np.nditer(x.data, flags=["multi_index"])
    while not it.finished:
        i = it.multi_index
        old = x.data[i]
        x.data[i] = old + eps
        fp = f().item()
        x.data[i] = old - eps
        fm = f().item()
        x.data[i] = old
        g[i] = (fp - fm) / (2 * eps)
        it.iternext()
    return g


@pytest.fixture
def gradcheck():
    def check(f, tensors, atol=5e-2, rtol=5e-2):
        loss = f()
        for t in tensors:
            t.grad = None
        loss.backward()
        for t in tensors:
            ng = numgrad(f, t)
            assert t.grad is not None, "no gradient accumulated"
            np.testing.assert_allclose(t.grad, ng, atol=atol, rtol=rtol)
    return check
