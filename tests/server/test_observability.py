"""Live observability through a real gateway: trace propagation across the
worker process boundary, flight-recorder auto-dumps, SLO windows, the status
surface, per-op profiling attribution and the CLI top/trace workflow.
"""
from __future__ import annotations

import json
import os
import signal
import time

import numpy as np
import pytest

from repro import cli
from repro.server import ModelRegistry, Server
from repro.telemetry import live
from tests.server.conftest import StubPlan, stub_sample

pytestmark = pytest.mark.obs

needs_fork = pytest.mark.skipif(
    not hasattr(os, "fork"), reason="pool tests need fork")


def _stub_server(**overrides) -> Server:
    reg = ModelRegistry()
    reg.register("stub", "1", runner=StubPlan())
    defaults = dict(max_batch=4, default_deadline_s=5.0, max_linger_s=0.002,
                    tracing=True)
    defaults.update(overrides)
    return Server(reg, **defaults)


def _span_names(roots):
    names = []

    def walk(node):
        names.append(node["span"]["name"])
        for c in node["children"]:
            walk(c)

    for r in roots:
        walk(r)
    return names


def _wait_inflight(server, name, timeout=10.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        lane = server._lanes.get(name)
        if lane is not None and lane.pool is not None and lane.inflight:
            return lane
        time.sleep(0.002)
    raise AssertionError(f"lane {name} never got a batch in flight")


class TestTracePropagation:
    @needs_fork
    def test_pool_request_yields_one_connected_tree(self):
        """The acceptance criterion: a traced request through a real
        PlanPool worker process produces a single connected span tree —
        admit -> queue -> batch -> worker execution -> reply — with no
        orphans, and the worker span genuinely comes from another pid."""
        with _stub_server(workers=2) as srv:
            pendings = [srv.submit("stub", stub_sample(float(i)))
                        for i in range(8)]
            for p in pendings:
                assert p.result(timeout=60).ok
            # worker spans ride the *next* done-queue poll; give the lane a
            # beat to drain them before asserting
            deadline = time.monotonic() + 10.0
            while time.monotonic() < deadline:
                if all("worker.exec" in _span_names(
                        srv.trace_tree(p.request_id)[0]) for p in pendings):
                    break
                time.sleep(0.01)
            for p in pendings:
                roots, orphans = srv.trace_tree(p.request_id)
                assert orphans == [], f"request {p.request_id}: orphan spans"
                assert len(roots) == 1, f"request {p.request_id}: {roots}"
                root = roots[0]["span"]
                assert root["name"] == "request"
                assert root["attrs"]["status"] == "ok"
                names = _span_names(roots)
                assert "queue.wait" in names
                assert "batch" in names
                assert "worker.exec" in names
                worker = [n for n in _flatten(roots)
                          if n["span"]["name"] == "worker.exec"]
                assert worker[0]["span"]["proc"] == "worker"
                assert worker[0]["span"]["pid"] != os.getpid()
                # the worker span nests under the request's batch span
                batch = [n for n in _flatten(roots)
                         if n["span"]["name"] == "batch"][0]
                assert worker[0]["span"]["parent_id"] == \
                    batch["span"]["span_id"]

    def test_inline_request_tree_connected(self):
        with _stub_server(workers=0) as srv:
            p = srv.submit("stub", stub_sample(1.0))
            assert p.result(timeout=30).ok
            roots, orphans = srv.trace_tree(p.request_id)
        assert orphans == [] and len(roots) == 1
        names = _span_names(roots)
        assert names[0] == "request"
        assert "queue.wait" in names and "batch" in names and "exec" in names

    def test_tracing_off_stores_nothing(self):
        with _stub_server(workers=0, tracing=False) as srv:
            p = srv.submit("stub", stub_sample(1.0))
            assert p.result(timeout=30).ok
            assert len(srv.trace_store) == 0
            assert p.ctx is None

    @needs_fork
    def test_requeue_after_worker_death_keeps_tree_and_records_retry(self):
        """Kill every pool worker while a traced batch is in flight: the
        batch is requeued onto the respawned pool, the request resolves Ok,
        and its span tree survives — connected, with an explicit `retry`
        marker under the root."""
        reg = ModelRegistry()
        reg.register("slowstub", "1", runner=StubPlan(delay_s=0.4))
        with Server(reg, max_batch=4, workers=2, tracing=True,
                    default_deadline_s=60.0, max_linger_s=0.002) as srv:
            pendings = [srv.submit("slowstub", stub_sample(float(i)))
                        for i in range(4)]
            lane = _wait_inflight(srv, "slowstub")
            for proc in lane.pool.procs:
                os.kill(proc.pid, signal.SIGKILL)
            results = [p.result(timeout=120) for p in pendings]
            assert all(r.ok for r in results), results
            retried = 0
            for p in pendings:
                roots, orphans = srv.trace_tree(p.request_id)
                assert orphans == []
                assert len(roots) == 1
                names = _span_names(roots)
                assert "batch" in names
                if "retry" in names:
                    retried += 1
            # at least the batch in flight at kill time was requeued and
            # carries the retry marker in its span tree
            assert retried >= 1
            assert lane.stats.worker_deaths >= 1
            assert lane.flight.last_dump is not None
            assert lane.flight.last_dump["reason"] == "worker_death"


def _flatten(roots):
    out = []

    def walk(node):
        out.append(node)
        for c in node["children"]:
            walk(c)

    for r in roots:
        walk(r)
    return out


class TestFlightRecorder:
    def test_forced_deadline_miss_auto_dumps(self, tmp_path):
        """A request answered after its deadline must leave a post-mortem:
        the lane flight recorder auto-dumps with reason deadline_miss (and
        writes it to dump_dir)."""
        reg = ModelRegistry()
        reg.register("slow", "1", runner=StubPlan(delay_s=0.08))
        with Server(reg, max_batch=4, workers=0, max_linger_s=0.0,
                    default_deadline_s=0.02, exec_time_init_s=0.0001,
                    dump_dir=str(tmp_path)) as srv:
            p = srv.submit("slow", stub_sample(1.0))
            r = p.result(timeout=30)
            assert r.ok and r.latency_s > 0.02
            lane = srv._lanes["slow"]
            assert lane.stats.deadline_miss >= 1
            assert lane.flight.last_dump is not None
            assert lane.flight.last_dump["reason"] == "deadline_miss"
            dumps = [f for f in os.listdir(tmp_path)
                     if f.startswith("flight_slow") and "deadline_miss" in f]
            assert dumps, os.listdir(tmp_path)
            with open(tmp_path / dumps[0]) as f:
                dump = json.load(f)
            assert dump["reason"] == "deadline_miss"
            kinds = [e["kind"] for e in dump["events"]]
            assert "batch_complete" in kinds

    def test_shed_recorded_and_window_counts(self):
        with _stub_server(workers=0, max_queue=1,
                          default_deadline_s=0.000001) as srv:
            # an impossible deadline: admission sheds immediately
            p = srv.submit("stub", stub_sample(1.0))
            r = p.result(timeout=5)
            assert not r.ok
            lane = srv._lanes["stub"]
            assert lane.window.summary()["shed"] >= 1
            assert lane.flight.last_dump["reason"] == "shed"
            # the shed request still left a (single-span) trace
            roots, orphans = srv.trace_tree(p.request_id)
            assert len(roots) == 1 and orphans == []
            assert roots[0]["span"]["attrs"]["status"] == "shed"

    def test_manual_dump_all_lanes(self, tmp_path):
        with _stub_server(workers=0) as srv:
            assert srv.submit("stub", stub_sample(1.0)).result(30).ok
            path = str(tmp_path / "fr.json")
            dumps = srv.dump_flight_recorder(path=path)
            assert "stub" in dumps
            assert any(e["kind"] == "batch_complete"
                       for e in dumps["stub"]["events"])
            with open(path) as f:
                assert "stub" in json.load(f)

    def test_dump_dir_rotates_to_max_dumps(self, tmp_path):
        """Auto-dumps must not grow without bound: with ``max_dumps=N``
        only the newest N on-disk dumps per lane survive each write."""
        with _stub_server(workers=0, dump_dir=str(tmp_path),
                          max_dumps=3) as srv:
            assert srv.submit("stub", stub_sample(1.0)).result(30).ok
            lane = srv._lanes["stub"]
            for i in range(8):
                assert lane.auto_dump(f"test{i}", force=True) is not None
            dumps = sorted(f for f in os.listdir(tmp_path)
                           if f.startswith("flight_stub_"))
            assert len(dumps) == 3, dumps
            # the survivors are the *newest* three (sequence-numbered names)
            assert [d.split("_")[2] for d in dumps] == ["006", "007", "008"]

    def test_dump_rotation_unlimited_when_zero(self, tmp_path):
        with _stub_server(workers=0, dump_dir=str(tmp_path),
                          max_dumps=0) as srv:
            assert srv.submit("stub", stub_sample(1.0)).result(30).ok
            lane = srv._lanes["stub"]
            for i in range(5):
                lane.auto_dump(f"test{i}", force=True)
            dumps = [f for f in os.listdir(tmp_path)
                     if f.startswith("flight_stub_")]
            assert len(dumps) == 5, dumps


class TestStatusSurface:
    def test_status_and_exposition_coherent(self):
        with _stub_server(workers=0, slo_target=0.95) as srv:
            for i in range(20):
                assert srv.submit("stub", stub_sample(float(i))).result(30).ok
            status = srv.status()
            m = status["models"]["stub"]
            assert m["window"]["ok"] == 20
            assert m["window"]["slo"]["target"] == 0.95
            assert m["window"]["slo"]["error_budget_burn"] == 0.0
            assert m["cumulative"]["ok"] == 20
            assert status["tracing"] is True
            assert status["traces_held"] == 20
            from repro.telemetry.obs import parse_prometheus

            parsed = parse_prometheus(srv.render_exposition())
            by_model = dict((lab["model"], v) for lab, v in
                            parsed["server_window_ok"])
            assert by_model["stub"] == 20.0
            assert "server_slo_error_budget_burn" in parsed

    def test_status_export_files_and_cli_top(self, tmp_path, capsys):
        out = str(tmp_path / "obs")
        with _stub_server(workers=0) as srv:
            srv.start_status_export(out, interval_s=0.05)
            for i in range(8):
                assert srv.submit("stub", stub_sample(float(i))).result(30).ok
            deadline = time.monotonic() + 10
            while time.monotonic() < deadline and not os.path.exists(
                    os.path.join(out, "metrics.prom")):
                time.sleep(0.01)
        # close() stops the exporter after a final write
        with open(os.path.join(out, "status.json")) as f:
            status = json.load(f)
        assert status["models"]["stub"]["window"]["requests"] >= 8
        from repro.telemetry.obs import parse_prometheus

        with open(os.path.join(out, "metrics.prom")) as f:
            assert "server_window_ok" in parse_prometheus(f.read())
        assert cli.main(["top", out, "--once"]) == 0
        frame = capsys.readouterr().out
        assert "stub" in frame and "burn" in frame

    def test_cli_trace_round_trip(self, tmp_path, capsys):
        with _stub_server(workers=0) as srv:
            p = srv.submit("stub", stub_sample(1.0))
            assert p.result(30).ok
            traces = str(tmp_path / "traces.jsonl")
            assert srv.dump_traces(traces) >= 3
        chrome = str(tmp_path / "chrome.json")
        assert cli.main(["trace", str(p.request_id), "--traces", traces,
                         "--chrome", chrome]) == 0
        text = capsys.readouterr().out
        assert "request" in text and "0 orphan(s)" in text
        with open(chrome) as f:
            events = json.load(f)["traceEvents"]
        assert {e["args"]["trace_id"] for e in events} == {p.request_id}
        assert cli.main(["trace", "999999", "--traces", traces]) == 1


class TestProfiling:
    def test_inline_profiling_attributes_wall_time(self, served_factory):
        """>= 90% of sampled plan wall time must land on named ops."""
        d, samples, _refs = served_factory("resnet20")
        reg = ModelRegistry()
        reg.register("resnet20", "1", d)
        with Server(reg, max_batch=4, workers=0, default_deadline_s=30.0,
                    profile_every=1, tracing=False) as srv:
            for i in range(8):
                assert srv.submit(
                    "resnet20", samples[i % len(samples)]).result(60).ok
            rep = srv.profile_report("resnet20")
        assert rep["sampled_batches"] >= 1
        assert rep["attributed_fraction"] >= 0.90, rep
        assert rep["per_op"][0]["seconds"] > 0
        kinds = {r["kind"] for r in rep["per_kind"]}
        assert kinds, "no op kinds attributed"

    @needs_fork
    def test_pool_profiling_ships_rows_to_gateway(self, served_factory):
        d, samples, _refs = served_factory("resnet20")
        reg = ModelRegistry()
        reg.register("resnet20", "1", d)
        with Server(reg, max_batch=4, workers=2, default_deadline_s=60.0,
                    profile_every=1, tracing=True) as srv:
            pendings = [srv.submit("resnet20", samples[i % len(samples)])
                        for i in range(8)]
            for p in pendings:
                assert p.result(timeout=120).ok
            deadline = time.monotonic() + 10
            while time.monotonic() < deadline:
                if srv._lanes["resnet20"].profile.report()[
                        "sampled_batches"] >= 1:
                    break
                time.sleep(0.01)
            rep = srv.profile_report("resnet20")
        assert rep["sampled_batches"] >= 1, \
            "worker profile rows never reached the gateway"
        assert rep["attributed_fraction"] >= 0.90, rep

    def test_plan_profiler_unit(self, served_factory):
        d, samples, _refs = served_factory("resnet20")
        plan = d.plan
        plan.enable_profiling(sample_every=2)
        try:
            x = np.stack(samples[:2])
            for _ in range(4):
                plan(x)
            rep = plan.profile_report()
        finally:
            plan.disable_profiling()
        assert rep["sampled_batches"] == 2   # every 2nd of 4 batches
        assert rep["attributed_fraction"] >= 0.90
