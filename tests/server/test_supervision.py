"""Degradation semantics: worker death, double death, hot swap under load.

The gateway's promise is *no silent loss and no hang*: every accepted
request resolves as a correct answer or a typed, honest error, whatever the
worker pool does underneath.
"""
from __future__ import annotations

import os
import signal
import threading
import time

import numpy as np
import pytest

from repro.server import Failed, ModelRegistry, Server
from tests.server.conftest import StubPlan, stub_sample

pytestmark = pytest.mark.skipif(
    not hasattr(os, "fork"), reason="pool supervision needs fork")


def _wait_for_pool(server, name, timeout=10.0):
    deadline = time.monotonic() + timeout
    lane = server._lanes.get(name)
    while time.monotonic() < deadline:
        lane = server._lanes.get(name)
        if lane is not None and lane.pool is not None:
            return lane
        time.sleep(0.005)
    raise AssertionError(f"lane {name} never built its pool")


def test_sigkill_under_load_every_request_answered(served_factory):
    """SIGKILL one pool worker mid-load: no hang, every accepted request is
    either answered bit-exactly or failed retryable; the pool respawns and
    keeps serving."""
    d, samples, refs = served_factory("resnet20")
    reg = ModelRegistry()
    reg.register("resnet20", "1", d)
    n = 60
    with Server(reg, max_batch=4, workers=2, default_deadline_s=60.0,
                max_linger_s=0.002) as srv:
        pendings = []
        killed = False
        for i in range(n):
            pendings.append((i, srv.submit("resnet20", samples[i % len(samples)])))
            if not killed and i >= n // 3:
                lane = _wait_for_pool(srv, "resnet20")
                os.kill(lane.pool.procs[0].pid, signal.SIGKILL)
                killed = True
        assert killed
        answered = retryable = 0
        for i, p in pendings:
            r = p.result(timeout=120)
            if r.ok:
                answered += 1
                assert np.array_equal(r.logits, refs[i % len(refs)]), (
                    f"request {i} answered with wrong bits after death")
            else:
                assert isinstance(r, Failed) and r.retryable, (
                    f"request {i} resolved {r!r}: neither correct nor "
                    f"typed-retryable")
                retryable += 1
    stats = srv.stats()["resnet20"]
    assert answered + retryable == n, "silent loss"
    assert stats["worker_deaths"] >= 1
    assert answered >= n // 2, (
        "pool never recovered: almost everything failed")


def test_double_death_fails_retryable_not_hangs():
    """A batch that deterministically kills its worker (twice — once on the
    requeue too) must come back as retryable Failed; innocents sharing the
    pool are answered correctly.  ``max_inflight_batches=1`` makes the
    poison batch the only in-flight work at each death, so exactly it —
    and nothing else — exhausts the retry budget."""
    reg = ModelRegistry()
    reg.register("stub", "1", runner=StubPlan(crash_value=666.0))
    with Server(reg, max_batch=1, workers=2, default_deadline_s=60.0,
                max_linger_s=0.002, max_inflight_batches=1) as srv:
        poison = srv.submit("stub", stub_sample(666.0))
        innocents = [srv.submit("stub", stub_sample(i)) for i in range(4)]
        r = poison.result(timeout=120)
        assert isinstance(r, Failed) and r.retryable
        assert "twice" in r.error
        for i, p in enumerate(innocents):
            ri = p.result(timeout=120)
            assert ri.ok, (i, ri)
            assert np.array_equal(
                ri.logits, np.full(4, 2.0 * i, dtype=np.float32))
    stats = srv.stats()["stub"]
    assert stats["worker_deaths"] >= 2
    assert stats["failed"] == 1 and stats["ok"] == 4


def test_hot_swap_under_load_loses_nothing():
    """Drain-and-cutover while a submitter is firing: zero requests lost,
    every answer consistent with the version that served it, and the flip
    is atomic (gain-2 answers before, gain-3 after, nothing else)."""
    reg = ModelRegistry()
    reg.register("stub", "1", runner=StubPlan(gain=2.0))
    reg.register("stub", "2", runner=StubPlan(gain=3.0))
    results = []
    stop = threading.Event()

    def submitter(srv):
        i = 0
        while not stop.is_set():
            results.append((i, srv.submit("stub", stub_sample(i))))
            i += 1
            time.sleep(0.001)

    with Server(reg, max_batch=4, default_deadline_s=30.0) as srv:
        t = threading.Thread(target=submitter, args=(srv,))
        t.start()
        time.sleep(0.05)
        srv.swap("stub", "2", timeout=30)
        time.sleep(0.05)
        stop.set()
        t.join()
        resolved = [(i, p.result(timeout=30)) for i, p in results]
    assert len(resolved) >= 20, "load thread barely ran"
    v1 = v2 = 0
    flipped = False
    for i, r in resolved:
        assert r.ok, (i, r)
        if r.model == "stub@1":
            assert not flipped, "gain-2 answer after the cutover"
            assert np.array_equal(r.logits, np.full(4, 2.0 * i, np.float32))
            v1 += 1
        else:
            assert r.model == "stub@2"
            flipped = True
            assert np.array_equal(r.logits, np.full(4, 3.0 * i, np.float32))
            v2 += 1
    assert v1 > 0 and v2 > 0, f"swap not exercised under load (v1={v1}, v2={v2})"
    stats = srv.stats()["stub"]
    assert stats["swaps"] == 1 and stats["failed"] == 0 and stats["shed"] == 0


def test_hot_swap_pooled_rebuilds_pool(served_factory):
    """Pooled lane swap: the old plan's pool is torn down after drain and a
    fresh pool serves the new version; in-flight work completes bit-exact."""
    d, samples, refs = served_factory("resnet20")
    reg = ModelRegistry()
    reg.register("resnet20", "1", d)
    reg.register("resnet20", "2", d)    # same bundle: exercises the rebuild
    with Server(reg, max_batch=4, workers=2, default_deadline_s=60.0,
                max_linger_s=0.002) as srv:
        before = [srv.submit("resnet20", samples[i % len(samples)])
                  for i in range(12)]
        lane = _wait_for_pool(srv, "resnet20")
        old_procs = list(lane.pool.procs)
        srv.swap("resnet20", "2", timeout=60)
        after = [srv.submit("resnet20", samples[i % len(samples)])
                 for i in range(12)]
        for i, p in enumerate(before + after):
            r = p.result(timeout=120)
            assert r.ok, (i, r)
            assert np.array_equal(r.logits, refs[i % len(refs)])
    assert srv.registry.active_version("resnet20") == "2"
    assert all(not p.is_alive() for p in old_procs), (
        "old version's pool still running after cutover")
    stats = srv.stats()["resnet20"]
    assert stats["ok"] == 24 and stats["failed"] == 0 and stats["swaps"] == 1


def test_per_model_workers_override_controls_pooling():
    """`per_model={'stub': {'workers': 2}}` pools that lane (with 2 workers)
    even though the global config is inline, and vice versa — the override
    is not silently ignored."""
    from repro.server import ServerConfig

    reg = ModelRegistry()
    reg.register("stub", "1", runner=StubPlan())
    cfg = ServerConfig(max_batch=2, default_deadline_s=30.0,
                       max_linger_s=0.002, workers=0,
                       per_model={"stub": {"workers": 2}})
    with Server(reg, cfg) as srv:
        pendings = [srv.submit("stub", stub_sample(i)) for i in range(6)]
        lane = _wait_for_pool(srv, "stub")
        assert lane.pooled and lane.cfg.workers == 2
        assert len(lane.pool.procs) == 2, (
            "pool sized from the global workers=0, not the per-model override")
        for i, p in enumerate(pendings):
            r = p.result(timeout=60)
            assert r.ok and np.array_equal(
                r.logits, np.full(4, 2.0 * i, dtype=np.float32))

    reg2 = ModelRegistry()
    reg2.register("stub", "1", runner=StubPlan())
    cfg2 = ServerConfig(workers=2, per_model={"stub": {"workers": 0}})
    with Server(reg2, cfg2) as srv2:
        assert srv2.submit("stub", stub_sample(1.0)).result(timeout=10).ok
        lane2 = srv2._lanes["stub"]
        assert not lane2.pooled and lane2.pool is None, (
            "per-model workers=0 should force the inline path")


def test_swap_unknown_version_rejected_without_drain():
    reg = ModelRegistry()
    reg.register("stub", "1", runner=StubPlan())
    with Server(reg) as srv:
        with pytest.raises(KeyError):
            srv.swap("stub", "9")
        assert srv.submit("stub", stub_sample(1.0)).result(timeout=10).ok
