"""Gateway scheduling semantics: batching, deadlines, admission, typing.

These run on stub runners so they test the *scheduler*, not model math —
bit-exactness against real plans lives in ``test_bitexact.py``.
"""
from __future__ import annotations

import threading
import time

import numpy as np
import pytest

from repro import telemetry
from repro.server import (
    Failed,
    ModelRegistry,
    Ok,
    Overloaded,
    Server,
    ServerConfig,
)
from tests.server.conftest import StubPlan, stub_sample


def _stub_server(**overrides):
    reg = ModelRegistry()
    reg.register("stub", "1", runner=StubPlan())
    defaults = dict(max_batch=4, default_deadline_s=2.0)
    defaults.update(overrides)
    return reg, Server(reg, **defaults)


def test_requests_are_packed_into_micro_batches():
    _, srv = _stub_server(max_batch=4, max_linger_s=0.05)
    with srv:
        pendings = [srv.submit("stub", stub_sample(i)) for i in range(12)]
        responses = [p.result(timeout=5) for p in pendings]
    assert all(isinstance(r, Ok) for r in responses)
    for i, r in enumerate(responses):
        assert np.array_equal(r.logits, np.full(4, 2.0 * i, dtype=np.float32))
        assert 1 <= r.batch_size <= 4
        assert r.queue_wait_s <= r.latency_s
    stats = srv.stats()["stub"]
    assert stats["ok"] == 12
    assert stats["batches"] >= 3, "max_batch=4 cannot carry 12 in fewer"
    assert stats["mean_batch_size"] > 1.0, "nothing got packed"


def test_lone_request_flushes_on_linger_not_deadline():
    """Deadline-aware != wait-until-deadline: an unaccompanied request is
    flushed once the linger cap expires, far before its 5 s deadline."""
    _, srv = _stub_server(max_linger_s=0.02)
    with srv:
        t0 = time.perf_counter()
        r = srv.submit("stub", stub_sample(1.0), deadline_s=5.0).result(timeout=5)
        elapsed = time.perf_counter() - t0
    assert r.ok and elapsed < 1.0, f"lone request lingered {elapsed:.3f}s"


def test_tight_deadline_forces_early_flush():
    """A request whose slack is about to run out flushes the batch before
    the linger cap would."""
    _, srv = _stub_server(max_linger_s=10.0, exec_time_init_s=0.001)
    with srv:
        t0 = time.perf_counter()
        r = srv.submit("stub", stub_sample(1.0), deadline_s=0.15).result(timeout=5)
        elapsed = time.perf_counter() - t0
    assert r.ok, r
    assert elapsed < 1.0, (
        f"deadline-aware flush missing: waited {elapsed:.3f}s with a "
        f"0.15s deadline and a 10s linger cap")


def test_overloaded_when_projected_wait_exceeds_deadline():
    reg = ModelRegistry()
    reg.register("slow", "1", runner=StubPlan(delay_s=0.2))
    with Server(reg, max_batch=1, default_deadline_s=2.0,
                exec_time_init_s=0.2) as srv:
        pendings = [srv.submit("slow", stub_sample(i), deadline_s=0.45)
                    for i in range(8)]
        responses = [p.result(timeout=10) for p in pendings]
    shed = [r for r in responses if isinstance(r, Overloaded)]
    served = [r for r in responses if r.ok]
    assert shed, "projected-wait admission never shed under 8x overload"
    assert served, "admission shed everything including feasible work"
    for r in shed:
        assert r.retryable and r.reason in ("deadline", "queue_full")
        assert r.projected_wait_s > 0
    stats = srv.stats()["slow"]
    assert stats["shed"] == len(shed) and stats["ok"] == len(served)


def test_overloaded_when_queue_full():
    reg = ModelRegistry()
    reg.register("slow", "1", runner=StubPlan(delay_s=0.3))
    with Server(reg, max_batch=1, max_queue=2,
                default_deadline_s=60.0) as srv:
        pendings = [srv.submit("slow", stub_sample(i)) for i in range(12)]
        responses = [p.result(timeout=30) for p in pendings]
    full = [r for r in responses if isinstance(r, Overloaded)
            and r.reason == "queue_full"]
    assert full, "bounded queue never rejected despite max_queue=2"
    assert all(r.ok or isinstance(r, Overloaded) for r in responses)


def test_runner_exception_becomes_typed_failed():
    class Exploding:
        def __call__(self, x):
            raise ValueError("boom")

    reg = ModelRegistry()
    reg.register("bad", "1", runner=Exploding())
    with Server(reg, max_batch=2) as srv:
        r = srv.submit("bad", stub_sample(1.0)).result(timeout=5)
    assert isinstance(r, Failed)
    assert "boom" in r.error and not r.retryable, (
        "a deterministic plan error must not be marked retryable")


def test_unknown_model_and_closed_server():
    reg, srv = _stub_server()
    with pytest.raises(KeyError):
        srv.submit("ghost", stub_sample(0.0))
    srv.close()
    with pytest.raises(RuntimeError):
        srv.submit("stub", stub_sample(0.0))


def test_per_model_config_overrides():
    reg = ModelRegistry()
    reg.register("a", "1", runner=StubPlan())
    reg.register("b", "1", runner=StubPlan())
    cfg = ServerConfig(max_batch=8, per_model={"b": {"max_batch": 2}})
    with Server(reg, cfg) as srv:
        for i in range(6):
            srv.submit("a", stub_sample(i))
            srv.submit("b", stub_sample(i))
        time.sleep(0.3)
        pa = srv.submit("a", stub_sample(9.0)).result(timeout=5)
        pb = srv.submit("b", stub_sample(9.0)).result(timeout=5)
    assert pa.ok and pb.ok
    assert max(srv.stats()["b"]["mean_batch_size"], pb.batch_size) <= 2 + 1e-9


def test_stats_report_latency_percentiles():
    _, srv = _stub_server()
    with srv:
        for i in range(10):
            srv.submit("stub", stub_sample(i)).result(timeout=5)
    s = srv.stats()["stub"]
    for block in ("latency_ms", "queue_wait_ms"):
        assert set(s[block]) == {"p50", "p95", "p99"}
        assert s[block]["p50"] <= s[block]["p95"] <= s[block]["p99"]
    assert s["requests"] == 10 and s["ok"] == 10


def test_concurrent_submitters_all_answered():
    _, srv = _stub_server(max_batch=8)
    results = {}

    def client(cid):
        pendings = [(i, srv.submit("stub", stub_sample(cid * 100 + i)))
                    for i in range(20)]
        results[cid] = [(i, p.result(timeout=10)) for i, p in pendings]

    with srv:
        threads = [threading.Thread(target=client, args=(c,)) for c in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
    assert set(results) == {0, 1, 2, 3}
    for cid, rs in results.items():
        for i, r in rs:
            assert r.ok, (cid, i, r)
            assert np.array_equal(
                r.logits, np.full(4, 2.0 * (cid * 100 + i), dtype=np.float32))


def test_shape_mismatch_rejected_without_poisoning_the_lane():
    """A sample whose shape disagrees with the lane's expected input shape
    resolves as a typed non-retryable Failed at submit time — and the lane
    keeps serving well-shaped requests (no scheduler crash, no hang)."""
    _, srv = _stub_server()
    with srv:
        good = srv.submit("stub", stub_sample(1.0))           # learns (2, 4)
        bad = srv.submit("stub", stub_sample(2.0, shape=(3, 5)))
        r_bad = bad.result(timeout=5)
        assert isinstance(r_bad, Failed) and not r_bad.retryable
        assert "shape" in r_bad.error
        assert good.result(timeout=5).ok
        after = srv.submit("stub", stub_sample(3.0)).result(timeout=5)
        assert after.ok, "lane stopped serving after a malformed request"
    stats = srv.stats()["stub"]
    assert stats["failed"] == 1 and stats["ok"] == 2


def test_declared_input_shape_rejects_even_the_first_request():
    reg = ModelRegistry()
    reg.register("stub", "1", runner=StubPlan(), input_shape=(2, 4))
    with Server(reg, max_batch=4, default_deadline_s=2.0) as srv:
        bad = srv.submit("stub", stub_sample(1.0, shape=(8,))).result(timeout=5)
        assert isinstance(bad, Failed) and not bad.retryable
        assert srv.submit("stub", stub_sample(1.0)).result(timeout=5).ok


def test_late_admit_on_closed_lane_resolves_not_hangs():
    """A request that races past Server.submit's closing check must still
    resolve: a closed lane's admit answers with a retryable Failed instead
    of enqueueing onto a scheduler thread that has already exited."""
    from repro.server.types import PendingRequest

    _, srv = _stub_server()
    with srv:
        assert srv.submit("stub", stub_sample(1.0)).result(timeout=5).ok
        lane = srv._lanes["stub"]
    lane.thread.join(timeout=5)
    assert not lane.thread.is_alive()
    req = PendingRequest(999, "stub", stub_sample(2.0), time.perf_counter(), 1.0)
    rejection = lane.admit(req)
    assert isinstance(rejection, Failed) and rejection.retryable


def test_swap_on_closed_server_fails_fast():
    reg = ModelRegistry()
    reg.register("stub", "1", runner=StubPlan())
    reg.register("stub", "2", runner=StubPlan(gain=3.0))
    srv = Server(reg)
    assert srv.submit("stub", stub_sample(1.0)).result(timeout=5).ok
    srv.close()
    t0 = time.perf_counter()
    with pytest.raises(RuntimeError):
        srv.swap("stub", "2", timeout=30)
    assert time.perf_counter() - t0 < 5.0, (
        "swap on a closed server burned the drain timeout instead of "
        "failing fast")


def test_lane_crash_resolves_everything_and_marks_lane_dead(monkeypatch):
    """If the scheduler loop itself dies, every queued request resolves as
    retryable Failed (no result() hang) and later submits are rejected with
    a typed result instead of being enqueued onto the dead lane."""
    from repro.server.server import _Lane

    def explode(self):
        raise RuntimeError("synthetic scheduler crash")

    monkeypatch.setattr(_Lane, "_form_batch_locked", explode)
    _, srv = _stub_server()
    pendings = [srv.submit("stub", stub_sample(i)) for i in range(5)]
    responses = [p.result(timeout=10) for p in pendings]
    assert all(isinstance(r, Failed) and r.retryable for r in responses)
    assert srv._lanes["stub"].dead
    late = srv.submit("stub", stub_sample(9.0)).result(timeout=5)
    assert isinstance(late, Failed) and late.retryable
    srv.close(timeout=5)


def test_telemetry_metrics_and_linked_spans():
    """Queue-wait/batch/latency metrics fill and every request span hangs
    off its batch span when telemetry is on."""
    prev = telemetry.set_enabled(True)
    tracer = telemetry.get_tracer()
    n_roots = len(tracer.roots)
    try:
        _, srv = _stub_server()
        with srv:
            for i in range(5):
                assert srv.submit("stub", stub_sample(i)).result(timeout=5).ok
        reg = telemetry.get_registry()
        req_samples = reg.get("server_requests_total").samples()
        ok_row = [s for s in req_samples
                  if s["labels"] == {"model": "stub", "status": "ok"}]
        assert ok_row and ok_row[0]["value"] >= 5
        assert reg.get("server_request_latency_seconds") is not None
        batch_spans = [s for s in tracer.roots[n_roots:]
                       if s.name == "server.batch"]
        assert batch_spans, "no server.batch spans recorded"
        children = [c for b in batch_spans for c in b.children]
        assert len(children) >= 5
        assert all(c.name == "server.request" for c in children)
        assert all("request_id" in c.attrs for c in children)
        for b in batch_spans:
            for c in b.children:
                assert c.attrs["batch"] == b.attrs["batch"], (
                    "request span not linked to its batch span")
    finally:
        telemetry.set_enabled(prev)
