"""Serving gates on plan verification: a compiled program that fails the
static verifier can never be registered, activated, or swapped in — the
previous known-good version keeps serving in every case."""
import copy
from types import SimpleNamespace

import numpy as np
import pytest

from repro import telemetry
from repro.lint.plan import PlanVerificationError
from repro.server import ModelRegistry, Server


class PlanRunner:
    """Minimal registry runner carrying a real compiled plan."""

    def __init__(self, plan):
        self.plan = plan
        self.out_features = plan.out_features
        self.model_name = plan.model_name

    def __call__(self, x):
        return self.plan(np.asarray(x, dtype=np.float32))


def _corrupt(plan):
    """Self-read on the final op: a use-before-def the verifier must flag."""
    plan.ops[-1].src = (plan.ops[-1].dst,)
    plan._bindings = {}
    plan._verification = None
    return plan


@pytest.fixture()
def good_plan(served_factory):
    d, _, _ = served_factory("vgg8")
    return copy.deepcopy(d.plan)


@pytest.fixture()
def bad_plan(served_factory):
    d, _, _ = served_factory("vgg8")
    return _corrupt(copy.deepcopy(d.plan))


class TestRegistryGate:
    def test_register_refuses_bad_plan(self, good_plan, bad_plan):
        registry = ModelRegistry()
        registry.register("m", "1", runner=PlanRunner(good_plan))
        with pytest.raises(PlanVerificationError) as ei:
            registry.register("m", "2", runner=PlanRunner(bad_plan),
                              activate=True)
        assert "plan.dead-read" in str(ei.value)
        assert registry.active_version("m") == "1"
        with pytest.raises(KeyError):
            registry.get("m@2")     # rejected entry never entered

    def test_set_active_reverifies(self, good_plan, served_factory):
        d, _, _ = served_factory("vgg8")
        registry = ModelRegistry()
        registry.register("m", "1", runner=PlanRunner(good_plan))
        v2 = copy.deepcopy(d.plan)
        registry.register("m", "2", runner=PlanRunner(v2))
        _corrupt(v2)                # rots *after* registration
        with pytest.raises(PlanVerificationError):
            registry.set_active("m", "2")
        assert registry.active_version("m") == "1"

    def test_rejection_emits_typed_telemetry(self, good_plan, bad_plan):
        registry = ModelRegistry()
        registry.register("m", "1", runner=PlanRunner(good_plan))
        with telemetry.TelemetrySession(out_dir=None) as session:
            with pytest.raises(PlanVerificationError):
                registry.register("m", "2", runner=PlanRunner(bad_plan))
        events = [e for e in session.events.events
                  if e["kind"] == "registry_rejected"]
        assert events and events[0]["reason"] == "plan"
        assert events[0]["errors"] >= 1

    def test_spec_opt_out_skips_gate(self, bad_plan):
        fake = SimpleNamespace(
            plan=bad_plan, qnn=None, manifest=None,
            spec=SimpleNamespace(export_dir=None, verify_artifacts=True,
                                 verify_plan=False))
        registry = ModelRegistry()
        entry = registry.register("m", "1", deployed=fake)
        assert entry.plan is bad_plan   # admitted: the spec opted out

    def test_good_plan_reuses_deploy_proof(self, good_plan):
        # deploy() seeded _verification; the gate must reuse it, not re-prove
        report = good_plan.verify()
        registry = ModelRegistry()
        registry.register("m", "1", runner=PlanRunner(good_plan))
        assert good_plan.verify() is report


class TestSwapGate:
    def test_swap_refuses_bad_plan(self, good_plan, served_factory):
        d, _, _ = served_factory("vgg8")
        registry = ModelRegistry()
        registry.register("m", "1", runner=PlanRunner(good_plan))
        v2 = copy.deepcopy(d.plan)
        registry.register("m", "2", runner=PlanRunner(v2))
        _corrupt(v2)
        with Server(registry, max_batch=4, workers=0,
                    default_deadline_s=2.0) as srv:
            with telemetry.TelemetrySession(out_dir=None) as session:
                with pytest.raises(PlanVerificationError):
                    srv.swap("m", "2")
            assert registry.active_version("m") == "1"
        events = [e for e in session.events.events
                  if e["kind"] == "server_swap_rejected"]
        assert events and events[0]["reason"] == "plan"

    def test_swap_to_good_version_still_works(self, good_plan,
                                              served_factory):
        d, _, _ = served_factory("vgg8")
        registry = ModelRegistry()
        registry.register("m", "1", runner=PlanRunner(good_plan))
        registry.register("m", "2",
                          runner=PlanRunner(copy.deepcopy(d.plan)))
        with Server(registry, max_batch=4, workers=0,
                    default_deadline_s=2.0) as srv:
            srv.swap("m", "2")
            assert registry.active_version("m") == "2"
