"""ModelRegistry: keys, versions, activation, construction via deploy()."""
from __future__ import annotations

import numpy as np
import pytest

from repro.server import ModelRegistry, split_key
from tests.server.conftest import StubPlan


def test_split_key():
    assert split_key("resnet20") == ("resnet20", None)
    assert split_key("resnet20@2") == ("resnet20", "2")
    with pytest.raises(ValueError):
        split_key("resnet20@")
    with pytest.raises(ValueError):
        split_key("@2")


def test_register_and_lookup_by_name_and_version():
    reg = ModelRegistry()
    e1 = reg.register("m", "1", runner=StubPlan(gain=1))
    e2 = reg.register("m", "2", runner=StubPlan(gain=2))
    assert e1.key == "m@1" and e2.key == "m@2"
    assert reg.get("m") is e1, "first version auto-activates"
    assert reg.get("m@2") is e2
    assert reg.versions("m") == ["1", "2"]
    assert reg.keys() == ["m@1", "m@2"]
    assert "m@2" in reg and "m@3" not in reg and len(reg) == 2


def test_activation_flip_is_explicit_and_atomic():
    reg = ModelRegistry()
    reg.register("m", "1", runner=StubPlan(gain=1))
    reg.register("m", "2", runner=StubPlan(gain=2))
    assert reg.active_version("m") == "1"
    reg.set_active("m", "2")
    assert reg.active_version("m") == "2" and reg.get("m").version == "2"
    with pytest.raises(KeyError):
        reg.set_active("m", "9")
    reg.register("m", "3", runner=StubPlan(gain=3), activate=True)
    assert reg.active_version("m") == "3"


def test_register_rejects_duplicates_and_bad_names():
    reg = ModelRegistry()
    reg.register("m", "1", runner=StubPlan())
    with pytest.raises(ValueError):
        reg.register("m", "1", runner=StubPlan())
    with pytest.raises(ValueError):
        reg.register("m@1", "2", runner=StubPlan())
    with pytest.raises(ValueError):
        reg.register("n", "1")  # neither deployed nor runner
    with pytest.raises(KeyError):
        reg.get("ghost")


def test_duplicate_version_is_typed_and_replace_opts_in():
    from repro.server import DuplicateVersionError

    reg = ModelRegistry()
    first = StubPlan(gain=1.0)
    reg.register("m", "1", runner=first)
    # same callable: idempotent, returns the existing entry
    assert reg.register("m", "1", runner=first).runner is first
    # different callable: typed refusal, registry unchanged
    with pytest.raises(DuplicateVersionError, match="replace=True"):
        reg.register("m", "1", runner=StubPlan(gain=2.0))
    assert reg.get("m@1").runner is first
    # explicit replace overwrites
    second = StubPlan(gain=2.0)
    entry = reg.register("m", "1", runner=second, replace=True)
    assert entry.runner is second and reg.get("m@1").runner is second


def test_register_and_activate_verify_artifacts(tmp_path):
    import numpy as np

    from repro.export.errors import ArtifactError
    from repro.export.writer import export_state_dict

    good = str(tmp_path / "good")
    export_state_dict({"w": np.arange(-4, 4).astype(np.float32)}, good,
                      formats=("dec", "qint"))
    bad = str(tmp_path / "bad")
    export_state_dict({"w": np.arange(-4, 4).astype(np.float32)}, bad,
                      formats=("dec", "qint"))
    with open(f"{bad}/w.dec", "ab") as f:
        f.write(b"corruption")

    reg = ModelRegistry()
    reg.register("m", "1", runner=StubPlan(), artifacts=good)
    with pytest.raises(ArtifactError):
        reg.register("m", "2", runner=StubPlan(), artifacts=bad,
                     activate=True)
    assert reg.active_version("m") == "1" and reg.versions("m") == ["1"]


def test_version_that_rots_after_registration_cannot_activate(tmp_path):
    import numpy as np

    from repro.export.errors import ArtifactError
    from repro.export.writer import export_state_dict

    art = str(tmp_path / "art")
    export_state_dict({"w": np.arange(-4, 4).astype(np.float32)}, art,
                      formats=("dec",))
    reg = ModelRegistry()
    reg.register("m", "1", runner=StubPlan())
    reg.register("m", "2", runner=StubPlan(), artifacts=art)
    with open(f"{art}/w.dec", "ab") as f:
        f.write(b"bitrot")
    with pytest.raises(ArtifactError):
        reg.set_active("m", "2")
    assert reg.active_version("m") == "1"


def test_registry_verify_reports(tmp_path):
    import numpy as np

    from repro.export.writer import export_state_dict

    art = str(tmp_path / "art")
    export_state_dict({"w": np.arange(4).astype(np.float32)}, art,
                      formats=("dec",))
    reg = ModelRegistry()
    reg.register("m", "1", runner=StubPlan(), artifacts=art)
    reg.register("m", "2", runner=StubPlan())
    assert reg.verify("m@1").ok
    assert reg.verify("m@2") is None, "no artifacts -> nothing to verify"


def test_bare_name_lookup_without_active_version_is_descriptive():
    reg = ModelRegistry()
    reg.register("m", "1", runner=StubPlan(), activate=False)
    with pytest.raises(KeyError, match="no active version"):
        reg.get("m")
    assert reg.get("m@1").key == "m@1", "exact-version lookup still works"
    reg.set_active("m", "1")
    assert reg.get("m").key == "m@1"


def test_register_unpacks_deployed_bundle(served_factory):
    d, samples, refs = served_factory("resnet20")
    reg = ModelRegistry()
    entry = reg.register("resnet20", "1", d)
    assert entry.plan is d.plan and entry.qnn is d.qnn
    assert entry.deployed is d
    out = entry(np.stack(samples[:2]))
    assert np.array_equal(out[0], refs[0]) and np.array_equal(out[1], refs[1])


def test_build_goes_through_deploy_pipeline():
    from repro.core import DeploySpec
    from repro.core.qconfig import QConfig
    from repro.core.qmodels import quantize_model
    from repro.core.t2c import calibrate_model
    from repro.models import build_model

    rng = np.random.default_rng(0)
    qm = quantize_model(build_model("vgg8", num_classes=10, width_mult=0.5),
                        QConfig(8, 8))
    calibrate_model(qm, [rng.standard_normal((4, 3, 32, 32)).astype(np.float32)])
    reg = ModelRegistry()
    entry = reg.build("vgg8", qm, DeploySpec(runtime="batch"))
    assert entry.key == "vgg8@1" and entry.plan is not None
    assert entry.plan.layout == "batch"
    x = rng.standard_normal((2, 3, 32, 32)).astype(np.float32)
    from repro.tensor import no_grad
    from repro.tensor.tensor import Tensor

    with no_grad():
        ref = entry.qnn(Tensor(x)).data
    assert np.array_equal(entry(x), ref)


def test_deploy_registry_helper():
    from repro.core import DeploySpec, deploy_registry
    from repro.core.qconfig import QConfig
    from repro.core.qmodels import quantize_model
    from repro.core.t2c import calibrate_model
    from repro.models import build_model

    rng = np.random.default_rng(1)
    models = {}
    for name in ("resnet20",):
        qm = quantize_model(build_model(name, num_classes=10, width=8),
                            QConfig(8, 8))
        calibrate_model(qm, [rng.standard_normal((4, 3, 32, 32))
                             .astype(np.float32)])
        models[name] = qm
    reg = deploy_registry(models, DeploySpec(runtime="auto"), version="7")
    assert reg.keys() == ["resnet20@7"]
    assert reg.get("resnet20").plan is not None
