"""Gateway bit-exactness: whatever batches the scheduler forms, each answer
is bitwise identical to single-sample execution on the interpreted tree.

This is the online analogue of ``tests/runtime/test_bitexact.py``: the
integer datapath (i32 accumulation exact in f32 under the 2^24 bound) makes
row results independent of batch composition, so the gateway may pack
requests however load dictates without changing a single bit.
"""
from __future__ import annotations

import threading

import numpy as np
import pytest

from repro.models import MODELS
from repro.server import ModelRegistry, Server


def _drive(server, key, samples, refs, n_requests, n_threads=3):
    """Fire ``n_requests`` from ``n_threads`` submitters, check every bit."""
    per = (n_requests + n_threads - 1) // n_threads
    failures = []

    def client(tid):
        pendings = []
        for j in range(per):
            i = (tid * per + j) % len(samples)
            pendings.append((i, server.submit(key, samples[i])))
        for i, p in pendings:
            r = p.result(timeout=60)
            if not r.ok:
                failures.append((i, r))
            elif not np.array_equal(r.logits, refs[i]):
                failures.append((i, "bitwise mismatch"))

    threads = [threading.Thread(target=client, args=(t,))
               for t in range(n_threads)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert not failures, failures[:5]


@pytest.mark.parametrize("model_name", sorted(MODELS))
def test_gateway_matches_single_sample_tree(served_factory, model_name):
    """Every registry model, inline lane: concurrent submitters x mixed
    batch sizes, each response bitwise equal to its single-sample tree run."""
    d, samples, refs = served_factory(model_name)
    reg = ModelRegistry()
    reg.register(model_name, "1", d)
    with Server(reg, max_batch=4, default_deadline_s=30.0,
                max_linger_s=0.005) as srv:
        _drive(srv, model_name, samples, refs, n_requests=18)
    stats = srv.stats()[model_name]
    assert stats["ok"] == stats["requests"] and stats["shed"] == 0


def test_gateway_pooled_matches_single_sample_tree(served_factory):
    """Same contract across the fork boundary: a shared-memory PlanPool lane
    returns the identical bits the in-process tree produces."""
    d, samples, refs = served_factory("resnet20")
    reg = ModelRegistry()
    reg.register("resnet20", "1", d)
    with Server(reg, max_batch=4, workers=2, default_deadline_s=30.0,
                max_linger_s=0.005) as srv:
        _drive(srv, "resnet20", samples, refs, n_requests=24)
    stats = srv.stats()["resnet20"]
    assert stats["ok"] == stats["requests"] and stats["failed"] == 0


def test_mixed_models_one_server(served_factory):
    """Two models behind one gateway keep their lanes (and bits) separate."""
    da, sa, ra = served_factory("resnet20")
    db, sb, rb = served_factory("vgg8")
    reg = ModelRegistry()
    reg.register("resnet20", "1", da)
    reg.register("vgg8", "1", db)
    with Server(reg, max_batch=4, default_deadline_s=30.0) as srv:
        pa = [srv.submit("resnet20", sa[i % len(sa)]) for i in range(8)]
        pb = [srv.submit("vgg8", sb[i % len(sb)]) for i in range(8)]
        for i, p in enumerate(pa):
            r = p.result(timeout=60)
            assert r.ok and np.array_equal(r.logits, ra[i % len(ra)])
            assert r.model == "resnet20@1"
        for i, p in enumerate(pb):
            r = p.result(timeout=60)
            assert r.ok and np.array_equal(r.logits, rb[i % len(rb)])
            assert r.model == "vgg8@1"
