"""Open-loop Poisson load generator: argument validation + report shape."""
from __future__ import annotations

import numpy as np
import pytest

from repro.server import ModelRegistry, Server, run_poisson_load
from tests.server.conftest import StubPlan, stub_sample


def _stub_server():
    reg = ModelRegistry()
    reg.register("stub", "1", runner=StubPlan())
    return Server(reg, max_batch=4, default_deadline_s=5.0)


def test_rejects_degenerate_arguments():
    srv = _stub_server()
    samples = [stub_sample(1.0)]
    with srv:
        with pytest.raises(ValueError, match="n_requests"):
            run_poisson_load(srv, "stub", samples, rate_hz=100.0, n_requests=0)
        with pytest.raises(ValueError, match="rate_hz"):
            run_poisson_load(srv, "stub", samples, rate_hz=0.0, n_requests=5)
        with pytest.raises(ValueError, match="samples"):
            run_poisson_load(srv, "stub", [], rate_hz=100.0, n_requests=5)


def test_report_counts_and_bit_exactness():
    srv = _stub_server()
    samples = [stub_sample(i) for i in range(4)]
    refs = [np.full(4, 2.0 * i, dtype=np.float32) for i in range(4)]
    with srv:
        report = run_poisson_load(srv, "stub", samples, rate_hz=500.0,
                                  n_requests=20, refs=refs)
    assert report.requests == 20
    assert report.ok + report.shed + report.failed == 20
    assert report.bit_exact is True and report.mismatches == 0
    j = report.to_json()
    assert j["requests"] == 20 and "latency_ms" in j
