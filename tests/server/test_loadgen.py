"""Open-loop Poisson load generator: argument validation, reproducible
seeding, multi-tenant mixes, report shape."""
from __future__ import annotations

import numpy as np
import pytest

from repro.server import (LoadGenError, ModelRegistry, Server, Tenant,
                          run_poisson_load)
from tests.server.conftest import StubPlan, stub_sample


def _stub_server():
    reg = ModelRegistry()
    reg.register("stub", "1", runner=StubPlan())
    return Server(reg, max_batch=4, default_deadline_s=5.0)


def test_rejects_degenerate_arguments():
    srv = _stub_server()
    samples = [stub_sample(1.0)]
    with srv:
        with pytest.raises(LoadGenError, match="n_requests"):
            run_poisson_load(srv, "stub", samples, rate_hz=100.0, n_requests=0)
        with pytest.raises(LoadGenError, match="rate_hz"):
            run_poisson_load(srv, "stub", samples, rate_hz=0.0, n_requests=5)
        with pytest.raises(LoadGenError, match="rate_hz"):
            run_poisson_load(srv, "stub", samples, rate_hz=-3.0, n_requests=5)
        with pytest.raises(LoadGenError, match="samples"):
            run_poisson_load(srv, "stub", [], rate_hz=100.0, n_requests=5)
        with pytest.raises(LoadGenError, match="not both"):
            run_poisson_load(srv, "stub", samples, rate_hz=100.0,
                             n_requests=5, seed=1,
                             rng=np.random.default_rng(1))
        with pytest.raises(LoadGenError, match="model key"):
            run_poisson_load(srv, None, samples, rate_hz=100.0, n_requests=5)
    assert issubclass(LoadGenError, ValueError)


def test_rejects_degenerate_tenants():
    srv = _stub_server()
    samples = [stub_sample(1.0)]
    with srv:
        with pytest.raises(LoadGenError, match="weight"):
            run_poisson_load(srv, "stub", samples, rate_hz=100.0,
                             n_requests=5,
                             tenants=[Tenant("t", weight=0.0)])
        with pytest.raises(LoadGenError, match="no key"):
            run_poisson_load(srv, None, samples, rate_hz=100.0,
                             n_requests=5, tenants=[Tenant("t")])


def test_seeded_runs_replay_the_same_trace():
    samples = [stub_sample(i) for i in range(3)]
    reports = []
    for _ in range(2):
        srv = _stub_server()
        with srv:
            reports.append(run_poisson_load(
                srv, "stub", samples, rate_hz=400.0, n_requests=30,
                seed=11, tenants=[Tenant("a", weight=2.0),
                                  Tenant("b", weight=1.0)]))
    a, b = reports
    assert a.seed == b.seed == 11
    # the tenant draws are part of the trace: same split both runs
    assert {t: v["requests"] for t, v in a.per_tenant.items()} \
        == {t: v["requests"] for t, v in b.per_tenant.items()}
    assert a.requests == b.requests == 30


def test_tenant_mix_report_breakdown():
    srv = _stub_server()
    samples = [stub_sample(1.0)]
    with srv:
        report = run_poisson_load(
            srv, "stub", samples, rate_hz=500.0, n_requests=40, seed=2,
            tenants=[Tenant("heavy", weight=3.0),
                     Tenant("light", weight=1.0, deadline_s=4.0)])
    per = report.per_tenant
    assert set(per) == {"heavy", "light"}
    assert per["heavy"]["requests"] + per["light"]["requests"] == 40
    assert per["heavy"]["requests"] > per["light"]["requests"]
    assert "latency_ms" in per["heavy"]
    assert report.to_json()["per_tenant"]["light"]["ok"] \
        == per["light"]["ok"]


def test_report_counts_and_bit_exactness():
    srv = _stub_server()
    samples = [stub_sample(i) for i in range(4)]
    refs = [np.full(4, 2.0 * i, dtype=np.float32) for i in range(4)]
    with srv:
        report = run_poisson_load(srv, "stub", samples, rate_hz=500.0,
                                  n_requests=20, refs=refs)
    assert report.requests == 20
    assert report.ok + report.shed + report.failed == 20
    assert report.bit_exact is True and report.mismatches == 0
    j = report.to_json()
    assert j["requests"] == 20 and "latency_ms" in j
