"""Shared fixtures for the online-gateway suite.

Deployed bundles are expensive (quantize + calibrate + fuse + re-pack +
plan-compile), so one per model is cached for the whole session.  The
single-sample references are computed on the *interpreted* module tree —
the gateway's bit-exactness contract is against single-sample execution,
whatever batch mix the scheduler forms.

Stub runners (fast, deterministic, crash-on-demand) keep the scheduler /
admission / supervision tests independent of model build cost.
"""
from __future__ import annotations

import os
from typing import Dict, Tuple

import numpy as np
import pytest

from repro.core import DeploySpec, deploy
from repro.core.qconfig import QConfig
from repro.core.qmodels import quantize_model
from repro.core.t2c import calibrate_model
from repro.models import build_model
from repro.tensor import no_grad
from repro.tensor.tensor import Tensor

#: CPU-sized builds, mirroring repro.cli.MODEL_KWARGS
MODEL_KWARGS = {
    "resnet20": dict(width=8), "resnet18": dict(width=8),
    "resnet50": dict(width=8), "mobilenet-v1": dict(width_mult=0.5),
    "vgg8": dict(width_mult=0.5), "vit-7": dict(embed_dim=64),
}

_CACHE: Dict[str, Tuple] = {}


def pytest_collection_modifyitems(items):
    """Everything under tests/server carries the `server` marker so the
    suite can be selected (`-m server`) or skipped in isolation."""
    for item in items:
        item.add_marker(pytest.mark.server)


def _build(model_name: str):
    import zlib

    seed = zlib.crc32(model_name.encode())
    rng = np.random.default_rng(seed)
    kwargs = MODEL_KWARGS.get(model_name, {})
    qm = quantize_model(build_model(model_name, num_classes=10, **kwargs),
                        QConfig(8, 8))
    calibrate_model(qm, [rng.standard_normal((4, 3, 32, 32)).astype(np.float32)
                         for _ in range(2)])
    d = deploy(qm, DeploySpec(runtime="auto"))
    samples = [rng.standard_normal((3, 32, 32)).astype(np.float32)
               for _ in range(6)]
    with no_grad():
        refs = [d.qnn(Tensor(s[None])).data[0] for s in samples]
    return d, samples, refs


@pytest.fixture(scope="session")
def served_factory():
    """`get(model) -> (Deployed, samples, single_sample_tree_logits)`."""
    def get(model_name: str):
        if model_name not in _CACHE:
            _CACHE[model_name] = _build(model_name)
        return _CACHE[model_name]
    return get


class StubPlan:
    """A fast fake plan: ``logits[i] = x[i].flat[:out_features] * gain``.

    Carries ``out_features``/``model_name``/``plan`` so it is servable both
    inline (as a registry runner) and on a forked :class:`PlanPool`.  When
    ``crash_value`` is set, any batch containing a sample whose first element
    equals it hard-kills the executing process (``os._exit``) — a
    deterministic stand-in for a dying worker.
    """

    out_features = 4
    model_name = "stub"

    def __init__(self, gain: float = 2.0, crash_value: float = None,
                 delay_s: float = 0.0):
        self.gain = np.float32(gain)
        self.crash_value = crash_value
        self.delay_s = delay_s
        self.plan = self      # lets ModelEntry.plan resolve for pool mode

    def __call__(self, x):
        import time

        x = np.asarray(x, dtype=np.float32)
        flat = x.reshape(x.shape[0], -1)
        if self.crash_value is not None and np.any(
                flat[:, 0] == np.float32(self.crash_value)):
            os._exit(17)
        if self.delay_s:
            time.sleep(self.delay_s)
        return flat[:, :self.out_features] * self.gain


@pytest.fixture()
def stub_plan():
    return StubPlan


def stub_sample(value: float, shape=(2, 4)) -> np.ndarray:
    return np.full(shape, value, dtype=np.float32)
