"""Memory scrubbing: CRC constant baselines and arena guard sweeps."""
from __future__ import annotations

import copy
import threading

import numpy as np
import pytest

from repro.integrity import (MemoryScrubber, SDCDetected, scrub_plan,
                             snapshot_constants)


class TestScrubPlan:
    def test_baseline_captured_at_compile(self, sdc_deployed):
        d, _ = sdc_deployed
        assert d.plan._scrub_baseline, (
            "Plan.compile must capture the CRC32 constant baseline")
        # the baseline covers every conv weight
        fields = {(e["op_index"], e["field"])
                  for e in d.plan._scrub_baseline}
        for i, op in enumerate(d.plan.ops):
            if isinstance(getattr(op, "weight", None), np.ndarray):
                assert (i, "weight") in fields

    def test_clean_plan_scrubs_clean(self, sdc_deployed):
        d, x = sdc_deployed
        plan = copy.deepcopy(d.plan)
        plan(x)  # bind, so guard borders are swept too
        report = plan.scrub()
        assert report.ok and report.raise_if_failed() is report
        assert report.entries == len(plan._scrub_baseline)
        assert report.bytes_scanned > 0
        assert report.to_json()["ok"] is True

    def test_weight_flip_is_a_crc_mismatch(self, sdc_deployed):
        d, _ = sdc_deployed
        plan = copy.deepcopy(d.plan)
        op = next(o for o in plan.ops
                  if isinstance(getattr(o, "weight", None), np.ndarray))
        op.weight.flat[0] += 1.0
        report = scrub_plan(plan)
        assert not report.ok
        assert any(m["field"] == "weight" and m["reason"] == "crc"
                   for m in report.mismatches)
        with pytest.raises(SDCDetected) as err:
            report.raise_if_failed()
        assert err.value.source == "scrub"

    def test_guard_word_fault_detected(self, sdc_deployed):
        d, x = sdc_deployed
        plan = copy.deepcopy(d.plan)
        plan(x)
        binding = next(iter(plan._bindings.values()))
        arena = binding.arena
        reg = next(r for r in arena._cm_bufs if arena.pads.get(r, 0) > 0)
        arena._cm_bufs[reg][0, 0, 0, 0] = 9.0
        report = scrub_plan(plan)
        assert not report.ok
        assert any(f["register"] == reg for f in report.guard_faults)

    def test_snapshot_covers_mulquant_params(self, sdc_deployed):
        d, _ = sdc_deployed
        baseline = snapshot_constants(d.plan)
        assert any(e["field"].endswith(".m") for e in baseline)
        assert any(e["field"].endswith(".b") for e in baseline)


class TestMemoryScrubber:
    def test_scan_once_reports_and_counts(self, sdc_deployed):
        d, _ = sdc_deployed
        plan = copy.deepcopy(d.plan)
        faults = []
        scrubber = MemoryScrubber(interval_s=60.0, on_fault=lambda n, r:
                                  faults.append((n, r)))
        scrubber.add("m", plan)
        reports = scrubber.scan_once()
        assert len(reports) == 1 and reports[0].ok
        assert scrubber.scans == 1 and scrubber.faults == 0 and not faults
        op = next(o for o in plan.ops
                  if isinstance(getattr(o, "weight", None), np.ndarray))
        op.weight.flat[0] += 1.0
        reports = scrubber.scan_once()
        assert not reports[0].ok
        assert scrubber.faults == 1
        assert faults and faults[0][0] == "m"

    def test_background_thread_stops_cleanly(self, sdc_deployed):
        d, _ = sdc_deployed
        scrubber = MemoryScrubber(interval_s=0.01)
        scrubber.add("m", d.plan)
        scrubber.start()
        deadline = threading.Event()
        deadline.wait(0.15)
        scrubber.stop(timeout=5.0)
        assert scrubber._thread is None
        assert scrubber.scans >= 1

    def test_remove_drops_target(self, sdc_deployed):
        d, _ = sdc_deployed
        scrubber = MemoryScrubber()
        scrubber.add("m", d.plan)
        scrubber.remove("m")
        assert scrubber.scan_once() == []
