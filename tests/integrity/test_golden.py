"""Golden-vector self-tests: deterministic record/replay and the deploy
pipeline + manifest embedding."""
from __future__ import annotations

import copy

import numpy as np
import pytest

from repro.integrity import GoldenSet, SDCDetected


class TestGoldenSet:
    def test_recorded_at_deploy_and_replays_clean(self, sdc_deployed):
        d, _ = sdc_deployed
        golden = d.golden
        assert golden is not None and golden.k == d.spec.golden_vectors
        assert golden.input_shape == (3, 32, 32)
        assert golden.verify(d.plan) == []
        golden.check(d.plan)  # must not raise

    def test_inputs_are_a_pure_function_of_seed(self, sdc_deployed):
        d, _ = sdc_deployed
        a, b = d.golden.inputs(), d.golden.inputs()
        assert np.array_equal(a, b)
        assert a.shape == (d.golden.k, 3, 32, 32)

    def test_json_roundtrip_is_exact(self, sdc_deployed):
        d, _ = sdc_deployed
        clone = GoldenSet.from_json(d.golden.to_json())
        assert clone.seed == d.golden.seed
        assert clone.input_shape == d.golden.input_shape
        assert np.array_equal(clone.outputs, d.golden.outputs)
        assert clone.verify(d.plan) == []

    def test_divergence_raises_typed_sdc(self, sdc_deployed):
        d, _ = sdc_deployed
        plan = copy.deepcopy(d.plan)
        op = next(o for o in plan.ops
                  if isinstance(getattr(o, "weight", None), np.ndarray))
        op.weight.flat[7] += 8.0
        mismatches = d.golden.verify(plan)
        assert mismatches, "a weight flip must diverge some golden vector"
        with pytest.raises(SDCDetected) as err:
            d.golden.check(plan)
        assert err.value.source == "golden"

    def test_record_against_plain_runner(self):
        runner = lambda b: np.asarray(b, dtype=np.float32).reshape(
            len(b), -1)[:, :3] * 2.0
        g = GoldenSet.record(runner, (2, 4), k=3, seed=11)
        assert g.k == 3 and g.verify(runner) == []
        # a different runner diverges
        assert g.verify(lambda b: runner(b) + 1.0)

    def test_deepcopy_of_executed_plan_stays_bit_exact(self, sdc_deployed):
        """Regression: deepcopying a plan that has already executed must
        reset its cached bindings — the kernel closures capture their arena
        by reference, so a naive copy would serve the original plan's stale
        registers (exactly what fleet replica materialization does after
        deploy-time golden recording)."""
        d, x = sdc_deployed
        assert d.plan._bindings, "golden recording should have bound (1,...)"
        clone = copy.deepcopy(d.plan)
        assert clone._bindings == {}
        assert d.golden.verify(clone) == []
        assert np.array_equal(np.asarray(clone(x)), np.asarray(d.plan(x)))
