"""Shared fixtures for the runtime silent-data-corruption defense suite.

Everything here carries the ``sdc`` marker so the suite can be selected
(``-m sdc``) or excluded in isolation.  One compiled, golden-carrying
deploy bundle is built per session; tests that corrupt state always work
on a deep copy (safe since :class:`~repro.runtime.executor.Plan` resets
its execution state under ``deepcopy``).
"""
from __future__ import annotations

import numpy as np
import pytest

from repro.core import DeploySpec, deploy
from repro.core.qconfig import QConfig
from repro.core.qmodels import quantize_model
from repro.core.t2c import calibrate_model
from repro.models import build_model


def pytest_collection_modifyitems(items):
    for item in items:
        item.add_marker(pytest.mark.sdc)


@pytest.fixture(scope="session")
def sdc_deployed():
    """``(Deployed, batch)``: a compiled resnet20 bundle with golden
    vectors recorded, plus a deterministic probe batch."""
    rng = np.random.default_rng(20240)
    qm = quantize_model(build_model("resnet20", num_classes=10, width=8),
                        QConfig(8, 8))
    calibrate_model(qm, [rng.standard_normal((4, 3, 32, 32))
                         .astype(np.float32) for _ in range(2)])
    d = deploy(qm, DeploySpec())
    x = rng.standard_normal((2, 3, 32, 32)).astype(np.float32)
    return d, x
