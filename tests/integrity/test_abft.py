"""ABFT column-checksum verification against the live compiled runtime.

The contract: a clean plan passes every sampled check; a live weight flip
breaks the column-checksum equality; a corrupted output register breaks
the output equality — both raise the typed :class:`SDCDetected`.
"""
from __future__ import annotations

import copy

import numpy as np
import pytest

from repro.integrity import (ABFT_KINDS, AbftChecker, EXACT_F64_LIMIT,
                             SDCDetected, attach_checksums,
                             checksum_row_bound)


def _convs(plan):
    return [(i, op) for i, op in enumerate(plan.ops)
            if op.kind in ("conv_mq", "conv_mq_res")]


class TestAttach:
    def test_checksums_attached_at_compile(self, sdc_deployed):
        d, _ = sdc_deployed
        rows = d.plan._abft_rows
        assert rows, "Plan.compile must attach ABFT checksum rows"
        # every exactly-reassociable conv under the 2^53 bound is covered
        for i, op in _convs(d.plan):
            if op.exact_reassoc and (checksum_row_bound(op.weight, op.bound)
                                     < EXACT_F64_LIMIT):
                assert i in rows, f"op [{i}] {op.name} missing checksum row"

    def test_checksum_row_is_column_sum_per_group(self, sdc_deployed):
        d, _ = sdc_deployed
        i, op = _convs(d.plan)[0]
        o, cg, kh, kw = op.weight.shape
        row = d.plan._abft_rows[i]
        want = (op.weight.reshape(op.groups, o // op.groups, cg * kh * kw)
                .astype(np.float64).sum(axis=1, keepdims=True))
        assert np.array_equal(row, want)

    def test_attach_is_idempotent(self, sdc_deployed):
        d, _ = sdc_deployed
        plan = copy.deepcopy(d.plan)
        first = attach_checksums(plan)
        again = attach_checksums(plan)
        assert first == again

    def test_bound_scales_with_channel_sum_ratio(self):
        w = np.ones((4, 2, 3, 3), dtype=np.float32)
        # equal per-channel sums: checksum bound = per-channel bound * o
        assert checksum_row_bound(w, 100.0) == pytest.approx(400.0)
        assert checksum_row_bound(np.zeros((2, 1, 1, 1)), 5.0) == 0.0


class TestChecker:
    def test_clean_plan_passes_every_sampled_check(self, sdc_deployed):
        d, x = sdc_deployed
        plan = copy.deepcopy(d.plan)
        checker = plan.enable_abft(sample_every=1)
        for _ in range(2 * len(checker._targets) // 2 + 4):
            plan(x)
        assert checker.checks >= 4
        assert checker.failures == 0
        plan.disable_abft()
        assert plan._abft is None

    def test_flipped_live_weight_breaks_column_checksum(self, sdc_deployed):
        d, x = sdc_deployed
        plan = copy.deepcopy(d.plan)
        checker = plan.enable_abft(sample_every=1)
        # corrupt the weight of the eligible conv the cursor will hit first
        target = next(i for i in checker._targets
                      if plan.ops[i].kind in ("conv_mq", "conv_mq_res"))
        checker._cursor = checker._targets.index(target)
        plan.ops[target].weight.flat[5] += 4.0
        with pytest.raises(SDCDetected) as err:
            for _ in range(len(checker._targets) + 1):
                plan(x)
        assert err.value.source == "abft"
        assert err.value.detail["check"] == "column-checksum"
        assert checker.failures == 1

    def test_corrupted_register_breaks_output_equality(self, sdc_deployed):
        d, x = sdc_deployed
        plan = copy.deepcopy(d.plan)
        plan(x)  # bind
        binding = next(iter(plan._bindings.values()))
        checker = AbftChecker(plan, sample_every=1)
        target = next(i for i in checker._targets
                      if plan.ops[i].kind in ("conv_mq", "conv_mq_res"))
        checker._cursor = checker._targets.index(target)
        op = plan.ops[target]
        from repro.integrity.abft import read_register

        # the arena buffers are live post-batch: poke the served output
        arena = binding.arena
        if arena.layout == "channel" and op.dst in arena._cm_centers:
            arena._cm_centers[op.dst][0, 0, 0, 0] += 3.0
        else:
            arena.regs[op.dst].flat[0] += 3.0
        with pytest.raises(SDCDetected) as err:
            checker.check(binding)
        assert err.value.source == "abft"
        assert err.value.detail["check"] == "output"

    def test_sampling_cadence(self, sdc_deployed):
        d, x = sdc_deployed
        plan = copy.deepcopy(d.plan)
        checker = plan.enable_abft(sample_every=4)
        for _ in range(8):
            plan(x)
        assert checker.checks == 2

    def test_kinds_catalog_is_pinned(self):
        assert set(ABFT_KINDS) == {"conv_mq", "conv_mq_res", "mulquant"}
