"""Model zoo: shapes, structure, features, registry."""
import numpy as np
import pytest

from repro.models import build_model, MODELS
from repro.models.resnet import BasicBlock, Bottleneck
from repro.tensor import Tensor


@pytest.fixture
def x32(rng):
    return Tensor(rng.standard_normal((2, 3, 32, 32)).astype(np.float32))


class TestResNet:
    def test_resnet20_structure(self):
        m = build_model("resnet20", width=16)
        blocks = [b for s in m.stages for b in s]
        assert len(blocks) == 9
        assert all(isinstance(b, BasicBlock) for b in blocks)

    def test_resnet50_uses_bottleneck(self):
        m = build_model("resnet50", width=8)
        blocks = [b for s in m.stages for b in s]
        assert len(blocks) == 16
        assert all(isinstance(b, Bottleneck) for b in blocks)

    def test_forward_shape(self, x32):
        m = build_model("resnet18", num_classes=7, width=8)
        assert m(x32).shape == (2, 7)

    def test_features_dim(self, x32):
        m = build_model("resnet20", width=8)
        f = m.features(x32)
        assert f.shape == (2, 32)  # width * 2^2

    def test_downsample_on_stage_transition(self):
        m = build_model("resnet18", width=8)
        first_of_stage2 = m.stages[1][0]
        assert not isinstance(first_of_stage2.downsample, type(m.stages[0][0].downsample))


class TestMobileNet:
    def test_forward_shape(self, x32):
        m = build_model("mobilenet-v1", num_classes=4)
        assert m(x32).shape == (2, 4)

    def test_width_multiplier_scales_params(self):
        small = build_model("mobilenet-v1", width_mult=0.5).num_parameters()
        big = build_model("mobilenet-v1", width_mult=1.0).num_parameters()
        assert big > small * 2

    def test_depthwise_blocks(self):
        m = build_model("mobilenet-v1")
        dw = m.blocks[0][0]
        assert dw.groups == dw.in_channels


class TestViT:
    def test_forward_shape(self, x32):
        m = build_model("vit-7", num_classes=5, embed_dim=32)
        assert m(x32).shape == (2, 5)

    def test_depth_is_7(self):
        m = build_model("vit-7", embed_dim=32)
        assert len(list(m.blocks)) == 7

    def test_patch_count(self):
        m = build_model("vit-7", embed_dim=32, image_size=32)
        assert m.patch_embed.num_patches == 64
        assert m.pos_embed.shape == (1, 65, 32)

    def test_bad_patch_size_raises(self):
        from repro.models.vit import VisionTransformer
        with pytest.raises(ValueError):
            VisionTransformer(image_size=30, patch_size=4)

    def test_ln_running_stats_flag_propagates(self):
        m = build_model("vit-7", embed_dim=32, ln_running_stats=True)
        assert m.blocks[0].norm1.running_stats


class TestRegistry:
    def test_all_models_buildable(self, x32):
        kw = {"resnet20": dict(width=8), "resnet18": dict(width=8), "resnet50": dict(width=8),
              "mobilenet-v1": dict(width_mult=0.5), "vgg8": dict(width_mult=0.5),
              "vit-7": dict(embed_dim=32)}
        for name in MODELS:
            m = build_model(name, num_classes=3, **kw[name])
            assert m(x32).shape == (2, 3)

    def test_unknown_raises(self):
        with pytest.raises(KeyError):
            build_model("alexnet")
