"""Interval engine: bounds are tight (attained), overflows are proven."""
import numpy as np
import pytest

from repro import nn
from repro.core.mulquant import MulQuant
from repro.core.vanilla import InputQuant
from repro.lint.engine import lint_intervals
from repro.lint.intervals import Interval, accum_bounds
from repro.tensor import Tensor, no_grad

from tests.lint.conftest import make_deploy_conv, make_deploy_linear


def _rules(report):
    return [f.rule for f in report.findings]


class TestTightness:
    """Satellite: worst-case (sign-matched) inputs hit the proven bound
    exactly — the static bound is not just sound but attained at runtime."""

    def test_linear_bound_attained(self, deploy_linear):
        lin = deploy_linear
        qlb, qub = lin.aq.qlb, lin.aq.qub
        model = nn.Sequential(InputQuant(1.0, qlb, qub), lin)
        report = lint_intervals(model)
        (row,) = report.rows
        assert row["kind"] == "QLinear"

        w = lin.wint.data
        per_ch = accum_bounds(w, Interval.grid(qlb, qub))
        observed_hi, observed_lo = [], []
        with no_grad():
            for c in range(w.shape[0]):
                x_hi = np.where(w[c] > 0, qub, qlb).astype(np.float32)
                x_lo = np.where(w[c] > 0, qlb, qub).astype(np.float32)
                observed_hi.append(float(lin(Tensor(x_hi[None])).data[0, c]))
                observed_lo.append(float(lin(Tensor(x_lo[None])).data[0, c]))
        np.testing.assert_array_equal(observed_hi, per_ch.hi)
        np.testing.assert_array_equal(observed_lo, per_ch.lo)
        # the engine row is the exact hull of the attained per-channel bounds
        assert row["acc_hi"] == max(observed_hi)
        assert row["acc_lo"] == min(observed_lo)

    def test_conv_bound_attained(self, deploy_conv):
        conv = deploy_conv  # k == input size -> one output position, no padding
        qlb, qub = conv.aq.qlb, conv.aq.qub
        model = nn.Sequential(InputQuant(1.0, qlb, qub), conv)
        report = lint_intervals(model)
        (row,) = report.rows

        w = conv.wint.data
        w2d = w.reshape(w.shape[0], -1)
        per_ch = accum_bounds(w2d, Interval.grid(qlb, qub))
        observed_hi, observed_lo = [], []
        with no_grad():
            for c in range(w.shape[0]):
                x_hi = np.where(w[c] > 0, qub, qlb).astype(np.float32)
                x_lo = np.where(w[c] > 0, qlb, qub).astype(np.float32)
                observed_hi.append(float(conv(Tensor(x_hi[None])).data[0, c, 0, 0]))
                observed_lo.append(float(conv(Tensor(x_lo[None])).data[0, c, 0, 0]))
        np.testing.assert_array_equal(observed_hi, per_ch.hi)
        np.testing.assert_array_equal(observed_lo, per_ch.lo)
        assert row["acc_hi"] == max(observed_hi)
        assert row["acc_lo"] == min(observed_lo)


class TestOverflow:
    def test_int32_overflow_is_error(self, rng):
        lin = make_deploy_linear(rng, in_f=6, out_f=2)
        lin.wint.data = np.full((2, 6), 1e8, dtype=np.float32)
        model = nn.Sequential(InputQuant(1.0, -128, 127), lin)
        report = lint_intervals(model, accum_bits=32)
        assert "datapath.accum-overflow" in _rules(report)
        (row,) = report.rows
        assert row["min_accum_bits"] > 32

    def test_fits_configured_width(self, deploy_linear):
        model = nn.Sequential(InputQuant(1.0, -128, 127), deploy_linear)
        assert "datapath.accum-overflow" not in _rules(lint_intervals(model, accum_bits=32))
        assert "datapath.accum-overflow" in _rules(lint_intervals(model, accum_bits=8))

    def test_unbounded_input_is_error(self, deploy_linear):
        report = lint_intervals(nn.Sequential(deploy_linear))
        assert "datapath.unbounded-input" in _rules(report)


class TestGraphWalk:
    def test_chain_records_every_mac_site(self, tiny_chain):
        report = lint_intervals(tiny_chain)
        kinds = [r["kind"] for r in report.rows]
        assert kinds == ["QConv2d", "QLinear"]
        for r in report.rows:
            assert 1 <= r["min_accum_bits"] <= 128

    def test_mulquant_tightens_range(self, rng):
        conv = make_deploy_conv(rng)
        mq = MulQuant(np.full(3, 0.01), out_lo=0.0, out_hi=255.0)
        model = nn.Sequential(InputQuant(1.0, -128, 127), conv, mq)
        report = lint_intervals(model)
        lo, hi = report.output.bounds()
        # clamp is an envelope: output must sit inside [0, 255] and below
        # the raw accumulator range scaled by 0.01
        assert 0.0 <= lo <= hi <= 255.0
        (row,) = [r for r in report.rows if r["kind"] == "QConv2d"]
        assert hi <= np.ceil(row["acc_hi"] * 0.01)

    def test_bitwidth_mismatch_flagged(self, rng):
        # producer emits up to 255 but the consumer grid is signed 4-bit
        conv = make_deploy_conv(rng, abit=4)
        mq = MulQuant(1.0, out_lo=0.0, out_hi=255.0)
        model = nn.Sequential(InputQuant(1.0, 0, 255), mq, conv)
        report = lint_intervals(model)
        assert "contract.bitwidth-mismatch" in _rules(report)

    def test_unfrozen_weight_flagged(self, rng):
        conv = make_deploy_conv(rng)
        conv.wint.data = np.zeros_like(conv.wint.data)
        model = nn.Sequential(InputQuant(1.0, -128, 127), conv)
        assert "contract.unfrozen-weight" in _rules(lint_intervals(model))

    def test_relu_and_pool_preserve_bounds(self):
        model = nn.Sequential(InputQuant(1.0, -128, 127), nn.ReLU(),
                              nn.MaxPool2d(2, 2))
        report = lint_intervals(model)
        assert report.output.bounds() == (0.0, 127.0)

    def test_explicit_input_interval(self, deploy_linear):
        report = lint_intervals(nn.Sequential(deploy_linear),
                                input_interval=Interval.grid(-8, 7))
        assert "datapath.unbounded-input" not in _rules(report)
        assert len(report.rows) == 1
