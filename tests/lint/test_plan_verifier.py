"""Plan-IR verifier: dataflow/no-alias/overflow/shift proofs over programs.

Two layers of coverage: hand-built synthetic plans that violate one
invariant each (so the rule-to-defect mapping is exact), and real compiled
plans from the deploy pipeline (which must verify with zero errors, and
whose report must round-trip through JSON for the export manifest).
"""
import copy
import json

import numpy as np
import pytest

from repro.core import DeploySpec, deploy
from repro.core.qconfig import QConfig
from repro.core.qmodels import quantize_model
from repro.core.t2c import calibrate_model
from repro.lint.findings import reaches_severity
from repro.lint.plan import (PlanVerificationError, plan_liveness,
                             verify_plan)
from repro.models import build_model
from repro.runtime.executor import Plan
from repro.runtime.kernels import MQParams
from repro.runtime.program import (InputQuantOp, LinearMQOp, MulQuantOp,
                                   ResidualOp)


def _mq(m=0.5, b=0.0, lo=-128.0, hi=127.0, axis=1):
    return MQParams(np.asarray(m), np.asarray(b), lo, hi, axis)


def _chain_plan(ops=None, num_regs=None, output_reg=None):
    """in -> mq -> mq with an overridable op list (the clean baseline)."""
    ops = ops if ops is not None else [
        InputQuantOp("in", (0,), 1, scale=0.05, qlb=-128, qub=127),
        MulQuantOp("a", (1,), 2, _mq()),
        MulQuantOp("b", (2,), 3, _mq()),
    ]
    n = num_regs if num_regs is not None else 4
    out = output_reg if output_reg is not None else n - 1
    return Plan(ops, num_regs=n, output_reg=out, model_name="tiny",
                out_features=1, layout="batch")


@pytest.fixture(scope="module")
def deployed_resnet():
    rng = np.random.default_rng(0)
    qm = quantize_model(build_model("resnet20", num_classes=10, width=8),
                        QConfig(8, 8))
    calibrate_model(qm, [rng.standard_normal((4, 3, 32, 32)).astype(np.float32)
                         for _ in range(2)])
    return deploy(qm, DeploySpec(runtime="auto", lint=True))


class TestDataflow:
    def test_clean_chain_verifies(self):
        rep = verify_plan(_chain_plan())
        assert rep.ok
        assert not rep.findings

    def test_use_before_def_is_dead_read(self):
        plan = _chain_plan()
        plan.ops[1].src = (3,)  # reads the reg op 2 will define
        rep = verify_plan(plan)
        assert not rep.ok
        assert "plan.dead-read" in {f.rule for f in rep.findings}

    def test_never_written_read_is_dead_read(self):
        plan = _chain_plan(num_regs=5)
        plan.ops[1].src = (4,)  # nobody ever writes r4
        rep = verify_plan(plan)
        rules = {f.rule for f in rep.findings}
        assert "plan.dead-read" in rules

    def test_double_write_is_alias(self):
        plan = _chain_plan()
        plan.ops[2].dst = 2  # rewrites op 1's register
        rep = verify_plan(plan)
        assert "plan.alias" in {f.rule for f in rep.findings}

    def test_register_out_of_range(self):
        plan = _chain_plan()
        plan.ops[2].dst = 9
        rep = verify_plan(plan)
        assert "plan.shape-mismatch" in {f.rule for f in rep.findings}

    def test_unwritten_output_reg(self):
        plan = _chain_plan(num_regs=5, output_reg=4)
        rep = verify_plan(plan)
        assert not rep.ok
        assert any(f.rule == "plan.dead-read" and f.where == "<output>"
                   for f in rep.findings)

    def test_dead_value_is_warning_not_error(self):
        # an extra op whose result nobody consumes: wasteful, not unsound
        plan = _chain_plan(ops=[
            InputQuantOp("in", (0,), 1, scale=0.05, qlb=-128, qub=127),
            MulQuantOp("dead", (1,), 2, _mq()),
            MulQuantOp("out", (1,), 3, _mq()),
        ])
        rep = verify_plan(plan)
        assert rep.ok  # no errors
        assert rep.exceeds("warning")
        assert not rep.exceeds("error")
        warn = [f for f in rep.findings if f.rule == "plan.dead-read"]
        assert warn and all(f.severity == "WARN" for f in warn)


class TestLiveness:
    def test_live_ranges_and_dead_after(self):
        plan = _chain_plan(ops=[
            InputQuantOp("in", (0,), 1, scale=0.05, qlb=-128, qub=127),
            MulQuantOp("left", (1,), 2, _mq()),
            ResidualOp("merge", (2, 1), 3, res_scale=1.0, lo=-128, hi=127),
        ])
        live = plan_liveness(plan)
        assert live.live_range(1) == (0, 2)   # r1 read by ops 1 and 2
        assert live.live_range(2) == (1, 2)
        # output register survives to program end
        assert live.live_range(3) == (2, 3)
        # the residual is the last reader of both intermediates
        assert live.dead_after(2) == [1, 2]
        assert live.dead_after(1) == []
        assert live.max_live() >= 2

    def test_liveness_on_compiled_plan(self, deployed_resnet):
        live = plan_liveness(deployed_resnet.plan)
        # every non-output register dies somewhere: the fusion oracle
        # accounts for all intermediates exactly once
        dead = [r for i in range(len(deployed_resnet.plan.ops))
                for r in live.dead_after(i)]
        assert sorted(dead) == sorted(
            r for r in live.defs
            if r != deployed_resnet.plan.output_reg and live.uses.get(r))
        assert not live.dead_values()


class TestSlots:
    def test_overlapping_slot_ranges_alias(self):
        plan = _chain_plan(ops=[
            InputQuantOp("in", (0,), 1, scale=0.05, qlb=-128, qub=127),
            MulQuantOp("a", (1,), 2, _mq()),
            ResidualOp("merge", (2, 1), 3, res_scale=1.0, lo=-128, hi=127),
        ])
        # r1 is live [0,2] and r2 live [1,2]: sharing a slot is unsound
        plan.slots = {1: 7, 2: 7, 3: 8}
        rep = verify_plan(plan)
        assert not rep.ok
        assert any(f.rule == "plan.alias" and "slot 7" in f.where
                   for f in rep.findings)

    def test_disjoint_slot_ranges_are_sound(self):
        plan = _chain_plan()  # straight chain: r1 dies at op 1, r2 at op 2
        plan.slots = {1: 7, 3: 7, 2: 8}  # r1 [0,1] and r3 [2,3] don't overlap
        rep = verify_plan(plan)
        assert rep.ok


class TestOverflow:
    def test_linear_accum_overflow_flagged(self):
        w = np.full((4, 3), 1000.0, dtype=np.float32)
        plan = _chain_plan(ops=[
            InputQuantOp("in", (0,), 1, scale=0.05, qlb=-128, qub=127),
            LinearMQOp("fc", (1,), 2, w, _mq()),
        ], num_regs=3, output_reg=2)
        assert verify_plan(plan, accum_bits=32).ok
        rep = verify_plan(plan, accum_bits=16)
        assert not rep.ok
        assert any(f.rule == "plan.accum-overflow" and "16-bit" in f.message
                   for f in rep.findings)

    def test_compiled_plan_rows_under_exact_f32(self, deployed_resnet):
        rep = deployed_resnet.plan.verify(input_shape=(3, 32, 32))
        assert rep.ok
        assert rep.rows
        assert all(r["exact_f32"] for r in rep.rows)
        assert all(r["min_accum_bits"] <= 32 for r in rep.rows)

    def test_module_bits_cross_check_divergence(self, deployed_resnet):
        module_bits = deployed_resnet.lint_report.min_accum_bits()
        plan = deployed_resnet.plan
        assert verify_plan(plan, module_bits=module_bits).ok
        # pretend the module proof was tighter than what the plan needs:
        # the verifier must flag the divergence
        forged = {k: 1 for k in module_bits}
        rep = verify_plan(plan, module_bits=forged)
        assert not rep.ok
        assert any(f.rule == "plan.accum-overflow" and "diverged" in f.message
                   for f in rep.findings)
        assert rep.checked_module_rows > 0

    def test_stale_conv_certificate(self, deployed_resnet):
        plan = copy.deepcopy(deployed_resnet.plan)
        up = next(op for op in plan.ops
                  if op.kind == "conv_mq"
                  and any(o.kind == "conv_mq" and o.src[0] == op.dst
                          for o in plan.ops))
        up.mq.m = up.mq.m * 64.0
        up.mq.lo *= 64.0
        up.mq.hi *= 64.0
        rep = verify_plan(plan)
        assert not rep.ok
        assert any(f.rule == "plan.accum-overflow" and "stale" in f.message
                   for f in rep.findings)


class TestShiftCertificates:
    def test_po2_scale_certified(self):
        plan = _chain_plan(ops=[
            InputQuantOp("in", (0,), 1, scale=0.05, qlb=-128, qub=127),
            MulQuantOp("po2", (1,), 2, _mq(m=0.25, b=3.0)),
        ], num_regs=3, output_reg=2)
        rep = verify_plan(plan, require_po2=True)
        assert rep.ok
        (cert,) = rep.shift_certificates
        assert cert["po2"] and cert["bias_integral"] and cert["shift_ok"]
        assert cert["shifts"] == [-2]

    def test_non_po2_scale_fails_require_po2(self):
        plan = _chain_plan(ops=[
            InputQuantOp("in", (0,), 1, scale=0.05, qlb=-128, qub=127),
            MulQuantOp("q", (1,), 2, _mq(m=0.3)),
        ], num_regs=3, output_reg=2)
        assert verify_plan(plan).ok  # advisory by default
        rep = verify_plan(plan, require_po2=True)
        assert not rep.ok
        assert "plan.shift-inexact" in {f.rule for f in rep.findings}

    def test_fractional_bias_fails_require_po2(self):
        plan = _chain_plan(ops=[
            InputQuantOp("in", (0,), 1, scale=0.05, qlb=-128, qub=127),
            MulQuantOp("q", (1,), 2, _mq(m=0.5, b=0.25)),
        ], num_regs=3, output_reg=2)
        rep = verify_plan(plan, require_po2=True)
        assert not rep.ok
        assert any("bias" in f.message for f in rep.findings
                   if f.rule == "plan.shift-inexact")

    def test_compiled_plan_records_all_requants(self, deployed_resnet):
        rep = deployed_resnet.plan.verify()
        mq_attrs = ("mq", "smq", "mq_qkv", "mq_score", "mq_ctx", "mq_proj",
                    "mq_fc1", "mq_fc2")
        mq_params = sum(1 for op in deployed_resnet.plan.ops for a in mq_attrs
                        if getattr(op, a, None) is not None)
        assert len(rep.shift_certificates) == mq_params


class TestShapePass:
    def test_shape_pass_needs_input_shape(self):
        plan = _chain_plan(ops=[
            InputQuantOp("in", (0,), 1, scale=0.05, qlb=-128, qub=127),
            LinearMQOp("fc", (1,), 2, np.ones((4, 3), np.float32), _mq()),
        ], num_regs=3, output_reg=2)
        assert verify_plan(plan).ok  # no shape info, no shape findings
        rep = verify_plan(plan, input_shape=(5,))  # fc wants 3 features
        assert not rep.ok
        assert "plan.shape-mismatch" in {f.rule for f in rep.findings}

    def test_compiled_plan_shapes_check_out(self, deployed_resnet):
        assert deployed_resnet.plan.verify(input_shape=(3, 32, 32)).ok


class TestReportAndGate:
    def test_report_round_trips_json(self, deployed_resnet):
        rep = deployed_resnet.plan.verify(input_shape=(3, 32, 32))
        doc = json.loads(json.dumps(rep.to_json()))
        assert doc["ok"] is True
        assert doc["ops"] == len(deployed_resnet.plan.ops)
        assert doc["accumulators"] and doc["shift"]["total"] > 0
        assert doc["liveness"]["max_live"] >= 2
        assert doc["signature"] == deployed_resnet.plan.signature()

    def test_manifest_embeds_verification(self, tmp_path):
        rng = np.random.default_rng(1)
        qm = quantize_model(build_model("vgg8", num_classes=10,
                                        width_mult=0.5), QConfig(8, 8))
        calibrate_model(qm, [rng.standard_normal(
            (4, 3, 32, 32)).astype(np.float32) for _ in range(2)])
        out = str(tmp_path / "artifacts")
        d = deploy(qm, DeploySpec(runtime="auto", export_dir=out))
        assert d.manifest["plan_verification"]["ok"] is True
        with open(tmp_path / "artifacts" / "manifest.json") as f:
            on_disk = json.load(f)
        assert on_disk["plan_verification"] == json.loads(
            json.dumps(d.manifest["plan_verification"]))
        # the amended manifest is re-signed: the integrity audit still passes
        from repro.export.integrity import verify_artifacts
        assert verify_artifacts(out).ok

    @staticmethod
    def _calibrated_vgg(seed):
        rng = np.random.default_rng(seed)
        qm = quantize_model(build_model("vgg8", num_classes=10,
                                        width_mult=0.5), QConfig(8, 8))
        calibrate_model(qm, [rng.standard_normal(
            (4, 3, 32, 32)).astype(np.float32) for _ in range(2)])
        return qm

    def test_deploy_gate_raises_on_bad_plan(self, monkeypatch):
        orig = Plan.compile.__func__

        def miscompile(cls, qnn, spec=None, **kw):
            plan = orig(cls, qnn, spec, **kw)
            plan.ops[-1].src = (plan.ops[-1].dst,)  # self-read: use-before-def
            return plan

        monkeypatch.setattr(Plan, "compile", classmethod(miscompile))
        with pytest.raises(PlanVerificationError) as ei:
            deploy(self._calibrated_vgg(2), DeploySpec(runtime="auto"))
        assert ei.value.report is not None
        assert not ei.value.report.ok
        # opting out hands back the (unverified) bundle instead
        d = deploy(self._calibrated_vgg(2),
                   DeploySpec(runtime="auto", verify_plan=False))
        assert d.plan_verification is None

    def test_verify_cache_and_refresh(self, deployed_resnet):
        plan = copy.deepcopy(deployed_resnet.plan)
        plan._verification = None
        first = plan.verify()
        assert plan.verify() is first
        assert plan.verify(refresh=True) is not first
        # non-default configs never return the cached default report
        assert plan.verify(accum_bits=24) is not first

    def test_error_exception_names_rules(self):
        plan = _chain_plan()
        plan.ops[1].src = (3,)
        rep = verify_plan(plan)
        err = PlanVerificationError(rep)
        assert "plan.dead-read" in str(err)
        assert err.report is rep

    def test_reaches_severity_validates_threshold(self):
        with pytest.raises(ValueError):
            reaches_severity([], "fatal")
