"""Interval domain: soundness and tightness of the bound arithmetic."""
import numpy as np
import pytest

from repro.lint.intervals import Interval, accum_bounds, min_signed_bits


class TestInterval:
    def test_empty_interval_rejected(self):
        with pytest.raises(ValueError):
            Interval(3.0, 2.0)

    def test_grid_and_bounds(self):
        iv = Interval.grid(-128, 127)
        assert iv.bounds() == (-128.0, 127.0)
        assert iv.is_bounded and iv.is_scalar

    def test_unbounded(self):
        iv = Interval.unbounded()
        assert not iv.is_bounded

    def test_add(self):
        iv = Interval(-2.0, 3.0) + Interval(-1.0, 5.0)
        assert iv.bounds() == (-3.0, 8.0)

    def test_mul_covers_sign_cases(self):
        iv = Interval(-2.0, 3.0) * Interval(-4.0, 5.0)
        # candidates: 8, -10, -12, 15
        assert iv.bounds() == (-12.0, 15.0)

    def test_scale_negative_constant(self):
        iv = Interval(-2.0, 3.0).scale(-2.0)
        assert iv.bounds() == (-6.0, 4.0)

    def test_scale_per_channel(self):
        iv = Interval(np.array([0.0, -4.0]), np.array([10.0, 4.0])).scale(
            np.array([0.5, -1.0]))
        np.testing.assert_array_equal(iv.lo, [0.0, -4.0])
        np.testing.assert_array_equal(iv.hi, [5.0, 4.0])

    def test_clamp(self):
        assert Interval(-100.0, 100.0).clamp(0, 15).bounds() == (0.0, 15.0)

    def test_hull_zero(self):
        assert Interval(3.0, 9.0).hull_zero().bounds() == (0.0, 9.0)

    def test_round_half_away_is_monotone_image(self):
        iv = Interval(-2.5, 2.49).round_half_away()
        assert iv.bounds() == (-3.0, 2.0)


class TestMinSignedBits:
    @pytest.mark.parametrize("lo,hi,bits", [
        (0, 0, 1),
        (-1, 0, 1),
        (-128, 127, 8),
        (-129, 127, 9),
        (0, 127, 8),
        (0, 128, 9),
        (-(2 ** 31), 2 ** 31 - 1, 32),
        (0, 2 ** 31, 33),
    ])
    def test_widths(self, lo, hi, bits):
        assert min_signed_bits(lo, hi) == bits

    def test_unbounded_sentinel(self):
        assert min_signed_bits(-np.inf, 0) == 128


class TestAccumBounds:
    def test_matches_brute_force(self, rng):
        w = rng.integers(-7, 8, size=(5, 6)).astype(np.float64)
        lo, hi = -8, 7
        bounds = accum_bounds(w, Interval.grid(lo, hi))
        # brute-force the worst case over sign-matched inputs
        for c in range(5):
            x_hi = np.where(w[c] > 0, hi, lo)
            x_lo = np.where(w[c] > 0, lo, hi)
            assert float(w[c] @ x_hi) == bounds.hi[c]
            assert float(w[c] @ x_lo) == bounds.lo[c]

    def test_sound_for_random_inputs(self, rng):
        w = rng.integers(-7, 8, size=(4, 10)).astype(np.float64)
        bounds = accum_bounds(w, Interval.grid(-16, 15))
        for _ in range(100):
            x = rng.integers(-16, 16, size=10)
            acc = w @ x
            assert np.all(acc >= bounds.lo) and np.all(acc <= bounds.hi)

    def test_zero_weight_row(self):
        bounds = accum_bounds(np.zeros((1, 4)), Interval.grid(-8, 7))
        assert bounds.bounds() == (0.0, 0.0)
