"""docs/lint.md's rule catalog must exactly mirror repro.lint.findings.RULES.

The table is hand-rendered (so the doc can be read without running code) but
this test pins every row to the catalog: a rule added, removed, re-severitied
or re-worded in findings.py without a matching doc edit fails CI.
"""
import os
import re

from repro.lint.findings import RULES

DOC = os.path.join(os.path.dirname(__file__), "..", "..", "docs", "lint.md")

ROW = re.compile(r"^\| `(?P<rule>[a-z.-]+)` \| (?P<sev>ERROR|WARN|INFO) \| "
                 r"(?P<desc>.+?) \|$")


def _doc_rows():
    rows = {}
    with open(DOC) as f:
        for line in f:
            m = ROW.match(line.strip())
            if m:
                rows[m.group("rule")] = (m.group("sev"), m.group("desc"))
    return rows


def _normalize(text):
    return " ".join(text.split())


def test_docs_table_matches_rules_catalog():
    rows = _doc_rows()
    assert rows, "no catalog table found in docs/lint.md"
    documented = set(rows)
    actual = set(RULES)
    assert documented == actual, (
        f"docs/lint.md drifted from RULES: "
        f"missing={sorted(actual - documented)} "
        f"stale={sorted(documented - actual)}")
    for rule, (sev, desc) in RULES.items():
        doc_sev, doc_desc = rows[rule]
        assert doc_sev == sev, f"{rule}: doc says {doc_sev}, catalog {sev}"
        assert _normalize(doc_desc) == _normalize(desc), (
            f"{rule}: doc description drifted\n"
            f"  doc:     {doc_desc!r}\n  catalog: {desc!r}")


def test_plan_rules_documented_in_prose():
    """The tentpole rules get explanatory prose, not only a table row."""
    with open(DOC) as f:
        text = f.read()
    for rule in ("plan.alias", "plan.dead-read", "plan.accum-overflow",
                 "plan.shift-inexact"):
        assert text.count(rule) >= 2, f"{rule} only appears in the table"
