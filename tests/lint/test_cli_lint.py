"""End-to-end `repro.cli lint`: exit codes gate CI, --json is machine-readable."""
import json

import pytest

from repro.cli import main

FAST = ["--train-size", "256", "--test-size", "64", "--calib-batches", "1"]


class TestPurity:
    def test_purity_exits_zero(self, capsys):
        assert main(["lint", "--purity"]) == 0
        out = capsys.readouterr().out
        assert "lint: 0 error(s)" in out

    def test_purity_json(self, capsys):
        assert main(["lint", "--purity", "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["ok"] is True
        assert doc["findings"] == []


class TestModelLint:
    def test_fused_vgg_is_clean(self, capsys):
        assert main(["lint", "--model", "vgg8", *FAST]) == 0
        out = capsys.readouterr().out
        assert "min_accum_bits" in out or "accum" in out

    def test_overflow_exit_code(self, capsys):
        # a 16-bit accumulator provably overflows on the conv layers
        rc = main(["lint", "--model", "vgg8", "--accum-bits", "16", *FAST])
        assert rc == 2
        assert "datapath.accum-overflow" in capsys.readouterr().out

    def test_json_reports_accumulators(self, capsys):
        assert main(["lint", "--model", "vgg8", "--json", *FAST]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["ok"] is True
        assert doc["accumulators"], "expected per-layer accumulator rows"
        for row in doc["accumulators"]:
            assert row["min_accum_bits"] <= 32

    def test_repacked_path(self, capsys):
        assert main(["lint", "--model", "vgg8", "--repacked", *FAST]) == 0
        doc_out = capsys.readouterr().out
        assert "error(s)" in doc_out


class TestPlanFlag:
    def test_plan_verification_clean(self, capsys):
        assert main(["lint", "--model", "vgg8", "--plan", "--json",
                     *FAST]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["plan"]["ok"] is True
        assert doc["plan"]["accumulators"]
        assert doc["plan"]["shift"]["total"] > 0
        assert doc["plan"]["liveness"]["max_live"] >= 2

    def test_plan_violation_exits_two(self, capsys, monkeypatch):
        from repro.runtime.executor import Plan

        orig = Plan.verify

        def verify_mutant(self, *a, **kw):
            mutant = __import__("copy").deepcopy(self)
            mutant.ops[-1].src = (mutant.ops[-1].dst,)
            return orig(mutant, refresh=True)

        monkeypatch.setattr(Plan, "verify", verify_mutant)
        rc = main(["lint", "--model", "vgg8", "--plan", "--json", *FAST])
        assert rc == 2
        doc = json.loads(capsys.readouterr().out)
        assert doc["plan"]["ok"] is False
        assert "plan.dead-read" in doc["plan"]["summary"]["by_rule"]


class TestFailOn:
    @staticmethod
    def _warn_report():
        from repro.lint.findings import make_finding
        from repro.lint.runner import LintReport

        return LintReport(findings=[make_finding(
            "purity.float-cast", "fake.py:1", "synthetic warning")])

    def test_warning_threshold_gates(self, capsys, monkeypatch):
        import repro.lint

        monkeypatch.setattr(repro.lint, "lint_sources",
                            lambda *a, **kw: self._warn_report())
        assert main(["lint", "--purity"]) == 0
        capsys.readouterr()
        assert main(["lint", "--purity", "--fail-on", "warning"]) == 2

    def test_error_threshold_ignores_warnings(self, monkeypatch, capsys):
        import repro.lint

        monkeypatch.setattr(repro.lint, "lint_sources",
                            lambda *a, **kw: self._warn_report())
        assert main(["lint", "--purity", "--fail-on", "error"]) == 0

    def test_report_exceeds_api(self):
        rep = self._warn_report()
        assert rep.ok
        assert not rep.exceeds("error")
        assert rep.exceeds("warning")
