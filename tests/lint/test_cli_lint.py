"""End-to-end `repro.cli lint`: exit codes gate CI, --json is machine-readable."""
import json

import pytest

from repro.cli import main

FAST = ["--train-size", "256", "--test-size", "64", "--calib-batches", "1"]


class TestPurity:
    def test_purity_exits_zero(self, capsys):
        assert main(["lint", "--purity"]) == 0
        out = capsys.readouterr().out
        assert "lint: 0 error(s)" in out

    def test_purity_json(self, capsys):
        assert main(["lint", "--purity", "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["ok"] is True
        assert doc["findings"] == []


class TestModelLint:
    def test_fused_vgg_is_clean(self, capsys):
        assert main(["lint", "--model", "vgg8", *FAST]) == 0
        out = capsys.readouterr().out
        assert "min_accum_bits" in out or "accum" in out

    def test_overflow_exit_code(self, capsys):
        # a 16-bit accumulator provably overflows on the conv layers
        rc = main(["lint", "--model", "vgg8", "--accum-bits", "16", *FAST])
        assert rc == 2
        assert "datapath.accum-overflow" in capsys.readouterr().out

    def test_json_reports_accumulators(self, capsys):
        assert main(["lint", "--model", "vgg8", "--json", *FAST]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["ok"] is True
        assert doc["accumulators"], "expected per-layer accumulator rows"
        for row in doc["accumulators"]:
            assert row["min_accum_bits"] <= 32

    def test_repacked_path(self, capsys):
        assert main(["lint", "--model", "vgg8", "--repacked", *FAST]) == 0
        doc_out = capsys.readouterr().out
        assert "error(s)" in doc_out
