"""Lint-suite plumbing: auto-mark + a tiny hand-fused model fixture."""
from __future__ import annotations

import numpy as np
import pytest

from repro import nn
from repro.core.mulquant import MulQuant
from repro.core.qlayers import QConv2d, QLinear
from repro.core.quantizers import MinMaxChannelQuantizer, MinMaxQuantizer
from repro.core.vanilla import InputQuant


def pytest_collection_modifyitems(items):
    """Mark everything under tests/lint/ so `-m lint` / `-m "not lint"` can
    select the static-verification suite (mirrors the benchmark marker)."""
    for item in items:
        item.add_marker(pytest.mark.lint)


def make_deploy_linear(rng, in_f=6, out_f=4, abit=8, wlim=8) -> QLinear:
    """A deploy-mode QLinear with known integer weights (no calibration)."""
    lin = QLinear(in_f, out_f, bias=False,
                  wq=MinMaxChannelQuantizer(nbit=8), aq=MinMaxQuantizer(nbit=abit))
    w = rng.integers(-wlim, wlim + 1, size=(out_f, in_f)).astype(np.float32)
    lin.wint.data = w
    lin.weight.data = w * 0.01  # float twin (unused on the deploy path)
    lin.set_deploy(True)
    return lin


def make_deploy_conv(rng, cin=2, cout=3, k=4, abit=8, wlim=8, padding=0) -> QConv2d:
    """A deploy-mode QConv2d with known integer weights."""
    conv = QConv2d(cin, cout, k, padding=padding, bias=False,
                   wq=MinMaxChannelQuantizer(nbit=8), aq=MinMaxQuantizer(nbit=abit))
    w = rng.integers(-wlim, wlim + 1, size=(cout, cin, k, k)).astype(np.float32)
    conv.wint.data = w
    conv.weight.data = w * 0.01
    conv.set_deploy(True)
    return conv


@pytest.fixture
def deploy_linear(rng):
    return make_deploy_linear(rng)


@pytest.fixture
def deploy_conv(rng):
    return make_deploy_conv(rng)


@pytest.fixture
def tiny_chain(rng):
    """InputQuant -> conv -> MulQuant -> linear: a minimal deploy graph."""
    conv = make_deploy_conv(rng, cin=2, cout=3, k=4)
    lin = make_deploy_linear(rng, in_f=3, out_f=2)
    mq = MulQuant(np.full(3, 0.01), out_lo=-128.0, out_hi=127.0)
    return nn.Sequential(InputQuant(0.05, -128, 127), conv, mq,
                         nn.Flatten(), lin)
