"""Contract rules: each hand-built violation yields exactly its finding."""
import numpy as np
import pytest

from repro import nn
from repro.core.mulquant import MulQuant
from repro.core.vanilla import InputQuant
from repro.lint.contracts import check_contracts, model_kind

from tests.lint.conftest import make_deploy_conv, make_deploy_linear


def _errors(findings):
    return sorted(f.rule for f in findings if f.severity == "ERROR")


def _rules(findings):
    return [f.rule for f in findings]


def _int_weight_conv(rng, cin=2, cout=3, k=3):
    conv = nn.Conv2d(cin, cout, k, bias=False)
    conv.weight.data = rng.integers(-8, 9, size=conv.weight.shape).astype(np.float32)
    return conv


class TestModelKind:
    def test_repacked(self, rng):
        m = nn.Sequential(InputQuant(1.0, -128, 127), _int_weight_conv(rng))
        assert model_kind(m) == "repacked"

    def test_fused(self, deploy_linear):
        assert model_kind(nn.Sequential(deploy_linear)) == "fused"

    def test_float(self):
        assert model_kind(nn.Sequential(nn.Linear(4, 2))) == "float"


class TestUnfusedBatchNorm:
    def test_leftover_bn_in_repacked_model(self, rng):
        bn = nn.BatchNorm2d(3)
        # integral buffers so the integer-state sweep stays silent
        bn.running_mean.data = np.zeros(3, dtype=np.float32)
        bn.running_var.data = np.ones(3, dtype=np.float32)
        bn.weight.data = np.ones(3, dtype=np.float32)
        bn.bias.data = np.zeros(3, dtype=np.float32)
        m = nn.Sequential(InputQuant(1.0, -128, 127), _int_weight_conv(rng), bn)
        findings = check_contracts(m)
        assert _errors(findings) == ["contract.unfused-batchnorm"]

    def test_clean_repacked_model(self, rng):
        m = nn.Sequential(InputQuant(1.0, -128, 127), _int_weight_conv(rng))
        assert _errors(check_contracts(m)) == []


class TestLeftoverQuantizer:
    def test_qlayer_in_repacked_model(self, rng):
        lin = make_deploy_linear(rng)
        m = nn.Sequential(InputQuant(1.0, -128, 127), lin)
        assert "contract.leftover-quantizer" in _rules(check_contracts(m))


class TestMulQuantScale:
    def test_non_representable_scale_underflows(self):
        mq = MulQuant(np.array([1.0, 1e-9]), out_lo=-128.0, out_hi=127.0)
        findings = check_contracts(nn.Sequential(mq))
        assert "contract.scale-underflow" in _rules(findings)

    def test_lossy_scale_roundtrip_warns(self):
        mq = MulQuant(np.array([1.0, 0.001]), out_lo=-128.0, out_hi=127.0)
        findings = check_contracts(nn.Sequential(mq))
        assert "contract.scale-roundtrip" in _rules(findings)

    def test_bias_clipping_warns(self):
        mq = MulQuant(1.0, bias=5000.0, out_lo=-128.0, out_hi=127.0)
        findings = check_contracts(nn.Sequential(mq))
        assert "contract.bias-roundtrip" in _rules(findings)

    def test_float_scale_exempt(self):
        mq = MulQuant(np.array([1.0, 1e-9]), out_lo=-128.0, out_hi=127.0,
                      float_scale=True)
        assert _rules(check_contracts(nn.Sequential(mq))) == []

    def test_representable_scale_clean(self):
        mq = MulQuant(np.array([0.5, 0.25]), bias=np.array([1.0, -2.0]),
                      out_lo=-128.0, out_hi=127.0)
        assert _rules(check_contracts(nn.Sequential(mq))) == []


class TestQLayerContracts:
    def test_unfrozen_weight(self, rng):
        conv = make_deploy_conv(rng)
        conv.wint.data = np.zeros_like(conv.wint.data)
        findings = check_contracts(nn.Sequential(conv))
        assert "contract.unfrozen-weight" in _rules(findings)

    def test_asymmetric_grid(self, rng):
        lin = make_deploy_linear(rng)
        lin.aq.zero_point = 3.0
        findings = check_contracts(nn.Sequential(lin))
        assert "deploy.asymmetric-grid" in _rules(findings)

    def test_pruning_mask_lost(self, rng):
        lin = make_deploy_linear(rng)
        mask = np.ones_like(lin.wint.data)
        mask[0, :3] = 0
        lin.wint.data = np.where(lin.wint.data == 0, 1, lin.wint.data)
        findings = check_contracts(nn.Sequential(lin),
                                   masks={"1.weight": mask})
        assert "contract.pruning-mask-lost" in _rules(findings)

    def test_pruning_mask_preserved(self, rng):
        lin = make_deploy_linear(rng)
        mask = np.ones_like(lin.wint.data)
        mask[0, :3] = 0
        lin.wint.data = lin.wint.data * mask
        findings = check_contracts(nn.Sequential(lin),
                                   masks={"1.weight": mask})
        assert "contract.pruning-mask-lost" not in _rules(findings)


class TestIntegerState:
    def test_float_weight_in_repacked_model(self, rng):
        conv = _int_weight_conv(rng)
        conv.weight.data = conv.weight.data + 0.25
        m = nn.Sequential(InputQuant(1.0, -128, 127), conv)
        findings = check_contracts(m)
        assert "contract.non-integer-weight" in _rules(findings)

    def test_input_scale_exempt(self, rng):
        # InputQuant's own scale is the ADC boundary and stays float
        m = nn.Sequential(InputQuant(0.05, -128, 127), _int_weight_conv(rng))
        assert "contract.non-integer-weight" not in _rules(check_contracts(m))
