"""Deploy-path purity lint: runs with no model, flags float leaks by line."""
from repro.lint.purity import default_files, lint_purity, lint_source


def _rules(findings):
    return [f.rule for f in findings]


class TestStockSources:
    def test_deploy_modules_are_pure(self):
        # the whole point: CI can verify the integer path without
        # instantiating a model or loading a checkpoint
        assert lint_purity() == []

    def test_default_files_exist(self):
        files = default_files()
        assert len(files) == 3
        assert all(f.endswith(".py") for f in files)


class TestDetection:
    def test_float_division_flagged(self):
        src = ("class Foo:\n"
               "    def forward(self, x):\n"
               "        return x / 2\n")
        findings = lint_source(src, "foo.py")
        assert _rules(findings) == ["purity.float-div"]
        assert findings[0].where == "foo.py:3"
        assert "Foo.forward" in findings[0].message

    def test_augmented_division_flagged(self):
        src = ("class Foo:\n"
               "    def forward(self, x):\n"
               "        x /= 3\n"
               "        return x\n")
        assert "purity.float-div" in _rules(lint_source(src, "foo.py"))

    def test_float_stat_flagged(self):
        src = ("class Foo:\n"
               "    def forward(self, x):\n"
               "        return x.mean(axis=1)\n")
        assert "purity.float-stat" in _rules(lint_source(src, "foo.py"))

    def test_float_cast_flagged(self):
        src = ("class Foo:\n"
               "    def forward(self, x):\n"
               "        return float(x)\n")
        assert "purity.float-cast" in _rules(lint_source(src, "foo.py"))

    def test_float_literal_flagged(self):
        src = ("class Foo:\n"
               "    def forward(self, x):\n"
               "        return x * 0.125\n")
        assert "purity.float-literal" in _rules(lint_source(src, "foo.py"))

    def test_integral_float_literal_allowed(self):
        src = ("class Foo:\n"
               "    def forward(self, x):\n"
               "        return x * 2\n")
        assert lint_source(src, "foo.py") == []


class TestScoping:
    def test_only_deploy_methods_scanned(self):
        src = ("class Foo:\n"
               "    def helper(self, x):\n"
               "        return x / 2\n")
        assert lint_source(src, "foo.py") == []

    def test_module_level_code_ignored(self):
        src = "RATIO = 1 / 3\n"
        assert lint_source(src, "foo.py") == []

    def test_evalfunc_scanned(self):
        src = ("class Foo:\n"
               "    def evalFunc(self, x):\n"
               "        return x / 2\n")
        assert "purity.float-div" in _rules(lint_source(src, "foo.py"))


class TestAllowMarker:
    def test_marker_suppresses(self):
        src = ("class Foo:\n"
               "    def forward(self, x):\n"
               "        return x / 2  # lint: allow-float (documented)\n")
        assert lint_source(src, "foo.py") == []

    def test_marker_is_line_scoped(self):
        src = ("class Foo:\n"
               "    def forward(self, x):\n"
               "        y = x / 2  # lint: allow-float\n"
               "        return y / 3\n")
        findings = lint_source(src, "foo.py")
        assert _rules(findings) == ["purity.float-div"]
        assert findings[0].where == "foo.py:4"
