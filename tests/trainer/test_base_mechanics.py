"""Trainer plumbing: hooks, schedulers, custom optimizers."""
import numpy as np
import pytest

from repro.data import ArrayDataset
from repro.models import build_model
from repro.optim import AdamW, StepLR
from repro.trainer import Trainer
from repro.utils import seed_everything


@pytest.fixture
def tiny(rng):
    x = rng.standard_normal((120, 3, 8, 8)).astype(np.float32)
    y = rng.integers(0, 3, 120)
    return ArrayDataset(x, y), ArrayDataset(x[:40], y[:40])


def small_model():
    seed_everything(50)
    return build_model("resnet20", num_classes=3, width=4)


class TestHooks:
    def test_step_hooks_called_every_step(self, tiny):
        train, _ = tiny
        t = Trainer(small_model(), train, epochs=2, batch_size=40)
        calls = []
        t.step_hooks.append(lambda tr: calls.append(tr._global_step))
        t.fit()
        assert len(calls) == 2 * 3  # 2 epochs x 3 batches

    def test_epoch_hooks_called_per_epoch(self, tiny):
        train, _ = tiny
        t = Trainer(small_model(), train, epochs=3, batch_size=60)
        epochs = []
        t.epoch_hooks.append(lambda tr, e: epochs.append(e))
        t.fit()
        assert epochs == [0, 1, 2]


class TestSchedulerIntegration:
    def test_custom_scheduler_steps(self, tiny):
        train, _ = tiny
        model = small_model()
        t = Trainer(model, train, epochs=4, batch_size=60, lr=1.0)
        t.scheduler = StepLR(t.optimizer, step_size=2, gamma=0.1)
        t.fit()
        assert t.optimizer.lr == pytest.approx(0.01)

    def test_cosine_default_ends_near_zero(self, tiny):
        train, _ = tiny
        t = Trainer(small_model(), train, epochs=3, batch_size=60, lr=0.5)
        t.fit()
        assert t.optimizer.lr < 0.5


class TestCustomOptimizer:
    def test_adamw_injection(self, tiny):
        train, _ = tiny
        model = small_model()
        opt = AdamW(model.parameters(), lr=1e-3)
        t = Trainer(model, train, epochs=1, batch_size=60, optimizer=opt)
        assert t.optimizer is opt
        t.fit()
        assert len(t.history) == 1


class TestLabelSmoothing:
    def test_smoothing_changes_loss(self, tiny):
        train, _ = tiny
        seed_everything(51)
        t0 = Trainer(small_model(), train, epochs=1, batch_size=60, label_smoothing=0.0)
        seed_everything(51)
        t1 = Trainer(small_model(), train, epochs=1, batch_size=60, label_smoothing=0.2)
        t0.fit()
        t1.fit()
        assert t0.history[0]["loss"] != t1.history[0]["loss"]
