"""Knowledge-distillation trainer."""
import numpy as np
import pytest

from repro.data import make_dataset
from repro.models import build_model
from repro.trainer import Trainer
from repro.trainer.distill import DistillTrainer
from repro.utils import seed_everything


@pytest.fixture(scope="module")
def data():
    ds = make_dataset("synthetic-cifar10", noise=0.35, num_classes=4)
    return ds.splits(500, 200)


@pytest.fixture(scope="module")
def teacher(data):
    seed_everything(40)
    train, test = data
    t = build_model("resnet20", num_classes=4, width=8)
    Trainer(t, train, test, epochs=3, batch_size=50, lr=0.1).fit()
    return t


class TestDistill:
    def test_student_learns(self, data, teacher):
        seed_everything(41)
        train, test = data
        student = build_model("mobilenet-v1", num_classes=4, width_mult=0.5)
        dt = DistillTrainer(student, teacher, kd_weight=0.5, temperature=4.0,
                            train_set=train, test_set=test, epochs=3,
                            batch_size=50, lr=0.2)
        dt.fit()
        assert dt.evaluate() > 0.5

    def test_teacher_frozen(self, data, teacher):
        train, _ = data
        before = teacher.conv1.weight.data.copy()
        student = build_model("mobilenet-v1", num_classes=4, width_mult=0.25)
        dt = DistillTrainer(student, teacher, train_set=train, epochs=1,
                            batch_size=100, lr=0.1)
        dt.fit()
        np.testing.assert_array_equal(teacher.conv1.weight.data, before)

    def test_invalid_kd_weight(self, data, teacher):
        train, _ = data
        s = build_model("mobilenet-v1", num_classes=4, width_mult=0.25)
        with pytest.raises(ValueError):
            DistillTrainer(s, teacher, kd_weight=1.5, train_set=train, epochs=1)

    def test_pure_kd_mode_runs(self, data, teacher):
        """kd_weight=1: gradient comes only from the teacher's soft targets."""
        seed_everything(42)
        train, _ = data
        s = build_model("mobilenet-v1", num_classes=4, width_mult=0.25)
        dt = DistillTrainer(s, teacher, kd_weight=1.0, train_set=train,
                            epochs=1, batch_size=100, lr=0.1)
        dt.fit()
        assert len(dt.history) == 1
