"""Trainer hierarchy: supervised, QAT, PTQ, sparse, SSL, registry."""
import numpy as np
import pytest

from repro.core.qconfig import QConfig
from repro.core.qmodels import QResNet
from repro.data import make_dataset
from repro.models import build_model
from repro.trainer import (
    TRAINER,
    PTQTrainer,
    QATTrainer,
    SparseTrainer,
    SSLTrainer,
    Trainer,
    build_trainer,
    evaluate,
)
from repro.utils import seed_everything


@pytest.fixture(scope="module")
def data():
    ds = make_dataset("synthetic-cifar10", noise=0.35, num_classes=4)
    return ds.splits(600, 200)


class TestSupervised:
    def test_learns_above_chance(self, data):
        seed_everything(10)
        train, test = data
        model = build_model("resnet20", num_classes=4, width=8)
        t = Trainer(model, train, test, epochs=2, batch_size=50, lr=0.1)
        t.fit()
        assert t.evaluate() > 0.6  # chance = 0.25

    def test_history_recorded(self, data):
        seed_everything(10)
        train, test = data
        model = build_model("resnet20", num_classes=4, width=4)
        t = Trainer(model, train, epochs=2, batch_size=100)
        t.fit()
        assert len(t.history) == 2
        assert t.history[1]["loss"] < t.history[0]["loss"] + 0.5

    def test_progress_tracks(self, data):
        train, _ = data
        model = build_model("resnet20", num_classes=4, width=4)
        t = Trainer(model, train, epochs=1, batch_size=100)
        assert t.progress == 0.0
        t.fit()
        assert t.progress == pytest.approx(1.0)

    def test_evaluate_without_test_raises(self, data):
        train, _ = data
        t = Trainer(build_model("resnet20", num_classes=4, width=4), train, epochs=1)
        with pytest.raises(RuntimeError):
            t.evaluate()


class TestQAT:
    def test_converts_and_trains(self, data):
        seed_everything(11)
        train, test = data
        model = build_model("resnet20", num_classes=4, width=4)
        t = QATTrainer(model, qcfg=QConfig(wbit=4, abit=4, wq="sawb", aq="pact"),
                       train_set=train, test_set=test, epochs=3, batch_size=50, lr=0.1)
        assert isinstance(t.qmodel, QResNet)
        t.fit()
        assert t.evaluate() > 0.45

    def test_accepts_prequantized_model(self, data):
        from repro.core.qmodels import quantize_model
        train, _ = data
        qm = quantize_model(build_model("resnet20", num_classes=4, width=4), QConfig(8, 8))
        t = QATTrainer(qm, train_set=train, epochs=1, batch_size=100)
        assert t.qmodel is qm


class TestPTQ:
    def _float_model(self, data):
        seed_everything(12)
        train, test = data
        model = build_model("resnet20", num_classes=4, width=4)
        Trainer(model, train, epochs=2, batch_size=50, lr=0.1).fit()
        return model

    def test_calibration_only(self, data):
        train, test = data
        model = self._float_model(data)
        fp_acc = evaluate(model, test)
        t = PTQTrainer(model, train, qcfg=QConfig(8, 8), calib_batches=4, batch_size=50)
        qm = t.fit()
        assert evaluate(qm, test) > fp_acc - 0.1

    def test_adaround_reconstruction_improves_4bit(self, data):
        train, test = data
        model = self._float_model(data)
        nearest = PTQTrainer(model, train, qcfg=QConfig(4, 8, wq="minmax_weight"),
                             calib_batches=4, batch_size=50).fit()
        acc_nearest = evaluate(nearest, test)
        ada = PTQTrainer(model, train,
                         qcfg=QConfig(4, 8, wq="adaround"),
                         calib_batches=4, batch_size=50, reconstruct=True,
                         recon_iters=60).fit()
        acc_ada = evaluate(ada, test)
        assert acc_ada >= acc_nearest - 0.05  # AdaRound at least competitive

    def test_qdrop_drop_disabled_after_fit(self, data):
        from repro.core.quantizers.qdrop import QDropQuantizer
        train, _ = data
        model = self._float_model(data)
        qm = PTQTrainer(model, train, qcfg=QConfig(4, 4, aq="qdrop"),
                        calib_batches=2, batch_size=50).fit()
        assert all(not m.drop_enabled for m in qm.modules() if isinstance(m, QDropQuantizer))


class TestSparse:
    def test_reaches_sparsity(self, data):
        seed_everything(13)
        train, test = data
        model = build_model("resnet20", num_classes=4, width=4)
        t = SparseTrainer(model, pruner="magnitude", sparsity=0.6,
                          train_set=train, test_set=test, epochs=2, batch_size=50,
                          update_every=2, lr=0.1)
        t.fit()
        assert t.sparsity() == pytest.approx(0.6, abs=0.05)
        assert t.evaluate() > 0.4

    def test_nm_trainer(self, data):
        seed_everything(14)
        train, _ = data
        model = build_model("resnet20", num_classes=4, width=4)
        t = SparseTrainer(model, pruner="nm", pruner_kwargs=dict(n=2, m=4),
                          train_set=train, epochs=1, batch_size=100, update_every=2)
        t.fit()
        assert t.sparsity() == pytest.approx(0.5, abs=0.05)
        assert t.pruner.verify_pattern()

    def test_granet_trainer_runs(self, data):
        seed_everything(15)
        train, _ = data
        model = build_model("resnet20", num_classes=4, width=4)
        t = SparseTrainer(model, pruner="granet", sparsity=0.5,
                          train_set=train, epochs=1, batch_size=100, update_every=2)
        t.fit()
        assert t.sparsity() == pytest.approx(0.5, abs=0.05)


class TestSSL:
    def test_loss_decreases(self, data):
        seed_everything(16)
        train, _ = data
        enc = build_model("mobilenet-v1", num_classes=4, width_mult=0.25)
        t = SSLTrainer(enc, train, student_dim=enc.out_channels, embed_dim=16,
                       epochs=4, batch_size=100, lr=5e-3)
        t.fit()
        assert t.history[-1]["ssl_loss"] < t.history[0]["ssl_loss"]

    def test_xd_pair_mode(self, data):
        seed_everything(17)
        train, _ = data
        student = build_model("mobilenet-v1", num_classes=4, width_mult=0.25)
        teacher = build_model("resnet20", num_classes=4, width=4)
        t = SSLTrainer(student, train, student_dim=student.out_channels,
                       teacher=teacher, teacher_dim=16, embed_dim=16,
                       epochs=1, batch_size=50)
        out = t.fit()
        assert out is student


class TestRegistry:
    def test_all_names(self):
        assert set(TRAINER) == {"supervised", "qat", "profit", "ptq", "sparse", "ssl", "distill"}

    def test_unknown_raises(self):
        with pytest.raises(KeyError):
            build_trainer("rl")
