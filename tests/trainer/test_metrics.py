"""Metrics helpers."""
import numpy as np
import pytest

from repro.data import ArrayDataset
from repro.trainer.metrics import AverageMeter, accuracy, evaluate


class TestAverageMeter:
    def test_weighted_average(self):
        m = AverageMeter()
        m.update(1.0, n=1)
        m.update(2.0, n=3)
        assert m.avg == pytest.approx(1.75)

    def test_reset(self):
        m = AverageMeter()
        m.update(5.0)
        m.reset()
        assert m.avg == 0.0 and m.count == 0

    def test_empty_avg_is_zero(self):
        assert AverageMeter().avg == 0.0


class TestAccuracy:
    def test_perfect(self):
        logits = np.eye(4)
        assert accuracy(logits, np.arange(4)) == 1.0

    def test_half(self):
        logits = np.array([[1.0, 0.0], [1.0, 0.0]])
        assert accuracy(logits, np.array([0, 1])) == 0.5


class TestEvaluate:
    def test_evaluate_identity_model(self):
        class Argmaxer:
            def eval(self):
                pass

            def __call__(self, x):
                from repro.tensor import Tensor
                return Tensor(x.data.reshape(len(x.data), -1)[:, :3])

        images = np.zeros((10, 3, 1, 1), dtype=np.float32)
        labels = np.random.default_rng(0).integers(0, 3, 10)
        for i, lbl in enumerate(labels):
            images[i, lbl] = 1.0
        ds = ArrayDataset(images, labels)
        assert evaluate(Argmaxer(), ds, batch_size=4) == 1.0
