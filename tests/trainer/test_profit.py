"""PROFIT progressive-freezing trainer."""
import numpy as np
import pytest

from repro.core.qconfig import QConfig
from repro.core.qlayers import QConv2d
from repro.data import make_dataset
from repro.models import build_model
from repro.trainer.profit import PROFITTrainer
from repro.utils import seed_everything


@pytest.fixture(scope="module")
def data():
    ds = make_dataset("synthetic-cifar10", noise=0.35, num_classes=4)
    return ds.splits(400, 150)


class TestPROFIT:
    def _trainer(self, data, epochs=3, phases=3):
        seed_everything(20)
        train, test = data
        model = build_model("mobilenet-v1", num_classes=4, width_mult=0.5)
        return PROFITTrainer(model, qcfg=QConfig(4, 4, wq="sawb", aq="pact"),
                             phases=phases, train_set=train, test_set=test,
                             epochs=epochs, batch_size=50, lr=0.1)

    def test_freezes_layers_progressively(self, data):
        t = self._trainer(data)
        t.fit()
        assert len(t.frozen) > 0
        n_layers = sum(1 for m in t.qmodel.modules() if isinstance(m, QConv2d))
        assert len(t.frozen) < n_layers  # never freezes everything

    def test_frozen_layers_stop_updating(self, data):
        t = self._trainer(data, epochs=3, phases=3)
        t.fit()
        frozen_mods = [m for n, m in t.qmodel.named_modules() if n in t.frozen]
        assert frozen_mods
        for m in frozen_mods:
            assert not m.weight.requires_grad

    def test_instability_metric_ranks_all_layers(self, data):
        t = self._trainer(data)
        scores = t.layer_instability()
        n_layers = sum(1 for m in t.qmodel.modules() if isinstance(m, QConv2d))
        assert len(scores) == n_layers
        metrics = [s for s, _, _ in scores]
        assert metrics == sorted(metrics, reverse=True)
        assert all(s >= 0 for s in metrics)

    def test_invalid_phases_raises(self, data):
        train, test = data
        model = build_model("mobilenet-v1", num_classes=4, width_mult=0.5)
        with pytest.raises(ValueError):
            PROFITTrainer(model, qcfg=QConfig(4, 4), phases=0, train_set=train, epochs=2)

    def test_epochs_all_executed(self, data):
        t = self._trainer(data, epochs=4, phases=2)
        t.fit()
        assert len(t.history) == 4
