"""CLI workflow: train -> qat -> ptq -> export, end to end on tiny settings."""
import json
import os

import numpy as np
import pytest

from repro.cli import build_parser, main

TINY = ["--train-size", "300", "--test-size", "100", "--noise", "0.35"]


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_defaults(self):
        args = build_parser().parse_args(["qat"])
        assert args.model == "resnet20" and args.wbit == 8


class TestWorkflow:
    def test_train_and_ptq(self, tmp_path):
        ckpt = str(tmp_path / "fp32.npz")
        rc = main(["train", *TINY, "--epochs", "1", "--out", ckpt])
        assert rc == 0 and os.path.exists(ckpt)
        out = str(tmp_path / "ptq.npz")
        rc = main(["ptq", *TINY, "--ckpt", ckpt, "--calib-batches", "2", "--out", out])
        assert rc == 0 and os.path.exists(out)

    def test_qat_then_export(self, tmp_path):
        ckpt = str(tmp_path / "qat.npz")
        rc = main(["qat", *TINY, "--epochs", "1", "--wbit", "4", "--abit", "4",
                   "--wq", "sawb", "--aq", "pact", "--out", ckpt])
        assert rc == 0
        out_dir = str(tmp_path / "deploy")
        rc = main(["export", *TINY, "--ckpt", ckpt, "--wbit", "4", "--abit", "4",
                   "--wq", "sawb", "--aq", "pact", "--calib-batches", "2",
                   "--formats", "dec", "hex", "--out-dir", out_dir])
        assert rc == 0
        with open(os.path.join(out_dir, "manifest.json")) as f:
            manifest = json.load(f)
        assert manifest["tensors"]


class TestTelemetryCLI:
    def test_inspect_writes_full_report(self, tmp_path):
        out_dir = str(tmp_path / "tel")
        rc = main(["inspect", *TINY, "--epochs", "1", "--calib-batches", "2",
                   "--telemetry-out", out_dir])
        assert rc == 0
        for fname in ("manifest.json", "trace.json", "trace.txt", "events.jsonl",
                      "metrics.json", "saturation.json", "layer_report.json",
                      "report.txt"):
            assert os.path.exists(os.path.join(out_dir, fname)), fname
        trace = json.load(open(os.path.join(out_dir, "trace.json")))
        span_names = {ev["name"] for ev in trace["traceEvents"]}
        assert {"inspect", "calibrate_model", "T2C.fuse",
                "evaluate_integer"} <= span_names
        kinds = {json.loads(line)["kind"]
                 for line in open(os.path.join(out_dir, "events.jsonl"))}
        assert {"step", "epoch", "calibrate", "fuse", "integer_accuracy"} <= kinds
        report = json.load(open(os.path.join(out_dir, "layer_report.json")))
        assert report["layers"]  # per-layer probe rows
        assert report["saturation"]  # MulQuant clamp sites
        assert any(r["kind"] == "mulquant" for r in report["saturation"])
        assert 0.0 <= report["summary"]["integer_accuracy"] <= 1.0

    def test_inspect_leaves_telemetry_disabled(self, tmp_path):
        from repro import telemetry
        rc = main(["inspect", *TINY, "--epochs", "0", "--calib-batches", "2",
                   "--telemetry-out", str(tmp_path / "t")])
        assert rc == 0
        assert not telemetry.enabled()

    def test_export_with_telemetry_out(self, tmp_path):
        ckpt = str(tmp_path / "qat.npz")
        rc = main(["qat", *TINY, "--epochs", "1", "--out", ckpt])
        assert rc == 0
        out_dir = str(tmp_path / "deploy")
        tel_dir = str(tmp_path / "tel")
        rc = main(["export", *TINY, "--ckpt", ckpt, "--calib-batches", "2",
                   "--out-dir", out_dir, "--telemetry-out", tel_dir])
        assert rc == 0
        assert os.path.exists(os.path.join(out_dir, "manifest.json"))
        trace = json.load(open(os.path.join(tel_dir, "trace.json")))
        span_names = {ev["name"] for ev in trace["traceEvents"]}
        assert "export_model" in span_names
        sat = json.load(open(os.path.join(tel_dir, "saturation.json")))
        assert sat  # deploy-path evaluation recorded clamp sites


class TestIntegrityCLI:
    def _export_dir(self, tmp_path, rng=None):
        from repro.export.writer import export_state_dict

        rng = rng or np.random.default_rng(0)
        out = str(tmp_path / "art")
        export_state_dict(
            {"w": rng.integers(-8, 8, (3, 3)).astype(np.float32)},
            out, formats=("dec", "qint"))
        return out

    def test_verify_artifacts_clean_exits_zero(self, tmp_path, capsys):
        out = self._export_dir(tmp_path)
        assert main(["verify-artifacts", out]) == 0
        assert "OK" in capsys.readouterr().out

    def test_verify_artifacts_corrupt_exits_two_with_json(self, tmp_path,
                                                          capsys):
        out = self._export_dir(tmp_path)
        with open(os.path.join(out, "w.dec"), "ab") as f:
            f.write(b"junk")
        assert main(["verify-artifacts", out, "--json"]) == 2
        payload = json.loads(capsys.readouterr().out)
        assert payload["ok"] is False
        assert payload["findings"][0]["rule"].startswith("integrity.")

    def test_chaos_on_existing_dir_detects_everything(self, tmp_path,
                                                      capsys):
        out = self._export_dir(tmp_path)
        assert main(["chaos", "--dir", out, "--seed", "11", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["summary"]["injected"] == 4
        assert payload["summary"]["missed"] == 0
        # the attacked directory itself is untouched
        assert main(["verify-artifacts", out]) == 0


class TestCheckpoint:
    def test_roundtrip_with_metadata(self, tmp_path):
        from repro.models import build_model
        from repro.utils.checkpoint import load_checkpoint, save_checkpoint

        m1 = build_model("resnet20", width=8)
        path = str(tmp_path / "m.npz")
        save_checkpoint(m1, path, accuracy=0.93, epoch=5)
        m2 = build_model("resnet20", width=8)
        meta = load_checkpoint(m2, path)
        assert meta["accuracy"] == pytest.approx(0.93)
        assert meta["epoch"] == 5
        np.testing.assert_array_equal(m1.conv1.weight.data, m2.conv1.weight.data)
