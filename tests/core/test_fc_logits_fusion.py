"""Classifier-head fusion: argmax preservation under scale normalization."""
import numpy as np
import pytest

from repro.core.fusion import FuserBase
from repro.core.qlayers import QLinear
from repro.core.qmodels import QLinearUnit
from repro.core.quantizers import MinMaxChannelQuantizer, MinMaxQuantizer
from repro.tensor import Tensor, no_grad


@pytest.fixture
def fused_head(rng):
    lin = QLinear(32, 10, bias=True,
                  wq=MinMaxChannelQuantizer(nbit=8), aq=MinMaxQuantizer(nbit=8, unsigned=True))
    lin.weight.data = (rng.standard_normal((10, 32)) * 0.2).astype(np.float32)
    lin.bias.data = (rng.standard_normal(10) * 0.5).astype(np.float32)
    unit = QLinearUnit(lin)
    # calibrate the input quantizer on representative pooled features
    feats = np.abs(rng.standard_normal((256, 32))).astype(np.float32)
    lin.aq.observe = True
    with no_grad():
        lin.aq(Tensor(feats))
    lin.aq.finalize_calibration()

    fuser = FuserBase.__new__(FuserBase)
    from repro.core.fixed_point import FixedPointFormat
    fuser.fmt, fuser.mode, fuser.float_scale, fuser.headroom = FixedPointFormat(4, 12), "channel", False, 4
    s_max = fuser.fuse_fc_logits(unit)
    unit.set_deploy(True)
    return unit, feats, s_max


class TestFCLogitsFusion:
    def test_argmax_preserved(self, fused_head):
        unit, feats, _ = fused_head
        lin = unit.linear
        with no_grad():
            x_int = np.clip(np.round(feats / float(lin.aq.scale.data)), 0, lin.aq.qub)
            int_logits = unit(Tensor(x_int.astype(np.float32))).data
            # float reference
            ref = feats @ lin.weight.data.T + lin.bias.data
        # random (margin-free) logits flip easily under 8-bit noise; trained
        # models with real margins are covered by the integration tests
        agree = (int_logits.argmax(1) == ref.argmax(1)).mean()
        assert agree > 0.8

    def test_logits_recoverable_via_smax(self, fused_head):
        unit, feats, s_max = fused_head
        lin = unit.linear
        with no_grad():
            x_int = np.clip(np.round(feats / float(lin.aq.scale.data)), 0, lin.aq.qub)
            int_logits = unit(Tensor(x_int.astype(np.float32))).data
            ref = feats @ lin.weight.data.T + lin.bias.data
        recovered = int_logits * s_max
        # correlation per sample must be near-perfect
        corr = np.mean([np.corrcoef(recovered[i], ref[i])[0, 1] for i in range(64)])
        assert corr > 0.98

    def test_scale_normalized_to_unit_max(self, fused_head):
        unit, _, _ = fused_head
        eff = np.abs(unit.mq.effective_scale)
        assert eff.max() <= 1.0 + 1e-3
        assert eff.max() > 0.4  # normalization keeps precision
