"""_QBase dual-path semantics."""
import numpy as np
import pytest

from repro.core.qbase import IdentityQuantizer, QuantSpec, _QBase
from repro.tensor import Tensor


class TestQuantSpec:
    @pytest.mark.parametrize("nbit,unsigned,qlb,qub", [
        (8, False, -128, 127), (8, True, 0, 255),
        (4, False, -8, 7), (4, True, 0, 15),
        (2, False, -2, 1), (2, True, 0, 3),
    ])
    def test_ranges(self, nbit, unsigned, qlb, qub):
        s = QuantSpec(nbit, unsigned)
        assert (s.qlb, s.qub) == (qlb, qub)
        assert s.levels == 2 ** nbit


class TestDualPath:
    def _q(self, nbit=4, unsigned=False, scale=0.5):
        q = _QBase(nbit=nbit, unsigned=unsigned)
        q.set_scale(scale)
        return q

    def test_train_path_returns_dequantized(self):
        q = self._q()
        x = Tensor(np.array([0.3, 1.0, -0.74], dtype=np.float32))
        out = q(x)
        np.testing.assert_allclose(out.data, [0.5, 1.0, -0.5])  # on the grid

    def test_deploy_path_returns_integers(self):
        q = self._q()
        q.deploy = True
        out = q(Tensor(np.array([0.3, 1.0, -0.74], dtype=np.float32)))
        np.testing.assert_allclose(out.data, [1, 2, -1])

    def test_paths_consistent(self, rng):
        q = self._q(nbit=8, scale=0.02)
        x = Tensor(rng.standard_normal(100).astype(np.float32))
        fake = q.trainFunc(x).data
        ints = q.evalFunc(x).data
        np.testing.assert_allclose(fake, ints * 0.02, rtol=1e-5)

    def test_clamping_at_grid_bounds(self):
        q = self._q(nbit=2, scale=1.0)  # grid [-2, 1]
        out = q.q(Tensor(np.array([-10.0, 10.0], dtype=np.float32)))
        np.testing.assert_allclose(out.data, [-2, 1])

    def test_unsigned_clamps_negative_to_zero(self):
        q = self._q(nbit=4, unsigned=True, scale=1.0)
        out = q.q(Tensor(np.array([-3.0, 20.0], dtype=np.float32)))
        np.testing.assert_allclose(out.data, [0, 15])

    def test_ste_gradient_flows_through_train_path(self):
        q = self._q(nbit=8, scale=0.1)
        x = Tensor(np.array([0.55], dtype=np.float32), requires_grad=True)
        q(x).backward()
        np.testing.assert_allclose(x.grad, [1.0])

    def test_deploy_path_produces_no_graph(self):
        q = self._q()
        q.deploy = True
        x = Tensor(np.array([1.0], dtype=np.float32), requires_grad=True)
        out = q(x)
        assert not out.requires_grad

    def test_zero_point_shifts(self):
        q = self._q(nbit=4, unsigned=True, scale=1.0)
        q.set_zero_point(3.0)
        out = q.q(Tensor(np.array([0.0], dtype=np.float32)))
        np.testing.assert_allclose(out.data, [3])
        back = q.dq(out)
        np.testing.assert_allclose(back.data, [0.0])

    def test_set_scale_floors_tiny_values(self):
        q = self._q()
        q.set_scale(0.0)
        assert float(q.scale.data) > 0

    def test_scale_is_a_buffer(self):
        q = self._q()
        assert "scale" in dict(q.named_buffers())
        assert "zero_point" in dict(q.named_buffers())


class TestIdentity:
    def test_identity_passthrough_both_paths(self, rng):
        q = IdentityQuantizer()
        x = Tensor(rng.standard_normal(10).astype(np.float32))
        np.testing.assert_array_equal(q(x).data, x.data)
        q.deploy = True
        np.testing.assert_array_equal(q(x).data, x.data)
