"""Integer-only ViT: quantized attention, LUT non-linearities, LN modes."""
import numpy as np
import pytest

from repro.core.qconfig import QConfig
from repro.core.qmodels import quantize_model
from repro.core.qvit import QAttention, QVisionTransformer, ViTFuser
from repro.core.t2c import T2C, calibrate_model
from repro.models import build_model
from repro.tensor import Tensor, no_grad


@pytest.fixture(scope="module")
def vit_model(tiny_data):
    from repro.utils import seed_everything
    seed_everything(3)
    train, _ = tiny_data
    m = build_model("vit-7", num_classes=10, embed_dim=32)
    m.train()
    for i in range(3):
        m(Tensor(train.images[i * 32:(i + 1) * 32]))
    m.eval()
    return m


@pytest.fixture
def calibrated_qvit(vit_model, tiny_data):
    train, _ = tiny_data
    qm = quantize_model(vit_model, QConfig(wbit=8, abit=8))
    calibrate_model(qm, [train.images[i * 64:(i + 1) * 64] for i in range(3)])
    qm.eval()
    return qm


class TestConversion:
    def test_structure(self, calibrated_qvit):
        assert isinstance(calibrated_qvit, QVisionTransformer)
        assert len(list(calibrated_qvit.blocks)) == 7
        assert isinstance(calibrated_qvit.blocks[0].attn, QAttention)

    def test_weights_copied(self, vit_model, tiny_data):
        qm = quantize_model(vit_model, QConfig(8, 8))
        np.testing.assert_array_equal(qm.head.linear.weight.data, vit_model.head.weight.data)
        np.testing.assert_array_equal(qm.pos_embed.data, vit_model.pos_embed.data)

    def test_train_path_close_to_float(self, vit_model, calibrated_qvit, tiny_data):
        _, test = tiny_data
        x = Tensor(test.images[:16])
        with no_grad():
            f = vit_model(x).data
            q = calibrated_qvit(x).data
        corr = np.mean([np.corrcoef(f[i], q[i])[0, 1] for i in range(16)])
        assert corr > 0.98


class TestIntegerPath:
    def test_fused_outputs_integral(self, calibrated_qvit, tiny_data):
        _, test = tiny_data
        T2C(calibrated_qvit).fuse()
        with no_grad():
            out = calibrated_qvit(Tensor(test.images[:8])).data
        np.testing.assert_array_equal(out, np.round(out))

    def test_integer_matches_fakequant(self, calibrated_qvit, tiny_data):
        _, test = tiny_data
        x = Tensor(test.images[:48])
        with no_grad():
            fq = calibrated_qvit(x).data
        T2C(calibrated_qvit).fuse()
        with no_grad():
            ii = calibrated_qvit(x).data
        corr = np.mean([np.corrcoef(fq[i], ii[i])[0, 1] for i in range(len(fq))])
        assert corr > 0.9

    def test_all_luts_wired(self, calibrated_qvit):
        T2C(calibrated_qvit).fuse()
        for blk in calibrated_qvit.blocks:
            assert blk.attn.lut_softmax is not None
            assert blk.mlp.lut_gelu is not None
            assert blk.mq_id1 is not None and blk.mq_id2 is not None

    def test_intermediate_token_streams_are_integers(self, calibrated_qvit, tiny_data):
        _, test = tiny_data
        T2C(calibrated_qvit).fuse()
        blk = calibrated_qvit.blocks[0]
        x = Tensor(test.images[:4])
        with no_grad():
            xi = calibrated_qvit.input_q(x)
            tok = calibrated_qvit._tokens(xi)
        np.testing.assert_array_equal(tok.data, np.round(tok.data))


class TestLayerNormModes:
    def test_running_stats_mode_fully_integer(self, tiny_data):
        from repro.utils import seed_everything
        seed_everything(4)
        train, test = tiny_data
        m = build_model("vit-7", num_classes=10, embed_dim=32, ln_running_stats=True)
        m.train()
        for i in range(4):
            m(Tensor(train.images[i * 32:(i + 1) * 32]))
        m.eval()
        qm = quantize_model(m, QConfig(8, 8))
        calibrate_model(qm, [train.images[i * 64:(i + 1) * 64] for i in range(3)])
        T2C(qm).fuse()
        # running-stats LN is replaced by a per-channel MulQuant
        assert qm.blocks[0].ln1.mq is not None
        with no_grad():
            out = qm(Tensor(test.images[:8])).data
        np.testing.assert_array_equal(out, np.round(out))

    def test_instant_mode_uses_reference_path(self, calibrated_qvit):
        T2C(calibrated_qvit).fuse()
        ln = calibrated_qvit.blocks[0].ln1
        assert ln.mq is None
        assert ln.in_scale is not None and ln.out_scale is not None


class TestViTRepack:
    def test_repack_matches_fused_bitwise(self, calibrated_qvit, tiny_data):
        _, test = tiny_data
        t2c = T2C(calibrated_qvit)
        t2c.fuse()
        qnn = t2c.nn2chip()
        x = Tensor(test.images[:16])
        with no_grad():
            np.testing.assert_array_equal(calibrated_qvit(x).data, qnn(x).data)

    def test_repack_running_stats_vit_integer_only(self, tiny_data):
        """With running-stat LN the re-packed ViT holds integers only (plus
        the single input scale)."""
        from repro.core.vanilla import integer_state_report
        from repro.utils import seed_everything

        seed_everything(5)
        train, _ = tiny_data
        m = build_model("vit-7", num_classes=10, embed_dim=32, ln_running_stats=True)
        m.train()
        for i in range(3):
            m(Tensor(train.images[i * 32:(i + 1) * 32]))
        m.eval()
        qm = quantize_model(m, QConfig(8, 8))
        calibrate_model(qm, [train.images[i * 64:(i + 1) * 64] for i in range(3)])
        qnn = T2C(qm).nn2chip()
        report = integer_state_report(qnn)
        assert report["names_non_integer"] == ["input_q.scale"]

    def test_repack_drops_float_cls_pos(self, calibrated_qvit):
        t2c = T2C(calibrated_qvit)
        t2c.fuse()
        qnn = t2c.nn2chip()
        names = dict(qnn.named_parameters())
        assert "cls_token" not in names and "pos_embed" not in names
        buffers = dict(qnn.named_buffers())
        assert "cls_int" in buffers and "pos_int" in buffers
