"""DeploySpec / deploy() API and the legacy-kwarg deprecation shims."""
from __future__ import annotations

import argparse
import os
import tempfile
import warnings

import numpy as np
import pytest

from repro import telemetry
from repro.core import DeploySpec, T2C, deploy
from repro.core.fixed_point import FixedPointFormat
from repro.core.qconfig import QConfig
from repro.core.qmodels import quantize_model
from repro.core.t2c import calibrate_model
from repro.models import build_model


def _calibrated(seed=0, batches=1):
    rng = np.random.default_rng(seed)
    qm = quantize_model(build_model("resnet20", num_classes=10, width=8),
                        QConfig(8, 8))
    calibrate_model(qm, [rng.standard_normal((4, 3, 32, 32)).astype(np.float32)
                         for _ in range(batches)])
    return qm


class TestDeploySpec:
    def test_defaults(self):
        spec = DeploySpec()
        assert spec.fusion == "channel" and not spec.float_scale
        assert spec.fixed_point == FixedPointFormat(4, 12)
        assert spec.export_dir is None and spec.formats == ("dec",)
        assert spec.runtime == "auto" and spec.accum_bits == 32

    def test_validation(self):
        with pytest.raises(ValueError):
            DeploySpec(fusion="magic")
        with pytest.raises(ValueError):
            DeploySpec(runtime="diagonal")

    def test_from_args_maps_cli_flags(self):
        args = argparse.Namespace(fusion="prefuse", float_scale=True,
                                  accum_bits=24, out_dir="deploy/",
                                  formats=["hex", "qint"], runtime="batch")
        spec = DeploySpec.from_args(args)
        assert spec.fusion == "prefuse" and spec.float_scale
        assert spec.accum_bits == 24 and spec.export_dir == "deploy/"
        assert spec.formats == ("hex", "qint")
        # a legacy `--runtime batch` folds into the compile spec's layout
        # instead of surviving as a deprecated runtime value
        assert spec.runtime == "auto" and spec.compile.layout == "batch"

    def test_from_args_maps_compile_flags(self):
        args = argparse.Namespace(fusion_level="requant", threads=2,
                                  tile_kc=256, tile_oc=4, im2col_cache=False)
        spec = DeploySpec.from_args(args)
        assert spec.compile.fusion == "requant"
        assert spec.compile.threads == 2 and spec.compile.tile_kc == 256
        assert spec.compile.tile_oc == 4 and not spec.compile.im2col_cache

    def test_from_args_defaults_for_missing_attrs(self):
        spec = DeploySpec.from_args(argparse.Namespace())
        assert spec == DeploySpec()

    def test_evolve_and_json(self):
        spec = DeploySpec().evolve(fusion="prefuse")
        assert spec.fusion == "prefuse"
        js = spec.to_json()
        assert js["fusion"] == "prefuse" and js["formats"] == ["dec"]


class TestDeploy:
    def test_one_call_deploy_compiles_exact_plan(self):
        qm = _calibrated()
        d = deploy(qm, DeploySpec(runtime="batch"))
        x = np.random.default_rng(1).standard_normal((2, 3, 32, 32)).astype(np.float32)
        from repro.tensor import no_grad
        from repro.tensor.tensor import Tensor

        with no_grad():
            ref = d.qnn(Tensor(x)).data
        assert np.array_equal(ref, d.plan(x))
        assert np.array_equal(ref, d(x))

    def test_lint_and_export_through_spec(self):
        qm = _calibrated(seed=2)
        with tempfile.TemporaryDirectory() as td:
            d = deploy(qm, DeploySpec(lint=True, export_dir=td,
                                      formats=("dec",), runtime="none"))
            assert d.plan is None
            assert d.lint_report is not None and d.lint_report.ok
            assert d.manifest is not None
            assert os.path.exists(os.path.join(td, "manifest.json"))

    def test_overrides(self):
        qm = _calibrated(seed=3)
        d = deploy(qm, runtime="none")
        assert d.plan is None and d.spec.runtime == "none"

    def test_export_is_verified_by_default(self):
        qm = _calibrated(seed=9)
        with tempfile.TemporaryDirectory() as td:
            out = os.path.join(td, "art")
            d = deploy(qm, DeploySpec(export_dir=out, formats=("dec", "qint"),
                                      runtime="none"))
            assert d.spec.verify_artifacts is True
            assert d.integrity is not None and d.integrity.ok
            assert d.integrity.tensors_checked == len(d.manifest["tensors"])

    def test_verify_opt_out_skips_audit(self):
        qm = _calibrated(seed=10)
        with tempfile.TemporaryDirectory() as td:
            out = os.path.join(td, "art")
            d = deploy(qm, DeploySpec(export_dir=out, formats=("dec",),
                                      runtime="none", verify_artifacts=False))
            assert d.integrity is None

    def test_from_args_maps_verify_flag(self):
        spec = DeploySpec.from_args(argparse.Namespace(verify_artifacts=False))
        assert spec.verify_artifacts is False
        assert DeploySpec.from_args(argparse.Namespace()).verify_artifacts


class TestDeprecationShims:
    def test_t2c_legacy_kwargs_warn_and_work(self):
        qm = _calibrated(seed=4)
        with warnings.catch_warnings(record=True) as w:
            warnings.simplefilter("always")
            t2c = T2C(qm, mode="prefuse", float_scale=False,
                      fmt=FixedPointFormat(4, 12), lint_after_fuse=False)
        msgs = [str(x.message) for x in w
                if issubclass(x.category, DeprecationWarning)]
        assert any("DeploySpec.fusion" in m for m in msgs)
        assert any("DeploySpec.float_scale" in m for m in msgs)
        assert any("DeploySpec.fixed_point" in m for m in msgs)
        assert any("DeploySpec.lint" in m for m in msgs)
        assert t2c.spec.fusion == "prefuse" and t2c.mode == "prefuse"

    def test_t2c_spec_form_is_silent(self):
        qm = _calibrated(seed=5)
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            T2C(qm, spec=DeploySpec(fusion="prefuse")).nn2chip()

    def test_nn2chip_legacy_kwargs_warn(self):
        qm = _calibrated(seed=6)
        t2c = T2C(qm)
        with tempfile.TemporaryDirectory() as td:
            with warnings.catch_warnings(record=True) as w:
                warnings.simplefilter("always")
                t2c.nn2chip(save_model=True, export_dir=td, formats=("dec",))
            msgs = [str(x.message) for x in w
                    if issubclass(x.category, DeprecationWarning)]
            assert any("T2C.nn2chip(save_model=...)" in m for m in msgs)
            assert any("DeploySpec.export_dir" in m for m in msgs)
            assert any("DeploySpec.formats" in m for m in msgs)
            assert os.path.exists(os.path.join(td, "manifest.json"))

    def test_export_model_legacy_kwargs_warn(self):
        qm = _calibrated(seed=7)
        qnn = T2C(qm).nn2chip()
        from repro.export.writer import export_model

        with tempfile.TemporaryDirectory() as td:
            with warnings.catch_warnings(record=True) as w:
                warnings.simplefilter("always")
                export_model(qnn, td, formats=("dec",))
            msgs = [str(x.message) for x in w
                    if issubclass(x.category, DeprecationWarning)]
            assert any("DeploySpec.export_dir" in m for m in msgs)
            with warnings.catch_warnings():
                warnings.simplefilter("error", DeprecationWarning)
                export_model(qnn, spec=DeploySpec(export_dir=td))


class TestStaleCalibration:
    def test_uncalibrated_quantizer_is_surfaced(self):
        from repro.lint import lint_model
        from repro.telemetry.report import EventLog, set_event_sink

        qm = quantize_model(build_model("resnet20", num_classes=10, width=8),
                            QConfig(8, 8))
        log = EventLog()
        prev = set_event_sink(log)
        telemetry.enable()
        try:
            calibrate_model(qm, [])  # zero batches: every observer is stale
        finally:
            telemetry.disable()
            set_event_sink(prev)
        stale_events = [e for e in log.events
                        if e["kind"] == "calibration_stale"]
        assert stale_events and stale_events[0]["severity"] == "WARNING"
        assert stale_events[0]["count"] == len(qm._stale_calibration) > 0

        T2C(qm).fuse()
        rep = lint_model(qm)
        stale = [f for f in rep.findings
                 if f.rule == "contract.stale-calibration"]
        assert stale, "lint must surface never-calibrated quantizers"
        assert all(f.severity == "WARN" for f in stale)
        # fusion renames some modules, but the surviving quantizer paths
        # still appear among the recorded stale names
        assert {f.where for f in stale} & set(qm._stale_calibration)

    def test_calibrated_model_has_no_stale_findings(self):
        from repro.lint import lint_model

        qm = _calibrated(seed=8)
        assert qm._stale_calibration == []
        T2C(qm).fuse()
        rep = lint_model(qm)
        assert not [f for f in rep.findings
                    if f.rule == "contract.stale-calibration"]
