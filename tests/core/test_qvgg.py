"""QVGG: the reference architecture extension (docs/customization.md §4)."""
import numpy as np
import pytest

from repro.core.qconfig import QConfig
from repro.core.qmodels import quantize_model
from repro.core.qvgg import QVGG, VGGFuser
from repro.core.t2c import T2C, calibrate_model
from repro.models import build_model
from repro.tensor import Tensor, no_grad


@pytest.fixture(scope="module")
def vgg_with_stats(tiny_data):
    """Briefly trained VGG (untrained nets have margin-free logits that make
    integer-vs-fakequant correlation meaningless)."""
    from repro.optim import SGD
    from repro.tensor import functional as F
    from repro.utils import seed_everything

    seed_everything(60)
    train, _ = tiny_data
    m = build_model("vgg8", num_classes=10, width_mult=0.5)
    opt = SGD(m.parameters(), lr=0.1, momentum=0.9, weight_decay=5e-4)
    m.train()
    for epoch in range(5):
        for i in range(len(train.images) // 64):
            x = train.images[i * 64:(i + 1) * 64]
            y = train.labels[i * 64:(i + 1) * 64]
            opt.zero_grad()
            F.cross_entropy(m(Tensor(x)), y).backward()
            opt.step()
    m.eval()
    return m


@pytest.fixture
def calibrated_qvgg(vgg_with_stats, tiny_data):
    train, _ = tiny_data
    qm = quantize_model(vgg_with_stats, QConfig(8, 8))
    calibrate_model(qm, [train.images[i * 64:(i + 1) * 64] for i in range(4)])
    qm.eval()
    return qm


class TestQVGG:
    def test_conversion_structure(self, calibrated_qvgg):
        assert isinstance(calibrated_qvgg, QVGG)
        assert len(calibrated_qvgg.units()) == 6  # VGG8: six conv triples

    def test_pools_preserved(self, calibrated_qvgg):
        from repro import nn
        pools = [s for s in calibrated_qvgg.chain if isinstance(s, nn.MaxPool2d)]
        assert len(pools) == 3

    def test_integer_equivalence(self, calibrated_qvgg, tiny_data):
        _, test = tiny_data
        x = Tensor(test.images[:48])
        with no_grad():
            fq = calibrated_qvgg(x).data
        t2c = T2C(calibrated_qvgg)
        assert isinstance(t2c._fuser, VGGFuser)
        t2c.fuse()
        with no_grad():
            ii = calibrated_qvgg(x).data
        corr = np.mean([np.corrcoef(fq[i], ii[i])[0, 1] for i in range(48)])
        assert corr > 0.99

    def test_maxpool_exact_on_integers(self, calibrated_qvgg, tiny_data):
        """Integer max-pool commutes with the shared domain: outputs integral."""
        _, test = tiny_data
        T2C(calibrated_qvgg).fuse()
        with no_grad():
            out = calibrated_qvgg(Tensor(test.images[:8])).data
        np.testing.assert_array_equal(out, np.round(out))

    def test_repack(self, calibrated_qvgg, tiny_data):
        _, test = tiny_data
        t2c = T2C(calibrated_qvgg)
        t2c.fuse()
        qnn = t2c.nn2chip()
        x = Tensor(test.images[:16])
        with no_grad():
            np.testing.assert_array_equal(calibrated_qvgg(x).data, qnn(x).data)
