"""Asymmetric (zero-point) quantizer."""
import numpy as np
import pytest

from repro.core.quantizers import AsymMinMaxQuantizer
from repro.tensor import Tensor, no_grad


class TestAsymMinMax:
    def _calibrated(self, data):
        q = AsymMinMaxQuantizer(nbit=8)
        q.observe = True
        q(Tensor(data))
        q.finalize_calibration()
        return q

    def test_zero_point_nonzero_for_shifted_data(self, rng):
        data = rng.random(1000).astype(np.float32) * 2 - 1.5  # range [-1.5, 0.5]
        q = self._calibrated(data)
        assert float(q.zero_point.data) > 0

    def test_grid_covers_asymmetric_range(self, rng):
        data = (rng.random(2000) * 3 - 1).astype(np.float32)  # [-1, 2]
        q = self._calibrated(data)
        with no_grad():
            out = q.trainFunc(Tensor(data)).data
        # reconstruction error bounded by half a step everywhere (not just the
        # positive side, which is what a symmetric-unsigned grid would give)
        assert np.abs(out - data).max() <= float(q.scale.data) / 2 + 1e-5

    def test_beats_unsigned_symmetric_on_negative_data(self, rng):
        from repro.core.quantizers import MinMaxQuantizer
        data = (rng.random(2000) * 2 - 1).astype(np.float32)  # [-1, 1]
        asym = self._calibrated(data)
        sym = MinMaxQuantizer(nbit=8, unsigned=True)
        sym.observe = True
        sym(Tensor(data))
        sym.finalize_calibration()
        with no_grad():
            e_asym = np.abs(asym.trainFunc(Tensor(data)).data - data).mean()
            e_sym = np.abs(sym.trainFunc(Tensor(data)).data - data).mean()
        assert e_asym < e_sym  # unsigned grid clamps all negatives

    def test_integers_in_unsigned_grid(self, rng):
        data = (rng.random(500) * 2 - 1).astype(np.float32)
        q = self._calibrated(data)
        with no_grad():
            ints = q.q(Tensor(data)).data
        assert ints.min() >= 0 and ints.max() <= 255

    def test_dq_inverts_q_on_grid(self, rng):
        data = (rng.random(100) * 4 - 2).astype(np.float32)
        q = self._calibrated(data)
        with no_grad():
            ints = q.q(Tensor(data))
            back = q.dq(ints).data
            again = q.q(Tensor(back)).data
        np.testing.assert_allclose(ints.data, again)

    def test_online_self_calibration(self, rng):
        q = AsymMinMaxQuantizer(nbit=8)
        q.train()
        q(Tensor((rng.random(100) - 0.7).astype(np.float32)))
        assert float(q.scale.data) != 1.0
