"""Q-model structures: conversion fidelity, shared quantizers, deploy flags."""
import numpy as np
import pytest

from repro.core.qbase import _QBase
from repro.core.qconfig import QConfig
from repro.core.qlayers import QConv2d
from repro.core.qmodels import (
    QBasicBlock,
    QBottleneck,
    QConvBNReLU,
    QMobileNetV1,
    QResNet,
    quantize_model,
)
from repro.models import build_model
from repro.tensor import Tensor, no_grad


class TestQResNetConversion:
    def test_block_types(self, resnet20_with_stats):
        qm = quantize_model(resnet20_with_stats, QConfig(8, 8))
        assert isinstance(qm, QResNet)
        assert all(isinstance(b, QBasicBlock) for b in qm.blocks)

    def test_bottleneck_conversion(self):
        from repro.utils import seed_everything
        seed_everything(0)
        m = build_model("resnet50", num_classes=10, width=8)
        qm = quantize_model(m, QConfig(8, 8))
        assert all(isinstance(b, QBottleneck) for b in qm.blocks)
        assert len(list(qm.blocks)) == 16

    def test_weights_shared_values(self, resnet20_with_stats):
        qm = quantize_model(resnet20_with_stats, QConfig(8, 8))
        np.testing.assert_array_equal(qm.stem.conv.weight.data,
                                      resnet20_with_stats.conv1.weight.data)

    def test_block_input_quantizer_shared_with_downsample(self, resnet20_with_stats):
        qm = quantize_model(resnet20_with_stats, QConfig(8, 8))
        blocks_with_down = [b for b in qm.blocks if b.down is not None]
        assert blocks_with_down, "expected projection shortcuts"
        for b in blocks_with_down:
            assert b.unit1.conv.aq is b.down.conv.aq

    def test_train_path_matches_float_at_high_precision(self, resnet20_with_stats, tiny_data):
        _, test = tiny_data
        qm = quantize_model(resnet20_with_stats, QConfig(8, 8))
        # calibrate so scales are sensible
        from repro.core.t2c import calibrate_model
        train, _ = tiny_data
        calibrate_model(qm, [train.images[:64]])
        qm.eval()
        x = Tensor(test.images[:16])
        with no_grad():
            f = resnet20_with_stats(x).data
            q = qm(x).data
        corr = np.mean([np.corrcoef(f[i], q[i])[0, 1] for i in range(16)])
        assert corr > 0.99

    def test_set_deploy_reaches_every_quantizer(self, resnet20_with_stats):
        qm = quantize_model(resnet20_with_stats, QConfig(8, 8))
        qm.set_deploy(True)
        convs = [m for m in qm.modules() if isinstance(m, QConv2d)]
        assert all(c.deploy for c in convs)
        qm.set_deploy(False)
        assert all(not c.deploy for c in convs)

    def test_deploy_without_fusion_raises(self, resnet20_with_stats, tiny_data):
        _, test = tiny_data
        qm = quantize_model(resnet20_with_stats, QConfig(8, 8))
        qm.set_deploy(True)
        with pytest.raises(RuntimeError):
            qm(Tensor(test.images[:2]))


class TestQMobileNetConversion:
    def test_unit_chain_length(self, mobilenet_with_stats):
        qm = quantize_model(mobilenet_with_stats, QConfig(8, 8))
        assert isinstance(qm, QMobileNetV1)
        # stem + 2 per separable block
        n_blocks = len(list(mobilenet_with_stats.blocks))
        assert len(list(qm.units)) == 1 + 2 * n_blocks

    def test_depthwise_preserved(self, mobilenet_with_stats):
        qm = quantize_model(mobilenet_with_stats, QConfig(8, 8))
        dw_units = [u for u in qm.units if u.conv.groups > 1]
        assert dw_units
        for u in dw_units:
            assert u.conv.groups == u.conv.in_channels


class TestQConfig:
    def test_quantizer_bitwidths(self):
        cfg = QConfig(wbit=3, abit=5, wq="minmax_weight", aq="minmax")
        assert cfg.make_wq().nbit == 3
        assert cfg.make_aq().nbit == 5

    def test_aq_signed_flag(self):
        cfg = QConfig(aq="minmax")
        assert cfg.make_aq(signed=False).unsigned
        assert not cfg.make_aq(signed=True).unsigned

    def test_fresh_instances(self):
        cfg = QConfig()
        assert cfg.make_wq() is not cfg.make_wq()

    def test_input_quantizer_signed(self):
        assert not QConfig(input_bit=8).make_input_q().unsigned

    def test_unknown_model_raises(self):
        from repro import nn
        with pytest.raises(TypeError):
            quantize_model(nn.Linear(2, 2), QConfig())


class TestUnitForward:
    def test_unit_without_bn(self, rng):
        from repro import nn
        conv = nn.Conv2d(3, 4, 3, padding=1, bias=True)
        from repro.core.quantizers import MinMaxQuantizer, MinMaxWeightQuantizer
        unit = QConvBNReLU(QConv2d.from_float(conv, MinMaxWeightQuantizer(nbit=8),
                                              MinMaxQuantizer(nbit=8)), bn=None, relu=False)
        unit.train()
        x = Tensor(rng.standard_normal((1, 3, 8, 8)).astype(np.float32))
        assert unit(x).shape == (1, 4, 8, 8)
        assert not unit.has_bn

    def test_relu_flag_controls_clipping(self, rng):
        from repro import nn
        from repro.core.quantizers import IdentityQuantizer
        conv = nn.Conv2d(2, 2, 1, bias=False)
        conv.weight.data = np.eye(2, dtype=np.float32).reshape(2, 2, 1, 1)
        unit_relu = QConvBNReLU(QConv2d.from_float(conv, IdentityQuantizer(), IdentityQuantizer()),
                                bn=None, relu=True)
        unit_lin = QConvBNReLU(QConv2d.from_float(conv, IdentityQuantizer(), IdentityQuantizer()),
                               bn=None, relu=False)
        x = Tensor(np.full((1, 2, 2, 2), -1.0, dtype=np.float32))
        assert unit_relu(x).data.min() == 0.0
        assert unit_lin(x).data.min() == -1.0
