"""T2C top-level converter and the vanilla re-pack."""
import os

import numpy as np
import pytest

from repro import nn
from repro.core.qconfig import QConfig
from repro.core.qlayers import QConv2d, QLinear
from repro.core.qmodels import quantize_model
from repro.core.t2c import T2C, calibrate_model
from repro.core.vanilla import InputQuant, integer_state_report, repack
from repro.tensor import Tensor, no_grad


@pytest.fixture
def fused_qm(resnet20_with_stats, tiny_data):
    train, _ = tiny_data
    qm = quantize_model(resnet20_with_stats, QConfig(8, 8))
    calibrate_model(qm, [train.images[i * 64:(i + 1) * 64] for i in range(4)])
    t2c = T2C(qm)
    t2c.fuse()
    return qm, t2c


class TestCalibration:
    def test_sets_activation_scales(self, resnet20_with_stats, tiny_data):
        train, _ = tiny_data
        qm = quantize_model(resnet20_with_stats, QConfig(8, 8))
        calibrate_model(qm, [train.images[:64]])
        assert float(qm.stem.conv.aq.scale.data) != 1.0
        assert qm.stem.conv.aq.calibrated

    def test_observe_flags_cleared(self, resnet20_with_stats, tiny_data):
        from repro.core.qbase import _QBase
        train, _ = tiny_data
        qm = quantize_model(resnet20_with_stats, QConfig(8, 8))
        calibrate_model(qm, [train.images[:64]])
        assert all(not m.observe for m in qm.modules() if isinstance(m, _QBase))


class TestFuse:
    def test_fuse_switches_deploy(self, fused_qm):
        qm, _ = fused_qm
        assert qm.deploy
        assert qm.stem.conv.deploy

    def test_double_fuse_not_required_for_nn2chip(self, resnet20_with_stats, tiny_data):
        train, _ = tiny_data
        qm = quantize_model(resnet20_with_stats, QConfig(8, 8))
        calibrate_model(qm, [train.images[:64]])
        qnn = T2C(qm).nn2chip()  # implicit fuse
        assert isinstance(qnn.input_q, InputQuant)


class TestRepack:
    def test_repack_equals_fused_bitwise(self, fused_qm, tiny_data):
        qm, t2c = fused_qm
        _, test = tiny_data
        qnn = t2c.nn2chip()
        x = Tensor(test.images[:32])
        with no_grad():
            np.testing.assert_array_equal(qm(x).data, qnn(x).data)

    def test_repack_has_no_custom_layers(self, fused_qm):
        _, t2c = fused_qm
        qnn = t2c.nn2chip()
        for m in qnn.modules():
            assert not isinstance(m, (QConv2d, QLinear))

    def test_repack_weights_are_integers(self, fused_qm):
        _, t2c = fused_qm
        qnn = t2c.nn2chip()
        report = integer_state_report(qnn)
        # only the ADC scale (input_q.scale) may be non-integer
        assert report["names_non_integer"] == ["input_q.scale"]

    def test_repack_drops_batchnorm(self, fused_qm):
        _, t2c = fused_qm
        qnn = t2c.nn2chip()
        assert not any(isinstance(m, nn.BatchNorm2d) for m in qnn.modules())

    def test_original_model_untouched(self, fused_qm):
        qm, t2c = fused_qm
        t2c.nn2chip()
        assert isinstance(qm.stem.conv, QConv2d)  # source not mutated

    def test_repacked_weight_range_matches_precision(self, fused_qm):
        _, t2c = fused_qm
        qnn = t2c.nn2chip()
        for name, p in qnn.named_parameters():
            if name.endswith("weight"):
                assert p.data.min() >= -128 and p.data.max() <= 127


class TestExportIntegration:
    def test_nn2chip_exports(self, fused_qm, tmp_path):
        _, t2c = fused_qm
        t2c.nn2chip(save_model=True, export_dir=str(tmp_path / "out"),
                    formats=("dec", "hex", "qint"))
        assert (tmp_path / "out" / "manifest.json").exists()
        files = os.listdir(tmp_path / "out")
        assert any(f.endswith(".hex") for f in files)
        assert any(f.endswith(".qint.bin") for f in files)
