"""The quantizer zoo: algorithm-specific behaviour + shared contracts."""
import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.quantizers import (
    QUANTIZERS,
    AdaRoundQuantizer,
    LSQQuantizer,
    MinMaxChannelQuantizer,
    MinMaxQuantizer,
    MinMaxWeightQuantizer,
    PACTQuantizer,
    QDropQuantizer,
    RCFActQuantizer,
    RCFWeightQuantizer,
    SAWBQuantizer,
    build_quantizer,
)
from repro.tensor import Tensor, no_grad


def _w(rng, shape=(16, 8, 3, 3)):
    return Tensor(rng.standard_normal(shape).astype(np.float32) * 0.1)


class TestSharedContract:
    """Every bundled quantizer must keep trainFunc == scale * q() so the
    automatic integer conversion is faithful (the paper's core invariant)."""

    @pytest.mark.parametrize("name,kwargs", [
        ("minmax_weight", {}), ("minmax_channel", {}), ("sawb", dict(nbit=4)),
        ("rcf_weight", dict(nbit=4)), ("lsq", dict(nbit=4)),
    ])
    def test_fake_quant_equals_scaled_integers(self, rng, name, kwargs):
        q = build_quantizer(name, **{"nbit": 4, **kwargs})
        w = _w(rng)
        with no_grad():
            fake = q.trainFunc(w).data
            ints = q.q(w).data
        scale = np.asarray(q.scale.data)
        np.testing.assert_allclose(fake, ints * scale, atol=1e-5)

    @pytest.mark.parametrize("name", ["minmax_weight", "sawb", "rcf_weight", "lsq"])
    def test_integers_within_grid(self, rng, name):
        q = build_quantizer(name, nbit=4)
        with no_grad():
            q.trainFunc(_w(rng))
            ints = q.q(_w(rng)).data
        assert ints.min() >= q.qlb and ints.max() <= q.qub

    def test_registry_complete(self):
        expected = {"identity", "minmax", "asym_minmax", "minmax_channel", "minmax_weight",
                    "sawb", "pact", "rcf_weight", "rcf_act", "lsq", "adaround", "qdrop",
                    "dorefa_weight", "dorefa_act"}
        assert expected == set(QUANTIZERS)

    def test_unknown_raises(self):
        with pytest.raises(KeyError):
            build_quantizer("dorefa")


class TestMinMax:
    def test_online_qat_self_calibration(self, rng):
        q = MinMaxQuantizer(nbit=8)
        q.train()
        x = Tensor(rng.standard_normal(1000).astype(np.float32) * 4)
        q(x)
        assert float(q.scale.data) != 1.0  # scale refreshed from data

    def test_calibration_freezes_scale(self, rng):
        q = MinMaxQuantizer(nbit=8)
        q.observe = True
        q(Tensor(rng.standard_normal(100).astype(np.float32)))
        q.finalize_calibration()
        s = float(q.scale.data)
        q.train()
        q(Tensor(100 * rng.standard_normal(100).astype(np.float32)))
        assert float(q.scale.data) == s  # calibrated: no more updates

    def test_finalize_without_data_raises(self):
        with pytest.raises(RuntimeError):
            MinMaxQuantizer().finalize_calibration()

    def test_channel_scale_shape(self, rng):
        q = MinMaxChannelQuantizer(nbit=8)
        w = _w(rng)
        with no_grad():
            q.trainFunc(w)
        assert q.scale.data.shape == (16, 1, 1, 1)

    def test_channel_quantizer_beats_tensor_on_skewed_channels(self, rng):
        w = rng.standard_normal((8, 4, 3, 3)).astype(np.float32) * 0.01
        w[0] *= 100  # one loud channel
        wt = Tensor(w)
        with no_grad():
            per_ch = MinMaxChannelQuantizer(nbit=4).trainFunc(wt).data
            per_tn = MinMaxWeightQuantizer(nbit=4).trainFunc(wt).data
        assert np.abs(per_ch - w)[1:].mean() < np.abs(per_tn - w)[1:].mean()


class TestSAWB:
    def test_alpha_positive_on_gaussian(self, rng):
        q = SAWBQuantizer(nbit=4)
        assert q.compute_alpha(rng.standard_normal(10000)) > 0

    def test_unsupported_bits_raise(self):
        with pytest.raises(ValueError):
            SAWBQuantizer(nbit=5)

    def test_alpha_below_max_abs(self, rng):
        # SAWB clips: the optimal threshold is inside the data range
        w = rng.standard_normal(10000)
        q = SAWBQuantizer(nbit=2)
        assert q.compute_alpha(w) < np.abs(w).max()

    def test_degenerate_distribution_fallback(self):
        q = SAWBQuantizer(nbit=4)
        w = np.ones(100)  # E[w^2]=1, E|w|=1 => c1-c2 < 0 path exercised
        assert q.compute_alpha(w) > 0


class TestPACT:
    def test_output_clipped_at_alpha_grid(self, rng):
        q = PACTQuantizer(nbit=4, alpha_init=2.0)
        x = Tensor(np.array([5.0, -3.0, 1.0], dtype=np.float32))
        out = q(x)
        assert out.data.max() <= 2.0 + 1e-5
        assert out.data.min() >= 0.0

    def test_alpha_gets_gradient_from_saturated_inputs(self):
        q = PACTQuantizer(nbit=4, alpha_init=1.0)
        x = Tensor(np.array([5.0], dtype=np.float32), requires_grad=True)
        q(x).backward()
        assert q.alpha.grad is not None
        assert abs(q.alpha.grad[0]) > 0

    def test_scale_tracks_alpha(self):
        q = PACTQuantizer(nbit=4, alpha_init=3.0)
        q(Tensor(np.ones(4, dtype=np.float32)))
        assert float(q.scale.data) == pytest.approx(3.0 / 15)


class TestRCF:
    def test_weight_symmetric_range(self, rng):
        q = RCFWeightQuantizer(nbit=4, alpha_init=0.5)
        out = q(_w(rng))
        assert out.data.max() <= 0.5 + 1e-5
        assert out.data.min() >= -0.5 - 1e-5

    def test_alpha_trainable(self, rng):
        q = RCFWeightQuantizer(nbit=4, alpha_init=0.05)
        w = Tensor(rng.standard_normal(50).astype(np.float32), requires_grad=True)
        (q(w) ** 2.0).sum().backward()
        assert q.alpha.grad is not None

    def test_act_unsigned(self):
        q = RCFActQuantizer(nbit=4, alpha_init=2.0)
        out = q(Tensor(np.array([-1.0, 3.0], dtype=np.float32)))
        assert out.data.min() >= 0.0


class TestLSQ:
    def test_step_initialized_from_data(self, rng):
        q = LSQQuantizer(nbit=4, step_init=123.0)
        q(Tensor(rng.standard_normal(100).astype(np.float32)))
        assert float(q.step.data[0]) < 1.0  # re-initialized

    def test_step_receives_gradient(self, rng):
        q = LSQQuantizer(nbit=4)
        x = Tensor(rng.standard_normal(64).astype(np.float32), requires_grad=True)
        (q(x) ** 2.0).sum().backward()
        assert q.step.grad is not None
        assert np.abs(q.step.grad).max() > 0


class TestAdaRound:
    def test_init_reproduces_float_residuals(self, rng):
        q = AdaRoundQuantizer(nbit=8)
        w = rng.standard_normal(200).astype(np.float32) * 0.1
        q.init_from_weight(w)
        soft = q.trainFunc(Tensor(w)).data
        # soft rounding initialized at h(alpha)=residual reproduces w closely
        np.testing.assert_allclose(soft, w, atol=float(q.scale.data) * 0.51 + 1e-4)

    def test_hard_rounding_is_floor_plus_gate(self, rng):
        q = AdaRoundQuantizer(nbit=8)
        w = rng.standard_normal(50).astype(np.float32) * 0.1
        q.init_from_weight(w)
        s = float(q.scale.data)
        ints = q.q(Tensor(w)).data
        expected = np.clip(np.floor(w / s) + (q.alpha.data >= 0), q.qlb, q.qub)
        np.testing.assert_array_equal(ints, expected)

    def test_reg_loss_zero_when_binary(self, rng):
        q = AdaRoundQuantizer(nbit=8)
        q.init_from_weight(rng.standard_normal(50).astype(np.float32))
        q.alpha.data[:] = 100.0  # h -> 1 exactly after rectification
        assert q.reg_loss().item() == pytest.approx(0.0, abs=1e-5)

    def test_forward_before_init_self_initializes(self, rng):
        q = AdaRoundQuantizer(nbit=8)
        q(Tensor(rng.standard_normal(10).astype(np.float32)))
        assert q.alpha is not None

    def test_h_before_init_raises(self):
        with pytest.raises(RuntimeError):
            AdaRoundQuantizer().h()

    def test_pruned_zeros_pinned(self, rng):
        """Learned rounding must not regrow pruned (exact-zero) weights."""
        q = AdaRoundQuantizer(nbit=8)
        w = rng.standard_normal(100).astype(np.float32) * 0.1
        w[::3] = 0.0
        q.init_from_weight(w)
        q.alpha.data[:] = 100.0  # force every gate up
        ints = q.q(Tensor(w)).data
        assert (ints[::3] == 0).all()
        soft = q.trainFunc(Tensor(w)).data
        assert (soft[::3] == 0).all()


class TestQDrop:
    def test_drop_keeps_some_fp_values(self, rng):
        q = QDropQuantizer(nbit=2, p=0.5)
        q.observe = True
        x = Tensor(rng.random(1000).astype(np.float32) * 3)
        q(x)
        q.finalize_calibration()
        out = q(x).data
        grid = np.round(out / float(q.scale.data)) * float(q.scale.data)
        frac_off_grid = (np.abs(out - grid) > 1e-6).mean()
        assert 0.2 < frac_off_grid < 0.8  # ~half kept at full precision

    def test_disabled_drop_is_plain_quantizer(self, rng):
        q = QDropQuantizer(nbit=4, p=0.5)
        q.observe = True
        x = Tensor(rng.random(500).astype(np.float32))
        q(x)
        q.finalize_calibration()
        q.drop_enabled = False
        out = q(x).data
        s = float(q.scale.data)
        np.testing.assert_allclose(out, np.round(out / s) * s, atol=1e-6)


@settings(max_examples=30, deadline=None)
@given(st.integers(2, 8), st.floats(0.01, 10.0))
def test_quantization_error_bounded_by_half_step(nbit, spread):
    """|x - fakequant(x)| <= scale/2 for in-range values (property)."""
    rng = np.random.default_rng(nbit)
    q = MinMaxWeightQuantizer(nbit=nbit)
    x = Tensor((rng.standard_normal(256) * spread).astype(np.float32))
    with no_grad():
        out = q.trainFunc(x).data
    s = float(q.scale.data)
    in_range = np.abs(x.data) <= s * q.qub
    assert (np.abs(out - x.data)[in_range] <= s / 2 + 1e-6).all()
