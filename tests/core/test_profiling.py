"""MAC/storage profiler."""
import numpy as np
import pytest

from repro.core.profiling import profile_macs, summarize_profile
from repro.models import build_model
from repro.pruning import MagnitudePruner
from repro.utils import seed_everything


class TestProfiler:
    def test_manual_conv_macs(self):
        from repro import nn
        m = nn.Sequential(nn.Conv2d(3, 8, 3, stride=1, padding=1))
        rows = profile_macs(m, input_shape=(3, 8, 8))
        # 8x8 output x 8 out-ch x 3 in-ch x 9 taps
        assert rows[0]["macs"] == 64 * 8 * 3 * 9

    def test_linear_macs(self):
        from repro import nn
        m = nn.Sequential(nn.Flatten(), nn.Linear(48, 10))
        rows = profile_macs(m, input_shape=(3, 4, 4))
        assert rows[0]["macs"] == 48 * 10

    def test_depthwise_counts_groups(self):
        from repro import nn
        m = nn.Sequential(nn.Conv2d(8, 8, 3, padding=1, groups=8))
        rows = profile_macs(m, input_shape=(8, 4, 4))
        assert rows[0]["macs"] == 16 * 8 * 1 * 9

    def test_stride_halves_spatial(self):
        from repro import nn
        m1 = nn.Sequential(nn.Conv2d(3, 4, 3, stride=1, padding=1))
        m2 = nn.Sequential(nn.Conv2d(3, 4, 3, stride=2, padding=1))
        r1 = profile_macs(m1, (3, 8, 8))[0]["macs"]
        r2 = profile_macs(m2, (3, 8, 8))[0]["macs"]
        assert r1 == 4 * r2

    def test_whole_model_profile(self):
        seed_everything(0)
        model = build_model("resnet20", num_classes=10, width=8)
        rows = profile_macs(model)
        summary = summarize_profile(rows)
        assert summary["total_macs"] > 1e6
        assert summary["effective_macs"] == summary["total_macs"]  # dense

    def test_sparsity_reduces_effective_macs(self):
        seed_everything(0)
        model = build_model("resnet20", num_classes=10, width=8)
        pruner = MagnitudePruner(model, sparsity=0.8)
        pruner.step(1.0)
        summary = summarize_profile(profile_macs(model))
        assert summary["mac_reduction"] > 0.5
        assert summary["effective_macs"] < summary["total_macs"]

    def test_attention_matmul_macs(self):
        """Attention contributes QK^T + attn·V: 2·N·H·L²·hd MACs per module,
        on top of (and separate from) its QKV/proj linear rows."""
        from repro import nn
        attn = nn.MultiheadAttention(embed_dim=16, num_heads=2)

        class TokenWrap(nn.Module):
            def __init__(self):
                super().__init__()
                self.attn = attn

            def forward(self, x):
                n = x.shape[0]
                return self.attn(x.reshape(n, 6, 16))

        rows = profile_macs(TokenWrap(), input_shape=(6, 16))
        by_type = {}
        for r in rows:
            by_type.setdefault(r["type"], []).append(r)
        (arow,) = by_type["MultiheadAttention"]
        assert arow["macs"] == 2 * 1 * 2 * 6 * 6 * 8  # 2·N·H·L²·hd
        assert arow["params"] == 0
        lin_macs = {r["layer"]: r["macs"] for r in by_type["Linear"]}
        assert lin_macs["attn.qkv"] == 6 * 16 * 48
        assert lin_macs["attn.proj"] == 6 * 16 * 16

    def test_vit_profile_includes_attention(self):
        seed_everything(0)
        model = build_model("vit-7", num_classes=10, embed_dim=64)
        rows = profile_macs(model)
        attn_rows = [r for r in rows if r["type"] == "MultiheadAttention"]
        assert len(attn_rows) == 7  # one per block
        attn_total = sum(r["macs"] for r in attn_rows)
        assert attn_total > 0
        total = summarize_profile(rows)["total_macs"]
        assert attn_total < total  # linears still dominate at this scale

    def test_model_restored_after_exception(self):
        from repro import nn

        class Boom(nn.Module):
            def forward(self, x):
                raise RuntimeError("boom")

        model = nn.Sequential(nn.Conv2d(3, 4, 3, padding=1), Boom())
        with pytest.raises(RuntimeError):
            profile_macs(model, (3, 8, 8))
        for mod in model.modules():
            assert "forward" not in mod.__dict__

    def test_model_unchanged_after_profiling(self):
        seed_everything(0)
        model = build_model("resnet20", num_classes=10, width=8)
        before = model.conv1.weight.data.copy()
        profile_macs(model)
        np.testing.assert_array_equal(model.conv1.weight.data, before)
        # hooks removed: second profile gives identical rows
        r1 = profile_macs(model)
        r2 = profile_macs(model)
        assert [r["macs"] for r in r1] == [r["macs"] for r in r2]
