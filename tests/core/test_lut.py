"""LUT softmax / GELU approximation."""
import numpy as np
import pytest

from repro.core.lut import LUTGelu, LUTSoftmax, _gelu_ref, lut_softmax_reference_error
from repro.tensor import Tensor


class TestLUTSoftmax:
    def _scores(self, rng, shape=(4, 8, 10)):
        return Tensor(rng.integers(-128, 128, shape).astype(np.float32))

    def test_probs_sum_close_to_one(self, rng):
        lut = LUTSoftmax(0.05, -128, 127, prob_bits=8)
        p = lut(self._scores(rng)).data * lut.prob_scale
        np.testing.assert_allclose(p.sum(-1), 1.0, atol=0.05)

    def test_probs_nonnegative_integers(self, rng):
        lut = LUTSoftmax(0.05, -128, 127)
        p = lut(self._scores(rng)).data
        assert (p >= 0).all()
        np.testing.assert_array_equal(p, np.round(p))

    def test_close_to_float_softmax(self, rng):
        lut = LUTSoftmax(0.05, -128, 127, prob_bits=8)
        s = self._scores(rng)
        p = lut(s).data * lut.prob_scale
        ref = Tensor(s.data * 0.05).softmax(axis=-1).data
        assert np.abs(p - ref).max() < 0.02

    def test_argmax_preserved(self, rng):
        lut = LUTSoftmax(0.1, -128, 127)
        s = self._scores(rng)
        p = lut(s).data
        np.testing.assert_array_equal(p.argmax(-1), s.data.argmax(-1))

    def test_more_prob_bits_lower_error(self):
        errs = [lut_softmax_reference_error(0.05, pb) for pb in (4, 8, 12)]
        assert errs[0] > errs[1] > errs[2]

    def test_shift_invariance(self, rng):
        """softmax(x) == softmax(x + c): the max-subtraction must absorb offsets."""
        lut = LUTSoftmax(0.05, -128, 127)
        s = rng.integers(-50, 50, (2, 6)).astype(np.float32)
        p1 = lut(Tensor(s)).data
        p2 = lut(Tensor(s + 30)).data
        np.testing.assert_array_equal(p1, p2)


class TestLUTGelu:
    def test_matches_pointwise_reference_exactly(self):
        """The LUT must equal round(gelu(i*s_in)/s_out) for every code."""
        lut = LUTGelu(0.05, -128, 127, 0.04, -128, 127)
        codes = np.arange(-128, 128)
        expected = np.clip(np.round(_gelu_ref(codes * 0.05) / 0.04), -128, 127)
        out = lut(Tensor(codes.astype(np.float32))).data
        np.testing.assert_array_equal(out, expected)

    def test_out_of_range_inputs_clamped(self):
        lut = LUTGelu(0.05, -8, 7, 0.05, -8, 7)
        out = lut(Tensor(np.array([-100.0, 100.0], dtype=np.float32))).data
        assert out[0] == lut.table.data[0]
        assert out[1] == lut.table.data[-1]

    def test_monotone_for_positive_codes(self):
        lut = LUTGelu(0.05, -128, 127, 0.01, -512, 511)
        tab = lut.table.data
        assert (np.diff(tab[128:]) >= 0).all()  # GELU increasing for x>0

    def test_table_size(self):
        lut = LUTGelu(0.1, -8, 7, 0.1, -8, 7)
        assert len(lut.table.data) == 16
