"""Hypothesis property tests across the quantization stack."""
import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.fixed_point import FixedPointFormat
from repro.core.mulquant import MulQuant
from repro.core.qbase import QuantSpec, _QBase
from repro.tensor import Tensor, no_grad

finite = st.floats(min_value=-50, max_value=50, allow_nan=False, width=32)


@settings(max_examples=60, deadline=None)
@given(st.integers(2, 8), st.booleans(), st.lists(finite, min_size=1, max_size=64),
       st.floats(1e-3, 10.0))
def test_qbase_roundtrip_error_bound(nbit, unsigned, vals, scale):
    """dq(q(x)) is within scale/2 of x for values inside the clip range."""
    q = _QBase(nbit=nbit, unsigned=unsigned)
    q.set_scale(scale)
    x = np.array(vals, dtype=np.float32)
    with no_grad():
        back = q.dq(q.q(Tensor(x))).data
    lo, hi = q.qlb * scale, q.qub * scale
    inside = (x >= lo) & (x <= hi)
    assert (np.abs(back - x)[inside] <= scale / 2 + 1e-5).all()


@settings(max_examples=60, deadline=None)
@given(st.integers(2, 8), st.booleans())
def test_quantspec_contains_zero(nbit, unsigned):
    s = QuantSpec(nbit, unsigned)
    assert s.qlb <= 0 <= s.qub
    assert s.qub - s.qlb == s.levels - 1


@settings(max_examples=60, deadline=None)
@given(st.floats(1e-5, 100.0), st.floats(-100, 100),
       st.lists(st.integers(-10000, 10000), min_size=1, max_size=32))
def test_mulquant_output_integral_and_clamped(scale, bias, acc):
    mq = MulQuant(scale, bias, fmt=FixedPointFormat(4, 12), out_lo=-1000, out_hi=1000)
    out = mq(Tensor(np.array(acc, dtype=np.float32))).data
    np.testing.assert_array_equal(out, np.round(out))
    assert out.min() >= -1000 and out.max() <= 1000


@settings(max_examples=40, deadline=None)
@given(st.floats(1e-5, 50.0))
def test_mulquant_effective_scale_relative_error(scale):
    mq = MulQuant(scale, fmt=FixedPointFormat(4, 12))
    rel = abs(float(mq.effective_scale[0]) - scale) / scale
    assert rel < 2e-3  # normalized multiplier keeps ~11+ bits of precision


@settings(max_examples=40, deadline=None)
@given(st.lists(finite, min_size=4, max_size=64), st.integers(2, 8))
def test_fakequant_idempotent(vals, nbit):
    """Quantizing an already-quantized tensor is a no-op."""
    from repro.core.quantizers import MinMaxWeightQuantizer
    q = MinMaxWeightQuantizer(nbit=nbit)
    x = Tensor(np.array(vals, dtype=np.float32))
    with no_grad():
        once = q.trainFunc(x).data
        twice = q.trainFunc(Tensor(once.copy())).data
    np.testing.assert_allclose(once, twice, atol=1e-5)


@settings(max_examples=30, deadline=None)
@given(st.lists(finite, min_size=8, max_size=64))
def test_channel_quantizer_preserves_channel_extremes(vals):
    """Each channel's max-abs weight is reconstructed exactly (its own scale
    is anchored to it), whereas a per-tensor grid only guarantees this for
    the globally-largest channel."""
    from repro.core.quantizers import MinMaxChannelQuantizer
    n = (len(vals) // 4) * 4
    arr = np.array(vals[:n], dtype=np.float32).reshape(n // 4, 4)[:, :, None, None]
    x = Tensor(arr)
    with no_grad():
        per_ch = MinMaxChannelQuantizer(nbit=4).trainFunc(x).data
    for c in range(arr.shape[0]):
        m = np.abs(arr[c]).max()
        if m < 1e-5:
            continue
        np.testing.assert_allclose(np.abs(per_ch[c]).max(), m, rtol=1e-4)
