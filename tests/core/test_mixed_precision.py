"""Mixed-precision sensitivity analysis and bit allocation."""
import numpy as np
import pytest

from repro.core.mixed_precision import (
    allocate_bits,
    average_bits,
    layer_sensitivity,
    quantize_model_mixed,
)
from repro.core.qconfig import QConfig
from repro.core.qlayers import QConv2d
from repro.models import build_model
from repro.utils import seed_everything


@pytest.fixture
def model():
    seed_everything(44)
    return build_model("resnet20", num_classes=10, width=8)


class TestSensitivity:
    def test_covers_all_layers(self, model):
        rows = layer_sensitivity(model)
        from repro import nn
        n = sum(1 for m in model.modules()
                if isinstance(m, (nn.Conv2d, nn.Linear)))
        assert len(rows) == n

    def test_more_bits_more_sqnr(self, model):
        for r in layer_sensitivity(model):
            assert r["sqnr_2b"] < r["sqnr_4b"] < r["sqnr_8b"]


class TestAllocation:
    def test_respects_budget(self, model):
        sens = layer_sensitivity(model)
        alloc = allocate_bits(sens, avg_bits=4.0)
        assert average_bits(alloc, sens) <= 5.0  # soft overshoot bound

    def test_tight_budget_stays_low(self, model):
        sens = layer_sensitivity(model)
        alloc = allocate_bits(sens, avg_bits=2.0, min_sqnr_db=0.0)
        assert average_bits(alloc, sens) <= 2.5

    def test_generous_budget_promotes_sensitive_layers(self, model):
        sens = layer_sensitivity(model)
        alloc = allocate_bits(sens, avg_bits=7.5, min_sqnr_db=25.0)
        assert max(alloc.values()) == 8

    def test_all_layers_allocated(self, model):
        sens = layer_sensitivity(model)
        alloc = allocate_bits(sens, avg_bits=4.0)
        assert set(alloc) == {r["layer"] for r in sens}
        assert all(b in (2, 4, 8) for b in alloc.values())

    def test_sensitive_layers_get_more_bits(self, model):
        sens = layer_sensitivity(model)
        alloc = allocate_bits(sens, avg_bits=4.0, min_sqnr_db=100.0)
        # with an unreachable floor, allocation is purely worst-first greedy:
        # among layers at different widths, the lower-width ones must not be
        # (much) more sensitive than promoted ones at their width
        by_bits = {}
        for r in sens:
            by_bits.setdefault(alloc[r["layer"]], []).append(r)
        if 2 in by_bits and 8 in by_bits:
            worst_promoted = min(r["sqnr_2b"] for r in by_bits[8])
            best_left = max(r["sqnr_2b"] for r in by_bits[2])
            assert worst_promoted <= best_left + 1e-6


class TestMixedModel:
    def test_quantizers_follow_allocation(self, model, tiny_data):
        sens = layer_sensitivity(model)
        # budget that runs out mid-way through the promotions -> mixed widths
        alloc = allocate_bits(sens, avg_bits=3.0, min_sqnr_db=100.0)
        assert len(set(alloc.values())) > 1
        qm = quantize_model_mixed(model, alloc, QConfig(4, 8))
        bit_set = {m.wq.nbit for m in qm.modules() if isinstance(m, QConv2d)}
        assert len(bit_set) > 1  # genuinely mixed

    def test_mixed_model_deploys(self, model, tiny_data):
        from repro.core.t2c import T2C, calibrate_model
        from repro.trainer.metrics import evaluate

        train, test = tiny_data
        sens = layer_sensitivity(model)
        alloc = allocate_bits(sens, avg_bits=6.0)
        qm = quantize_model_mixed(model, alloc, QConfig(8, 8))
        calibrate_model(qm, [train.images[:64]])
        qnn = T2C(qm).nn2chip()
        acc = evaluate(qnn, test)
        assert 0.0 <= acc <= 1.0  # runs end to end with heterogeneous widths
