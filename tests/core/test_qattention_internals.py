"""Deploy-path internals of the quantized attention."""
import numpy as np
import pytest

from repro.core.qconfig import QConfig
from repro.core.qmodels import quantize_model
from repro.core.qvit import QAttention
from repro.core.t2c import T2C, calibrate_model
from repro.models import build_model
from repro.tensor import Tensor, no_grad


@pytest.fixture(scope="module")
def fused_vit(tiny_data):
    from repro.utils import seed_everything
    seed_everything(8)
    train, _ = tiny_data
    m = build_model("vit-7", num_classes=10, embed_dim=32)
    m.train()
    for i in range(2):
        m(Tensor(train.images[i * 32:(i + 1) * 32]))
    m.eval()
    qm = quantize_model(m, QConfig(8, 8))
    calibrate_model(qm, [train.images[i * 64:(i + 1) * 64] for i in range(3)])
    T2C(qm).fuse()
    return qm


class TestDeployAttention:
    def _attn_and_input(self, fused_vit, tiny_data):
        _, test = tiny_data
        blk = fused_vit.blocks[0]
        with no_grad():
            xi = fused_vit.input_q(Tensor(test.images[:4]))
            tok = fused_vit._tokens(xi)
            n = tok.shape[0]
            cls = Tensor(np.broadcast_to(fused_vit.cls_int.data, (n, 1, 32)).copy())
            from repro.tensor import cat
            tok = cat([cls, tok], axis=1)
            tok = Tensor(np.clip(tok.data + fused_vit.pos_int.data,
                                 fused_vit.embed_q.qlb, fused_vit.embed_q.qub))
            ln_out = blk.ln1(tok)
        return blk.attn, ln_out

    def test_qkv_lands_in_declared_grids(self, fused_vit, tiny_data):
        attn, x = self._attn_and_input(fused_vit, tiny_data)
        with no_grad():
            t = attn.mq_qkv(attn.qkv(x))
        assert t.data.min() >= attn.qq.qlb
        assert t.data.max() <= attn.qq.qub
        np.testing.assert_array_equal(t.data, np.round(t.data))

    def test_probabilities_rows_sum_to_grid_one(self, fused_vit, tiny_data):
        attn, x = self._attn_and_input(fused_vit, tiny_data)
        n, l, _ = x.shape
        with no_grad():
            t = attn.mq_qkv(attn.qkv(x))
            q, k, _ = attn._split_qkv(t, n, l)
            s_int = attn.mq_score(q @ k.swapaxes(-1, -2))
            p_int = attn.lut_softmax(s_int)
        sums = p_int.data.sum(-1) / (1 << attn.prob_bits)
        np.testing.assert_allclose(sums, 1.0, atol=0.07)

    def test_scores_within_score_grid(self, fused_vit, tiny_data):
        attn, x = self._attn_and_input(fused_vit, tiny_data)
        n, l, _ = x.shape
        with no_grad():
            t = attn.mq_qkv(attn.qkv(x))
            q, k, _ = attn._split_qkv(t, n, l)
            s_int = attn.mq_score(q @ k.swapaxes(-1, -2))
        assert s_int.data.min() >= attn.sq.qlb
        assert s_int.data.max() <= attn.sq.qub

    def test_deploy_output_is_integer_stream(self, fused_vit, tiny_data):
        attn, x = self._attn_and_input(fused_vit, tiny_data)
        with no_grad():
            out = attn(x)
        np.testing.assert_array_equal(out.data, np.round(out.data))

    def test_score_scale_folds_softmax_scale(self, fused_vit):
        attn: QAttention = fused_vit.blocks[0].attn
        sq = float(np.asarray(attn.qq.scale.data).reshape(-1)[0])
        sk = float(np.asarray(attn.kq.scale.data).reshape(-1)[0])
        ss = float(np.asarray(attn.sq.scale.data).reshape(-1)[0])
        expected = sq * sk * attn.softmax_scale / ss
        got = float(attn.mq_score.effective_scale[0])
        assert got == pytest.approx(expected, rel=2e-3)
