"""Fixed-point INT(i, f) encode/decode."""
import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.fixed_point import (
    FixedPointFormat,
    from_fixed_point,
    quantize_to_fixed_point,
    to_fixed_point,
)


class TestFormat:
    def test_int16_totals(self):
        fmt = FixedPointFormat(4, 12)
        assert fmt.total_bits == 16
        assert fmt.lo == -32768 and fmt.hi == 32767
        assert fmt.resolution == pytest.approx(2 ** -12)

    def test_str_matches_paper_notation(self):
        assert str(FixedPointFormat(4, 12)) == "INT(12, 4)"


class TestEncodeDecode:
    def test_roundtrip_on_grid(self):
        fmt = FixedPointFormat(4, 12)
        vals = np.array([0.5, -1.25, 3.0])
        np.testing.assert_allclose(from_fixed_point(to_fixed_point(vals, fmt), fmt), vals)

    def test_clamps_out_of_range(self):
        fmt = FixedPointFormat(4, 12)
        raw = to_fixed_point(np.array([100.0]), fmt)
        assert raw[0] == fmt.hi

    def test_rounding_error_within_half_lsb(self, rng):
        fmt = FixedPointFormat(4, 12)
        vals = rng.uniform(-7, 7, 100)
        back = from_fixed_point(to_fixed_point(vals, fmt), fmt)
        assert np.abs(back - vals).max() <= fmt.resolution / 2 + 1e-9

    def test_quantize_idempotent(self, rng):
        fmt = FixedPointFormat(8, 8)
        vals = rng.uniform(-100, 100, 50)
        once = quantize_to_fixed_point(vals, fmt)
        twice = quantize_to_fixed_point(once, fmt)
        np.testing.assert_array_equal(once, twice)


@settings(max_examples=50, deadline=None)
@given(st.integers(2, 8), st.integers(2, 14),
       st.floats(-1000, 1000, allow_nan=False))
def test_decode_encode_properties(int_bits, frac_bits, value):
    fmt = FixedPointFormat(int_bits, frac_bits)
    raw = to_fixed_point(np.array([value]), fmt)
    assert fmt.lo <= raw[0] <= fmt.hi
    back = from_fixed_point(raw, fmt)[0]
    clipped = np.clip(value, fmt.lo * fmt.resolution, fmt.hi * fmt.resolution)
    assert abs(back - clipped) <= fmt.resolution / 2 + 1e-7
