"""MulQuant: integer requantization."""
import numpy as np
import pytest

from repro.core.fixed_point import FixedPointFormat
from repro.core.mulquant import MulQuant
from repro.tensor import Tensor


class TestScalar:
    def test_basic_rescale(self):
        mq = MulQuant(scale=0.5, out_lo=0, out_hi=255)
        out = mq(Tensor(np.array([10.0, 101.0], dtype=np.float32)))
        np.testing.assert_allclose(out.data, [5, 51])

    def test_bias_in_output_units(self):
        mq = MulQuant(scale=1.0, bias=7.0, out_lo=-100, out_hi=100)
        out = mq(Tensor(np.array([3.0], dtype=np.float32)))
        np.testing.assert_allclose(out.data, [10])

    def test_clamping(self):
        mq = MulQuant(scale=1.0, out_lo=0, out_hi=15)
        out = mq(Tensor(np.array([-5.0, 99.0], dtype=np.float32)))
        np.testing.assert_allclose(out.data, [0, 15])

    def test_output_always_integral(self, rng):
        mq = MulQuant(scale=0.0173, bias=3.7)
        out = mq(Tensor(rng.integers(-1000, 1000, 100).astype(np.float32))).data
        np.testing.assert_array_equal(out, np.round(out))


class TestShiftNormalization:
    def test_tiny_scales_survive_fixed_point(self, rng):
        """Scales ~1e-3 (typical fused products) must keep fine resolution."""
        scale = 0.00173
        mq = MulQuant(scale=scale, fmt=FixedPointFormat(4, 12))
        acc = rng.integers(-20000, 20000, 1000).astype(np.float32)
        out = mq(Tensor(acc)).data
        ref = np.round(acc * scale)
        assert np.abs(out - ref).max() <= 1.0
        # relative representation error far below the raw grid resolution
        assert abs(float(mq.effective_scale[0]) - scale) / scale < 1e-3

    def test_shift_computed(self):
        mq = MulQuant(scale=0.001)
        assert mq.shift > 0
        mq2 = MulQuant(scale=100.0)
        assert mq2.shift < 0

    def test_effective_scale_close(self):
        for s in (1e-4, 0.5, 3.0, 40.0):
            mq = MulQuant(scale=s)
            assert float(mq.effective_scale[0]) == pytest.approx(s, rel=1e-3)


class TestPerChannel:
    def test_channelwise_broadcast_nchw(self, rng):
        scales = np.array([1.0, 2.0, 0.5])
        mq = MulQuant(scale=scales, channel_axis=1)
        x = np.ones((2, 3, 4, 4), dtype=np.float32) * 100
        out = mq(Tensor(x)).data
        np.testing.assert_allclose(out[:, 0], 100)
        np.testing.assert_allclose(out[:, 1], 200)
        np.testing.assert_allclose(out[:, 2], 50)

    def test_channelwise_last_axis(self):
        mq = MulQuant(scale=np.array([1.0, 3.0]), channel_axis=-1)
        out = mq(Tensor(np.full((4, 2), 10.0, dtype=np.float32))).data
        np.testing.assert_allclose(out[:, 1], 30)

    def test_per_channel_bias(self):
        mq = MulQuant(scale=np.ones(2), bias=np.array([5.0, -5.0]), channel_axis=-1)
        out = mq(Tensor(np.zeros((1, 2), dtype=np.float32))).data
        np.testing.assert_allclose(out, [[5, -5]])


class TestFloatScaleBaseline:
    def test_float_mode_no_fixed_point_error(self):
        s = 0.0012345
        mq = MulQuant(scale=s, float_scale=True)
        assert float(mq.effective_scale[0]) == pytest.approx(s, rel=1e-6)

    def test_fixed_vs_float_agree_for_representable(self, rng):
        acc = rng.integers(-100, 100, 50).astype(np.float32)
        s = 0.5  # exactly representable
        a = MulQuant(scale=s)(Tensor(acc)).data
        b = MulQuant(scale=s, float_scale=True)(Tensor(acc)).data
        np.testing.assert_array_equal(a, b)


class TestBiasFormat:
    def test_large_bias_representable(self):
        # biases live in output-integer units: values of hundreds must fit
        mq = MulQuant(scale=1.0, bias=500.0, fmt=FixedPointFormat(4, 12))
        out = mq(Tensor(np.zeros(1, dtype=np.float32))).data
        assert out[0] == pytest.approx(500, abs=1)

    def test_state_dict_holds_integer_raws(self):
        mq = MulQuant(scale=0.25, bias=2.0)
        sd = mq.state_dict()
        assert np.issubdtype(sd["scale"].dtype, np.integer)
        assert np.issubdtype(sd["bias"].dtype, np.integer)


class TestSaturationCounters:
    """MulQuant saturation audit: counters must match hand-computed clamps."""

    def _report(self):
        from repro import telemetry
        return {r["layer"]: r for r in telemetry.saturation_report()}

    def test_fixed_point_mode_hand_count(self):
        from repro import telemetry
        prev = telemetry.set_enabled(True)
        telemetry.get_registry().clear()
        try:
            mq = MulQuant(scale=1.0, out_lo=-8, out_hi=7)
            # effective scale is 1.0 (power-of-two normalized); inputs round
            # to [-9, -8, 0, 7, 8]: -9 clamps low, 8 clamps high -> 2 of 5
            mq(Tensor(np.array([-9.0, -8.0, 0.3, 7.2, 8.0], dtype=np.float32)))
            row = self._report()[f"MulQuant@{id(mq):x}"]
            assert row["clipped"] == 2 and row["total"] == 5
        finally:
            telemetry.set_enabled(prev)
            telemetry.get_registry().clear()

    def test_no_counters_when_disabled(self):
        from repro import telemetry
        telemetry.get_registry().clear()
        mq = MulQuant(scale=1.0, out_lo=-8, out_hi=7)
        mq(Tensor(np.array([-100.0, 100.0], dtype=np.float32)))
        assert telemetry.saturation_report() == []

    def test_output_identical_with_audit_on(self, rng):
        from repro import telemetry
        mq = MulQuant(scale=0.013, bias=3.0, out_lo=0, out_hi=255)
        x = Tensor(rng.normal(scale=4000, size=256).astype(np.float32))
        y_off = mq(x).data.copy()
        prev = telemetry.set_enabled(True)
        try:
            y_on = mq(x).data.copy()
        finally:
            telemetry.set_enabled(prev)
            telemetry.get_registry().clear()
        np.testing.assert_array_equal(y_off, y_on)
