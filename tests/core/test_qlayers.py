"""Dual-path QConv2d / QLinear."""
import numpy as np
import pytest

from repro import nn
from repro.core.qlayers import QConv2d, QLinear
from repro.core.quantizers import MinMaxChannelQuantizer, MinMaxQuantizer, MinMaxWeightQuantizer
from repro.tensor import Tensor, no_grad


class TestQConv2d:
    def _qconv(self):
        return QConv2d(3, 8, 3, padding=1, bias=False,
                       wq=MinMaxChannelQuantizer(nbit=8), aq=MinMaxQuantizer(nbit=8))

    def test_from_float_copies_weights(self, rng):
        conv = nn.Conv2d(3, 8, 3, bias=True)
        q = QConv2d.from_float(conv, MinMaxWeightQuantizer(nbit=8), MinMaxQuantizer(nbit=8))
        np.testing.assert_array_equal(q.weight.data, conv.weight.data)
        np.testing.assert_array_equal(q.bias.data, conv.bias.data)

    def test_train_path_close_to_float_at_8bit(self, rng):
        q = self._qconv()
        q.train()
        x = Tensor(rng.standard_normal((2, 3, 8, 8)).astype(np.float32))
        qout = q(x).data
        fout = nn.functional.conv2d(x, q.weight, None, 1, 1).data
        assert np.abs(qout - fout).mean() / np.abs(fout).mean() < 0.05

    def test_freeze_int_weight_is_integral_and_in_range(self, rng):
        q = self._qconv()
        q.train()
        q(Tensor(rng.standard_normal((1, 3, 8, 8)).astype(np.float32)))
        wint = q.freeze_int_weight()
        np.testing.assert_array_equal(wint, np.round(wint))
        assert wint.min() >= -128 and wint.max() <= 127

    def test_deploy_path_uses_wint(self, rng):
        q = self._qconv()
        q.train()
        q(Tensor(rng.standard_normal((1, 3, 8, 8)).astype(np.float32)))
        q.freeze_int_weight()
        q.set_deploy(True)
        xi = Tensor(rng.integers(-128, 128, (1, 3, 8, 8)).astype(np.float32))
        with no_grad():
            acc = q(xi).data
        # integer inputs x integer weights => integer accumulator
        np.testing.assert_array_equal(acc, np.round(acc))

    def test_deploy_flag_propagates_to_quantizers(self):
        q = self._qconv()
        q.set_deploy(True)
        assert q.wq.deploy and q.aq.deploy

    def test_gradients_flow_in_train_path(self, rng):
        q = self._qconv()
        q.train()
        x = Tensor(rng.standard_normal((1, 3, 8, 8)).astype(np.float32), requires_grad=True)
        (q(x) ** 2.0).sum().backward()
        assert q.weight.grad is not None
        assert x.grad is not None


class TestQLinear:
    def _qlin(self):
        return QLinear(16, 4, bias=True,
                       wq=MinMaxChannelQuantizer(nbit=8), aq=MinMaxQuantizer(nbit=8))

    def test_train_path_shape(self, rng):
        q = self._qlin()
        q.train()
        assert q(Tensor(rng.standard_normal((3, 16)).astype(np.float32))).shape == (3, 4)

    def test_deploy_integer_matmul(self, rng):
        q = self._qlin()
        q.train()
        q(Tensor(rng.standard_normal((2, 16)).astype(np.float32)))
        q.freeze_int_weight()
        q.set_deploy(True)
        xi = Tensor(rng.integers(0, 16, (2, 16)).astype(np.float32))
        with no_grad():
            acc = q(xi).data
        np.testing.assert_array_equal(acc, np.round(acc))

    def test_deploy_ignores_float_bias(self, rng):
        """The float bias is fused into MulQuant, never added in deploy."""
        q = self._qlin()
        q.bias.data[:] = 100.0
        q.train()
        q(Tensor(rng.standard_normal((1, 16)).astype(np.float32)))
        q.freeze_int_weight()
        q.set_deploy(True)
        acc = q(Tensor(np.zeros((1, 16), dtype=np.float32))).data
        np.testing.assert_allclose(acc, 0.0)

    def test_from_float_roundtrip(self, rng):
        lin = nn.Linear(8, 3)
        q = QLinear.from_float(lin, MinMaxWeightQuantizer(nbit=8), MinMaxQuantizer(nbit=8))
        np.testing.assert_array_equal(q.weight.data, lin.weight.data)
