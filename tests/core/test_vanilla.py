"""Vanilla re-pack components."""
import numpy as np
import pytest

from repro.core.vanilla import GridRange, InputQuant, integer_state_report
from repro.tensor import Tensor


class TestInputQuant:
    def test_rounds_and_clamps(self):
        iq = InputQuant(scale=0.5, qlb=-4, qub=3)
        out = iq(Tensor(np.array([0.6, -10.0, 10.0], dtype=np.float32)))
        np.testing.assert_allclose(out.data, [1, -4, 3])

    def test_no_parameters(self):
        iq = InputQuant(0.1, -128, 127)
        assert list(iq.parameters()) == []
        assert "scale" in dict(iq.named_buffers())

    def test_repr(self):
        assert "range" in repr(InputQuant(0.1, -8, 7))


class TestGridRange:
    def test_holds_bounds(self):
        g = GridRange(-8, 7)
        assert g.qlb == -8 and g.qub == 7

    def test_not_callable(self):
        with pytest.raises(RuntimeError):
            GridRange(-8, 7)(Tensor(np.zeros(2, dtype=np.float32)))

    def test_no_state(self):
        g = GridRange(-8, 7)
        assert g.state_dict() == {}


class TestIntegerStateReport:
    def test_flags_float_tensors(self):
        from repro import nn
        m = nn.Linear(2, 2)
        m.weight.data = np.array([[1.0, 2.0], [3.0, 4.5]], dtype=np.float32)
        m.bias.data = np.array([1.0, 2.0], dtype=np.float32)
        report = integer_state_report(m)
        assert report["num_non_integer"] == 1
        assert report["names_non_integer"] == ["weight"]

    def test_all_integer(self):
        from repro import nn
        m = nn.Linear(2, 2, bias=False)
        m.weight.data = np.array([[1.0, -2.0], [0.0, 3.0]], dtype=np.float32)
        report = integer_state_report(m)
        assert report["num_non_integer"] == 0

    def test_no_accum_section_without_input_quant(self):
        from repro import nn
        m = nn.Linear(2, 2, bias=False)
        m.weight.data = np.ones((2, 2), dtype=np.float32)
        assert "accum" not in integer_state_report(m)

    def test_accum_section_on_repacked_model(self):
        from repro import nn
        conv = nn.Conv2d(2, 3, 3, bias=False)
        conv.weight.data = np.ones(conv.weight.shape, dtype=np.float32) * 4
        m = nn.Sequential(InputQuant(0.05, -128, 127), conv)
        report = integer_state_report(m)
        accum = report["accum"]
        assert accum["accum_bits"] == 32
        assert accum["over_limit"] == []
        (bits,) = accum["min_accum_bits"].values()
        # 18 weights of 4 * |x|<=128 -> |acc| <= 9216 -> 15 bits
        assert bits == 15

    def test_accum_over_limit_flagged(self):
        from repro import nn
        conv = nn.Conv2d(2, 3, 3, bias=False)
        conv.weight.data = np.ones(conv.weight.shape, dtype=np.float32) * 4
        m = nn.Sequential(InputQuant(0.05, -128, 127), conv)
        report = integer_state_report(m, accum_bits=12)
        assert report["accum"]["over_limit"]
