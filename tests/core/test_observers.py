"""Range observers for PTQ calibration."""
import numpy as np
import pytest

from repro.core.observer import (
    MinMaxObserver,
    MSEObserver,
    PercentileObserver,
    build_observer,
)


class TestMinMax:
    def test_first_update_initializes(self):
        obs = MinMaxObserver()
        obs.update(np.array([-2.0, 5.0]))
        assert obs.min_val == -2.0 and obs.max_val == 5.0

    def test_ema_smooths(self):
        obs = MinMaxObserver(momentum=0.5)
        obs.update(np.array([0.0, 10.0]))
        obs.update(np.array([0.0, 0.0]))
        assert obs.max_val == pytest.approx(5.0)

    def test_signed_scale_uses_max_abs(self):
        obs = MinMaxObserver()
        obs.update(np.array([-10.0, 3.0]))
        assert obs.compute_scale(-128, 127) == pytest.approx(10 / 127)

    def test_unsigned_scale_uses_max(self):
        obs = MinMaxObserver()
        obs.update(np.array([-10.0, 3.0]))
        assert obs.compute_scale(0, 255) == pytest.approx(3 / 255)


class TestPercentile:
    def test_clips_outliers(self, rng):
        obs = PercentileObserver(percentile=99.0)
        data = rng.standard_normal(10000)
        data[0] = 1000.0  # huge outlier
        obs.update(data)
        scale = obs.compute_scale(-128, 127)
        assert scale < 1.0  # outlier must not blow up the range

    def test_reservoir_bounded(self, rng):
        obs = PercentileObserver(max_samples=1000)
        for _ in range(10):
            obs.update(rng.standard_normal(5000))
        assert obs._count <= 1000 + 5000 // 8


class TestMSE:
    def test_beats_maxabs_with_outliers(self, rng):
        data = rng.standard_normal(4000).astype(np.float32)
        data[:4] = 50.0
        mse_obs = MSEObserver()
        mse_obs.update(data)
        s_mse = float(mse_obs.compute_scale(-8, 7))
        s_naive = float(np.abs(data).max() / 7)

        def err(s):
            return ((np.clip(np.round(data / s), -8, 7) * s - data) ** 2).mean()

        assert err(s_mse) <= err(s_naive)


class TestKL:
    def test_clips_long_tail(self, rng):
        from repro.core.observer import KLObserver
        data = rng.standard_normal(20000).astype(np.float32)
        data[:10] = 80.0  # rare huge outliers
        obs = KLObserver()
        obs.update(data)
        scale = float(obs.compute_scale(-128, 127))
        assert scale * 127 < 40.0  # threshold well inside the outliers

    def test_reasonable_on_gaussian(self, rng):
        from repro.core.observer import KLObserver
        data = rng.standard_normal(20000).astype(np.float32)
        obs = KLObserver()
        obs.update(data)
        scale = float(obs.compute_scale(-128, 127))
        clip = scale * 127
        assert 1.5 < clip < 6.0  # covers the useful mass, not just 1 sigma

    def test_bulk_fidelity_beats_naive(self, rng):
        """KL calibration preserves the distribution *bulk*: on the central
        mass its error is far below the outlier-stretched max-abs grid."""
        from repro.core.observer import KLObserver
        data = np.concatenate([rng.standard_normal(8000),
                               rng.standard_normal(100) * 20]).astype(np.float32)
        bulk = data[np.abs(data) < 3.0]

        def bulk_err(scale):
            q = np.clip(np.round(bulk / scale), -8, 7)
            return ((q * scale - bulk) ** 2).mean()

        kl = KLObserver(); kl.update(data)
        s_kl = float(kl.compute_scale(-8, 7))
        naive = float(np.abs(data).max() / 7)
        assert bulk_err(s_kl) < bulk_err(naive) / 2
        assert s_kl * 7 < naive * 7 / 2  # threshold well inside the outliers


class TestKLDegenerate:
    def test_all_zero_stream(self):
        """An all-zero tensor stream yields an empty histogram; compute_scale
        must fall back gracefully instead of dividing by zero mass."""
        from repro.core.observer import KLObserver
        obs = KLObserver()
        obs.update(np.zeros(4096, dtype=np.float32))
        obs.update(np.zeros(1024, dtype=np.float32))
        scale = float(obs.compute_scale(-128, 127))
        assert np.isfinite(scale) and scale > 0

    def test_constant_tensor_stream(self):
        """A constant stream has all its mass in one histogram bin; the
        threshold must land at (or above) the constant, not inside it."""
        from repro.core.observer import KLObserver
        obs = KLObserver()
        for _ in range(3):
            obs.update(np.full(2048, 2.5, dtype=np.float32))
        scale = float(obs.compute_scale(-128, 127))
        assert np.isfinite(scale) and scale > 0
        # the constant must be representable on the resulting grid
        q = np.clip(np.round(2.5 / scale), -128, 127) * scale
        assert q == pytest.approx(2.5, rel=0.02)

    def test_constant_negative_signed(self):
        from repro.core.observer import KLObserver
        obs = KLObserver()
        obs.update(np.full(2048, -1.25, dtype=np.float32))
        scale = float(obs.compute_scale(-8, 7))
        assert np.isfinite(scale) and scale > 0


class TestPercentileDeterminism:
    def test_reservoir_downsampling_deterministic_under_seed(self, rng):
        """Two observers with the same seed fed the same over-budget stream
        must downsample identically and produce bit-equal scales."""
        stream = [rng.standard_normal(5000).astype(np.float32) for _ in range(8)]
        scales = []
        for _ in range(2):
            obs = PercentileObserver(percentile=99.0, max_samples=1000, seed=7)
            for chunk in stream:
                obs.update(chunk)
            scales.append(float(obs.compute_scale(-128, 127)))
        assert scales[0] == scales[1]

    def test_different_seeds_may_differ_but_agree_statistically(self, rng):
        stream = [rng.standard_normal(5000).astype(np.float32) for _ in range(8)]
        out = []
        for seed in (0, 1):
            obs = PercentileObserver(percentile=99.0, max_samples=1000, seed=seed)
            for chunk in stream:
                obs.update(chunk)
            out.append(float(obs.compute_scale(-128, 127)))
        # reservoirs differ, but both estimate the same 99th percentile
        assert out[0] == pytest.approx(out[1], rel=0.5)


class TestFactory:
    def test_build_all(self):
        for name in ("minmax", "percentile", "mse", "kl"):
            assert build_observer(name) is not None

    def test_unknown_raises(self):
        with pytest.raises(KeyError):
            build_observer("entropy")
