"""Fusion: BN algebra, channel vs prefuse modes, integer==fake-quant."""
import numpy as np
import pytest

from repro.core.fusion import MobileNetFuser, ResNetFuser, build_fuser
from repro.core.qconfig import QConfig
from repro.core.qmodels import QMobileNetV1, QResNet, quantize_model
from repro.core.t2c import T2C, calibrate_model
from repro.tensor import Tensor, no_grad


@pytest.fixture
def calibrated_resnet(resnet20_with_stats, tiny_data):
    train, _ = tiny_data
    qm = quantize_model(resnet20_with_stats, QConfig(wbit=8, abit=8))
    calibrate_model(qm, [train.images[i * 64:(i + 1) * 64] for i in range(4)])
    qm.eval()
    return qm


class TestFusionAlgebra:
    def test_fused_mulquant_reproduces_conv_bn_relu(self, rng):
        """One unit, by hand: int-conv + MulQuant == quantize(relu(bn(conv)))."""
        from repro import nn
        from repro.core.qlayers import QConv2d
        from repro.core.qmodels import QConvBNReLU
        from repro.core.quantizers import MinMaxChannelQuantizer, MinMaxQuantizer

        conv = nn.Conv2d(4, 8, 3, padding=1, bias=False)
        bn = nn.BatchNorm2d(8)
        bn.running_mean.data = rng.standard_normal(8).astype(np.float32) * 0.2
        bn.running_var.data = rng.random(8).astype(np.float32) + 0.5
        bn.weight.data = rng.random(8).astype(np.float32) + 0.5
        bn.bias.data = rng.standard_normal(8).astype(np.float32) * 0.1
        bn.eval()

        aq = MinMaxQuantizer(nbit=8)
        unit = QConvBNReLU(QConv2d.from_float(conv, MinMaxChannelQuantizer(nbit=8), aq), bn, relu=True)
        unit.eval()
        x = Tensor(rng.standard_normal((4, 4, 8, 8)).astype(np.float32))
        with no_grad():
            aq.observer.update(x.data)
            aq.finalize_calibration()
            y_fake = unit(x).data  # train path (fake quant)

        s_next = 0.01
        fuser = ResNetFuser.__new__(ResNetFuser)
        from repro.core.fixed_point import FixedPointFormat
        fuser.fmt, fuser.mode, fuser.float_scale, fuser.headroom = FixedPointFormat(4, 12), "channel", False, 4
        fuser.fuse_unit(unit, s_next, (0.0, 255.0))
        unit.set_deploy(True)
        with no_grad():
            x_int = aq.q(x)
            y_int = unit(x_int).data
        np.testing.assert_allclose(y_int * s_next, np.clip(y_fake, 0, 255 * s_next), atol=1.5 * s_next)

    def test_zero_point_folds_into_bias(self, rng):
        """Asymmetric input grids (paper Eq. 2's Z) deploy exactly: the layer
        subtracts the integer offset before the MACs (zero padding stays
        exact) and the consumer offset rides in the MulQuant bias."""
        from repro import nn
        from repro.core.fixed_point import FixedPointFormat
        from repro.core.qlayers import QConv2d
        from repro.core.qmodels import QConvBNReLU
        from repro.core.quantizers import AsymMinMaxQuantizer, MinMaxChannelQuantizer
        from repro.tensor import no_grad

        conv = nn.Conv2d(4, 6, 3, padding=1, bias=True)
        aq = AsymMinMaxQuantizer(nbit=8)
        unit = QConvBNReLU(QConv2d.from_float(conv, MinMaxChannelQuantizer(nbit=8), aq),
                           bn=None, relu=False)
        unit.eval()
        x = Tensor((rng.standard_normal((4, 4, 8, 8)) * 2 - 1.5).astype(np.float32))
        with no_grad():
            aq.observer.update(x.data)
            aq.finalize_calibration()
            assert float(aq.zero_point.data) > 0  # genuinely asymmetric
            y_fake = unit(x).data

        fuser = ResNetFuser.__new__(ResNetFuser)
        fuser.fmt, fuser.mode, fuser.float_scale, fuser.headroom = \
            FixedPointFormat(4, 12), "channel", False, 4
        s_next = 0.02
        fuser.fuse_unit(unit, s_next, (-(2 ** 20), 2 ** 20))
        unit.set_deploy(True)
        with no_grad():
            x_int = aq.q(x)
            y_int = unit(x_int).data
        np.testing.assert_allclose(y_int * s_next, y_fake, atol=1.5 * s_next)

    def test_prefuse_folds_bn_into_weights(self, calibrated_resnet):
        qm = calibrated_resnet
        T2C(qm, mode="prefuse").fuse()
        # unified scalar scale: MulQuant scale has a single entry
        assert qm.stem.mq.scale.data.size == 1

    def test_channel_mode_keeps_per_channel_scale(self, calibrated_resnet):
        qm = calibrated_resnet
        T2C(qm, mode="channel").fuse()
        assert qm.stem.mq.scale.data.size == qm.stem.conv.out_channels


class TestIntegerEquivalence:
    def _agreement(self, model_fixture, tiny_data, qcfg, mode):
        train, test = tiny_data
        qm = quantize_model(model_fixture, qcfg)
        calibrate_model(qm, [train.images[i * 64:(i + 1) * 64] for i in range(4)])
        qm.eval()
        x = Tensor(test.images[:64])
        with no_grad():
            fq = qm(x).data
        T2C(qm, mode=mode).fuse()
        with no_grad():
            ii = qm(x).data
        corr = np.mean([np.corrcoef(fq[i], ii[i])[0, 1] for i in range(len(fq))])
        return corr

    def test_resnet_channel_mode_high_fidelity(self, resnet20_with_stats, tiny_data):
        corr = self._agreement(resnet20_with_stats, tiny_data, QConfig(8, 8), "channel")
        assert corr > 0.995

    def test_resnet_prefuse_8bit_ok(self, resnet20_with_stats, tiny_data):
        corr = self._agreement(resnet20_with_stats, tiny_data, QConfig(8, 8), "prefuse")
        assert corr > 0.98

    def test_mobilenet_channel_mode(self, mobilenet_with_stats, tiny_data):
        corr = self._agreement(mobilenet_with_stats, tiny_data, QConfig(8, 8), "channel")
        assert corr > 0.85

    def test_sub8bit_channel_beats_prefuse(self, mobilenet_with_stats, tiny_data):
        """The paper's central fusion claim (Park & Yoo 2020): at 4 bits the
        channel-wise scheme must be more faithful than pre-fusing on a
        depthwise network."""
        c_ch = self._agreement(mobilenet_with_stats, tiny_data, QConfig(4, 4), "channel")
        c_pf = self._agreement(mobilenet_with_stats, tiny_data, QConfig(4, 4), "prefuse")
        assert c_ch > c_pf

    def test_integer_outputs_are_integers(self, calibrated_resnet, tiny_data):
        _, test = tiny_data
        T2C(calibrated_resnet).fuse()
        with no_grad():
            out = calibrated_resnet(Tensor(test.images[:8])).data
        np.testing.assert_array_equal(out, np.round(out))


class TestFuserDispatch:
    def test_build_fuser_resnet(self, calibrated_resnet):
        assert isinstance(build_fuser(calibrated_resnet), ResNetFuser)

    def test_build_fuser_mobilenet(self, mobilenet_with_stats):
        qm = quantize_model(mobilenet_with_stats, QConfig(8, 8))
        assert isinstance(build_fuser(qm), MobileNetFuser)

    def test_unknown_model_raises(self):
        from repro import nn
        with pytest.raises(TypeError):
            build_fuser(nn.Linear(2, 2))

    def test_bad_mode_raises(self, calibrated_resnet):
        with pytest.raises(ValueError):
            T2C(calibrated_resnet, mode="magic")
