"""DoReFa quantizers and the observability/analysis tooling."""
import numpy as np
import pytest

from repro.core.analysis import (
    activation_ranges,
    format_report,
    layer_output_sqnr,
    sqnr,
    weight_quant_report,
)
from repro.core.qconfig import QConfig
from repro.core.qmodels import quantize_model
from repro.core.quantizers import DoReFaActQuantizer, DoReFaWeightQuantizer
from repro.core.t2c import calibrate_model
from repro.tensor import Tensor, no_grad


class TestDoReFa:
    def test_weight_output_in_unit_interval(self, rng):
        q = DoReFaWeightQuantizer(nbit=4)
        w = Tensor(rng.standard_normal(500).astype(np.float32) * 3)
        out = q(w).data
        assert np.abs(out).max() <= 1.0 + 1e-6

    def test_weight_dual_path_consistent(self, rng):
        q = DoReFaWeightQuantizer(nbit=4)
        w = Tensor(rng.standard_normal(200).astype(np.float32))
        with no_grad():
            fake = q.trainFunc(w).data
            ints = q.q(w).data
        np.testing.assert_allclose(fake, ints * float(q.scale.data), atol=1e-6)

    def test_weight_grad_flows(self, rng):
        q = DoReFaWeightQuantizer(nbit=4)
        w = Tensor(rng.standard_normal(50).astype(np.float32), requires_grad=True)
        (q(w) ** 2.0).sum().backward()
        assert w.grad is not None and np.abs(w.grad).max() > 0

    def test_act_clipped_to_alpha(self):
        q = DoReFaActQuantizer(nbit=4, alpha=1.0)
        out = q(Tensor(np.array([-1.0, 0.5, 3.0], dtype=np.float32))).data
        assert out.min() >= 0.0 and out.max() <= 1.0

    def test_act_grid_step(self):
        q = DoReFaActQuantizer(nbit=2, alpha=1.0)  # grid {0, 1/3, 2/3, 1}
        out = q(Tensor(np.linspace(0, 1, 100).astype(np.float32))).data
        np.testing.assert_allclose(np.unique(out), [0, 1 / 3, 2 / 3, 1.0], atol=1e-6)


class TestSQNR:
    def test_identical_is_inf(self, rng):
        x = rng.standard_normal(100)
        assert sqnr(x, x) == float("inf")

    def test_known_value(self):
        sig = np.ones(100)
        noisy = np.ones(100) + 0.1
        assert sqnr(sig, noisy) == pytest.approx(20.0, abs=0.1)  # 10log10(1/0.01)

    def test_more_bits_higher_sqnr(self, rng):
        from repro.core.quantizers import MinMaxWeightQuantizer
        w = Tensor(rng.standard_normal(2000).astype(np.float32))
        vals = []
        for nbit in (2, 4, 8):
            q = MinMaxWeightQuantizer(nbit=nbit)
            with no_grad():
                vals.append(sqnr(w.data, q.trainFunc(w).data))
        assert vals[0] < vals[1] < vals[2]


class TestReports:
    @pytest.fixture
    def qmodel(self, resnet20_with_stats, tiny_data):
        train, _ = tiny_data
        qm = quantize_model(resnet20_with_stats, QConfig(4, 4))
        calibrate_model(qm, [train.images[:64]])
        return qm

    def test_weight_report_covers_all_layers(self, qmodel):
        rows = weight_quant_report(qmodel)
        from repro.core.qlayers import QConv2d, QLinear
        n = sum(1 for m in qmodel.modules() if isinstance(m, (QConv2d, QLinear)))
        assert len(rows) == n
        for r in rows:
            assert r["sqnr_db"] > 5.0      # 4-bit weights carry real signal
            assert 0 < r["grid_utilization"] <= 1.0

    def test_activation_ranges_calibrated(self, qmodel):
        rows = activation_ranges(qmodel)
        assert rows
        assert all(r["scale"] > 0 for r in rows)

    def test_activation_ranges_excludes_weight_quantizers(self, qmodel):
        """No row may be any layer's weight quantizer (identity check, not
        name heuristics)."""
        from repro.core.qbase import _QBase
        wq_ids = {id(m.wq) for m in qmodel.modules()
                  if isinstance(getattr(m, "wq", None), _QBase)}
        names = {r["quantizer"] for r in activation_ranges(qmodel)}
        for name, m in qmodel.named_modules():
            if id(m) in wq_ids:
                assert name not in names

    def test_activation_ranges_identity_filter_custom_layout(self):
        """A weight quantizer reachable under a *non*-``.wq`` attribute path
        (custom module layout) must still be excluded, and activation
        quantizers with unusual names must still be included."""
        from repro import nn
        from repro.core.quantizers import MinMaxQuantizer

        class CustomLayer(nn.Module):
            def __init__(self):
                super().__init__()
                self.wq = MinMaxQuantizer(nbit=4)
                # alias the weight quantizer under a second, non-wq name
                self.weight_quant_alias = self.wq
                self.act_quantizer = MinMaxQuantizer(nbit=8, unsigned=True)

            def forward(self, x):
                return x

        m = CustomLayer()
        rows = activation_ranges(m)
        names = {r["quantizer"] for r in rows}
        assert "act_quantizer" in names
        assert "wq" not in names
        assert "weight_quant_alias" not in names

    def test_end_to_end_sqnr(self, qmodel, resnet20_with_stats, tiny_data):
        _, test = tiny_data
        val = layer_output_sqnr(qmodel, resnet20_with_stats, test.images[:32])
        assert val > 3.0  # fake-quant logits track the float logits

    def test_format_report_renders(self, qmodel):
        text = format_report(weight_quant_report(qmodel)[:3])
        assert "sqnr_db" in text and len(text.splitlines()) == 4

    def test_format_empty(self):
        assert "empty" in format_report([])
