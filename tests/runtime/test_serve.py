"""plan.serve() fallback paths, worker-death hardening, telemetry hygiene.

The offline serving contract: every path — shared-memory pool, inline
(``workers < 2``), no-``fork`` platform, oversized batches that skip the
slots — yields *bit-exact* logits in input order; a crashed worker surfaces
as an error naming the lost batches instead of hanging the parent; and the
parent's telemetry switch is untouched no matter which path ran.
"""
from __future__ import annotations

import os
import signal

import numpy as np
import pytest

from repro import telemetry
from repro.runtime import Plan, PlanPool, WorkerDied
from repro.runtime import serve as serve_mod


@pytest.fixture()
def plan_and_batches(deployed_factory):
    d, x, _ = deployed_factory("resnet20")
    plan = Plan.compile(d.qnn)
    batches = [x + np.float32(i) for i in range(6)]
    expected = [plan(b) for b in batches]
    return plan, batches, expected


def _assert_stream_exact(outs, expected):
    assert len(outs) == len(expected)
    for i, (got, want) in enumerate(zip(outs, expected)):
        assert np.array_equal(got, want), f"batch {i} diverges"


def test_inline_path_bit_exact(plan_and_batches):
    """workers < 2 runs everything in-process, exact and in order."""
    plan, batches, expected = plan_and_batches
    for workers in (0, 1):
        _assert_stream_exact(list(plan.serve(batches, workers=workers)),
                             expected)


def test_no_fork_platform_falls_back_inline(plan_and_batches, monkeypatch):
    """Platforms without the fork start method degrade to the inline path."""
    plan, batches, expected = plan_and_batches
    monkeypatch.setattr(serve_mod, "_can_fork", lambda: False)
    _assert_stream_exact(list(plan.serve(batches, workers=4)), expected)


def test_oversized_batches_skip_slots(plan_and_batches):
    """Batches larger than the slots (sized from the first batch) run inline
    in the parent; order and exactness still hold for the mixed stream."""
    plan, batches, _ = plan_and_batches
    big = np.concatenate([batches[0], batches[1]])           # 2x the slot
    mixed = [batches[0], big, batches[2], big + np.float32(1), batches[3]]
    expected = [plan(b) for b in mixed]
    _assert_stream_exact(list(plan.serve(mixed, workers=2)), expected)


def test_worker_death_surfaces_not_hangs(plan_and_batches):
    """SIGKILLing a pool worker mid-stream raises (naming lost batches)
    instead of leaving the parent blocked on the done queue forever."""
    plan, batches, _ = plan_and_batches
    seen = {}
    gen = plan.serve(batches * 5, workers=2,
                     pool_hook=lambda p: seen.setdefault("pool", p))
    first = next(gen)
    assert first is not None and "pool" in seen
    os.kill(seen["pool"].procs[0].pid, signal.SIGKILL)
    with pytest.raises(RuntimeError, match="worker died"):
        for _ in gen:
            pass


def test_pool_wait_one_reports_in_flight():
    """PlanPool.wait_one names the batches lost to a dead worker."""

    class SlowPlan:
        out_features = 2
        model_name = "slow"

        def __call__(self, x):
            import time

            time.sleep(30)  # the parent must not need this to finish
            return np.zeros((x.shape[0], 2), dtype=np.float32)

    pool = PlanPool(SlowPlan(), (2, 3), workers=2)
    try:
        x = np.zeros((2, 3), dtype=np.float32)
        pool.submit(7, x)
        pool.submit(8, x)
        import time

        time.sleep(0.3)  # let the workers pick the tasks up
        for proc in pool.procs:
            proc.kill()
        with pytest.raises(WorkerDied) as err:
            pool.wait_one(timeout=10)
        assert set(err.value.in_flight) == {7, 8}
    finally:
        pool.close()


def test_pool_respawn_recovers():
    """After respawn the pool serves again; in-flight state was dropped."""

    class Doubler:
        out_features = 3
        model_name = "doubler"

        def __call__(self, x):
            return np.asarray(x, dtype=np.float32)[:, :3] * 2

    pool = PlanPool(Doubler(), (4, 3), workers=2)
    try:
        x = np.arange(12, dtype=np.float32).reshape(4, 3)
        pool.submit(0, x)
        seq, y = pool.wait_one(timeout=10)
        assert seq == 0 and np.array_equal(y, x * 2)
        pool.procs[0].kill()
        pool.procs[0].join()
        with pytest.raises(WorkerDied):
            pool.submit(1, x)
            pool.wait_one(timeout=10)
        pool.respawn()
        assert not pool.in_flight and pool.free_slots == pool.nslots
        pool.submit(2, x + 1)
        seq, y = pool.wait_one(timeout=10)
        assert seq == 2 and np.array_equal(y, (x + 1) * 2)
    finally:
        pool.close()


@pytest.mark.parametrize("workers", [0, 2], ids=["inline", "pool"])
def test_serve_preserves_parent_telemetry(plan_and_batches, workers):
    """The worker-side disable is a context-managed guard: after serve()
    completes (either path), the parent's telemetry switch is untouched."""
    plan, batches, expected = plan_and_batches
    prev = telemetry.set_enabled(True)
    try:
        assert telemetry.enabled()
        _assert_stream_exact(list(plan.serve(batches, workers=workers)),
                             expected)
        assert telemetry.enabled(), "plan.serve leaked a telemetry disable"
    finally:
        telemetry.set_enabled(prev)


def test_suppressed_guard_restores_both_states():
    for initial in (True, False):
        prev = telemetry.set_enabled(initial)
        try:
            with telemetry.suppressed():
                assert not telemetry.enabled()
            assert telemetry.enabled() == initial
        finally:
            telemetry.set_enabled(prev)
