"""Shared fixtures for the compiled-runtime suite.

Deployed models are expensive to build (quantize + calibrate + fuse +
re-pack), so one bundle per (model, fusion, scale-mode) configuration is
cached for the whole session and shared by the exactness / determinism /
serving tests.  Everything here runs at CLI scale (narrow widths, 32x32
synthetic inputs); the bit-exactness contract is width-independent.
"""
from __future__ import annotations

from typing import Dict, Tuple

import numpy as np
import pytest

from repro.core import DeploySpec, deploy
from repro.core.qconfig import QConfig
from repro.core.qmodels import quantize_model
from repro.core.t2c import calibrate_model
from repro.models import build_model
from repro.tensor import no_grad
from repro.tensor.tensor import Tensor

#: CPU-sized builds, mirroring repro.cli.MODEL_KWARGS
MODEL_KWARGS = {
    "resnet20": dict(width=8), "resnet18": dict(width=8),
    "resnet50": dict(width=8), "mobilenet-v1": dict(width_mult=0.5),
    "vgg8": dict(width_mult=0.5), "vit-7": dict(embed_dim=64),
}

_CACHE: Dict[Tuple, Tuple] = {}


def pytest_collection_modifyitems(items):
    """Everything under tests/runtime carries the `runtime` marker so the
    suite can be selected (`-m runtime`) or skipped in isolation."""
    for item in items:
        item.add_marker(pytest.mark.runtime)


def _build(model_name: str, fusion: str, float_scale: bool):
    import zlib

    seed = zlib.crc32(repr((model_name, fusion, float_scale)).encode())
    rng = np.random.default_rng(seed)
    kwargs = MODEL_KWARGS.get(model_name, {})
    qm = quantize_model(build_model(model_name, num_classes=10, **kwargs),
                        QConfig(8, 8))
    calibrate_model(qm, [rng.standard_normal((4, 3, 32, 32)).astype(np.float32)
                         for _ in range(2)])
    d = deploy(qm, DeploySpec(fusion=fusion, float_scale=float_scale,
                              runtime="none"))
    x = rng.standard_normal((3, 3, 32, 32)).astype(np.float32)
    with no_grad():
        ref = d.qnn(Tensor(x)).data
    return d, x, ref


@pytest.fixture(scope="session")
def deployed_factory():
    """`get(model, fusion, float_scale) -> (Deployed, batch, tree_logits)`."""
    def get(model_name: str, fusion: str = "channel",
            float_scale: bool = False):
        key = (model_name, fusion, float_scale)
        if key not in _CACHE:
            _CACHE[key] = _build(*key)
        return _CACHE[key]
    return get
