"""CompileError paths: every refusal names the offending module, and the
plan signature is sensitive to every op parameter (no silent collisions)."""
import copy

import numpy as np
import pytest

from repro.runtime.compiler import CompileError, compile_program
from repro.runtime.executor import Plan
from repro.runtime.kernels import MQParams, new_sig
from repro.runtime.program import (ConvMQOp, InputQuantOp, LinearMQOp,
                                   MulQuantOp, ResidualOp)


class TestCompileErrors:
    def test_non_repacked_model_refused(self):
        class NotAModel:
            pass

        with pytest.raises(CompileError, match="NotAModel"):
            compile_program(NotAModel())
        with pytest.raises(CompileError, match="nn2chip"):
            compile_program(object())

    def test_unsupported_architecture_named(self):
        from repro import nn
        from repro.core.vanilla import InputQuant

        class ExoticNet(nn.Module):
            def __init__(self):
                super().__init__()
                self.input_q = InputQuant(scale=0.05, qlb=-128, qub=127)

        with pytest.raises(CompileError) as ei:
            compile_program(ExoticNet())
        assert "ExoticNet" in str(ei.value)
        assert "QResNet" in str(ei.value)  # the refusal lists what IS supported

    def test_unknown_layout_refused(self, deployed_factory):
        d, _, _ = deployed_factory("vgg8")
        with pytest.raises(CompileError, match="diagonal"):
            compile_program(d.qnn, layout="diagonal")

    def test_channel_layout_refused_for_vit(self, deployed_factory):
        d, _, _ = deployed_factory("vit-7")
        with pytest.raises(CompileError, match="QVisionTransformer"):
            compile_program(d.qnn, layout="channel")

    def test_malformed_unit_names_offender(self, deployed_factory):
        d, _, _ = deployed_factory("vgg8")
        qnn = copy.deepcopy(d.qnn)
        # find a conv unit and unwire its MulQuant: the exact state a
        # missed fuse() leaves behind
        victim = next(m for _, m in qnn.named_modules()
                      if hasattr(m, "conv") and getattr(m, "mq", None)
                      is not None)
        name = next(n for n, m in qnn.named_modules() if m is victim)
        victim.mq = None
        with pytest.raises(CompileError) as ei:
            compile_program(qnn)
        assert name in str(ei.value)
        assert "MulQuant" in str(ei.value)

    def test_missing_pool_mq_refused(self, deployed_factory):
        d, _, _ = deployed_factory("vgg8")
        qnn = copy.deepcopy(d.qnn)
        qnn.mq_pool = None
        with pytest.raises(CompileError, match="mq_pool"):
            compile_program(qnn)


def _digest(op):
    h = new_sig()
    op.sig_update(h)
    return h.hexdigest()


def _mq(m=0.5, b=0.0, lo=-128.0, hi=127.0, axis=1):
    return MQParams(np.asarray(m), np.asarray(b), lo, hi, axis)


class TestSignatureSensitivity:
    """Op.sig_update must change whenever any op parameter changes —
    otherwise two different programs could share a signature and the
    determinism/caching contracts would silently lie."""

    def test_input_quant_params(self):
        base = InputQuantOp("in", (0,), 1, scale=0.05, qlb=-128, qub=127)
        assert _digest(base) == _digest(
            InputQuantOp("in", (0,), 1, scale=0.05, qlb=-128, qub=127))
        for variant in (
                InputQuantOp("in", (0,), 1, scale=0.06, qlb=-128, qub=127),
                InputQuantOp("in", (0,), 1, scale=0.05, qlb=-127, qub=127),
                InputQuantOp("in", (0,), 1, scale=0.05, qlb=-128, qub=126),
                InputQuantOp("in2", (0,), 1, scale=0.05, qlb=-128, qub=127),
                InputQuantOp("in", (0,), 2, scale=0.05, qlb=-128, qub=127)):
            assert _digest(variant) != _digest(base)

    def test_mulquant_params(self):
        base = MulQuantOp("q", (1,), 2, _mq())
        assert _digest(base) == _digest(MulQuantOp("q", (1,), 2, _mq()))
        for variant in (MulQuantOp("q", (1,), 2, _mq(m=0.25)),
                        MulQuantOp("q", (1,), 2, _mq(b=1.0)),
                        MulQuantOp("q", (1,), 2, _mq(lo=-64.0)),
                        MulQuantOp("q", (1,), 2, _mq(hi=63.0)),
                        MulQuantOp("q", (2,), 3, _mq())):
            assert _digest(variant) != _digest(base)

    def test_weight_bytes_matter(self):
        w = np.arange(12, dtype=np.float32).reshape(4, 3)
        base = LinearMQOp("fc", (1,), 2, w, _mq())
        assert _digest(base) == _digest(LinearMQOp("fc", (1,), 2, w.copy(),
                                                   _mq()))
        w2 = w.copy()
        w2[0, 0] += 1.0
        assert _digest(LinearMQOp("fc", (1,), 2, w2, _mq())) != _digest(base)

    def test_residual_params(self):
        base = ResidualOp("r", (1, 2), 3, res_scale=2.0, lo=-128, hi=127)
        for variant in (
                ResidualOp("r", (1, 2), 3, res_scale=4.0, lo=-128, hi=127),
                ResidualOp("r", (1, 2), 3, res_scale=2.0, lo=-64, hi=127),
                ResidualOp("r", (2, 1), 3, res_scale=2.0, lo=-128, hi=127)):
            assert _digest(variant) != _digest(base)

    def test_plan_signature_tracks_ops(self, deployed_factory):
        d, _, _ = deployed_factory("vgg8")
        plan = d.plan if d.plan is not None else Plan.compile(d.qnn)
        sig = plan.signature()
        assert sig == plan.signature()  # deterministic
        mutant = copy.deepcopy(plan)
        mq_op = next(op for op in mutant.ops
                     if getattr(op, "mq", None) is not None)
        mq_op.mq.m = mq_op.mq.m * 2.0
        assert mutant.signature() != sig

    def test_conv_certificate_in_signature(self, deployed_factory):
        d, _, _ = deployed_factory("resnet20")
        plan = d.plan if d.plan is not None else Plan.compile(d.qnn)
        conv = next(op for op in plan.ops if isinstance(op, ConvMQOp))
        h1 = new_sig()
        conv.sig_update(h1)
        conv.stride += 1
        h2 = new_sig()
        conv.sig_update(h2)
        conv.stride -= 1
        assert h1.hexdigest() != h2.hexdigest()
