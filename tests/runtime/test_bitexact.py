"""Bit-exactness matrix: every registry model x fusion mode x scale mode.

The compiled plan's contract is *bitwise* equality with the interpreted
deploy model — fast paths are only taken where exactness is proven, so any
single differing ulp is a bug, not noise.  Both register layouts are
checked: the auto-selected one (channel-major + native kernel on CNNs when
available) and the forced pure-numpy batch replication.
"""
from __future__ import annotations

import numpy as np
import pytest

from repro.models import MODELS
from repro.runtime import Plan


@pytest.mark.parametrize("float_scale", [False, True],
                         ids=["fixed-point", "float-scale"])
@pytest.mark.parametrize("fusion", ["channel", "prefuse"])
@pytest.mark.parametrize("model_name", sorted(MODELS))
def test_plan_matches_tree_bitwise(deployed_factory, model_name, fusion,
                                   float_scale):
    d, x, ref = deployed_factory(model_name, fusion, float_scale)
    for layout in ("auto", "batch"):
        plan = Plan.compile(d.qnn, layout=layout)
        out = plan(x)
        assert out.shape == ref.shape and out.dtype == ref.dtype
        assert np.array_equal(ref, out), (
            f"{model_name}/{fusion}/float_scale={float_scale}: plan layout "
            f"{plan.layout!r} diverges from the interpreted tree")


def test_deployed_call_uses_plan(deployed_factory):
    """Deployed.__call__ routes through the compiled plan when present."""
    from repro.core import DeploySpec, deploy
    from repro.core.qconfig import QConfig
    from repro.core.qmodels import quantize_model
    from repro.core.t2c import calibrate_model
    from repro.models import build_model

    d, x, ref = deployed_factory("resnet20")
    assert d.plan is None  # factory compiles with runtime="none"
    rng = np.random.default_rng(0)
    qm = quantize_model(build_model("resnet20", num_classes=10, width=8),
                        QConfig(8, 8))
    calibrate_model(qm, [rng.standard_normal((4, 3, 32, 32)).astype(np.float32)])
    d2 = deploy(qm, DeploySpec(runtime="batch"))
    assert d2.plan is not None and d2.plan.layout == "batch"
    x2 = rng.standard_normal((2, 3, 32, 32)).astype(np.float32)
    assert np.array_equal(d2(x2), d2.plan(x2))
