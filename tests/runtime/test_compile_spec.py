"""CompileSpec: validation, CLI translation, legacy shims and plumbing.

The spec is the *single* compile entry point — ``Plan.compile(qnn, spec)``
and ``DeploySpec.compile`` both route through it, the compiled plan records
it, and the static verifier embeds it in the report.  The legacy ``layout=``
kwarg and ``DeploySpec(runtime="channel"/"batch")`` survive only as
DeprecationWarning shims.
"""
from __future__ import annotations

import argparse
import warnings

import numpy as np
import pytest

from repro.core import DeploySpec, deploy
from repro.core.qconfig import QConfig
from repro.core.qmodels import quantize_model
from repro.core.t2c import calibrate_model
from repro.models import build_model
from repro.runtime import CompileSpec, Plan
from repro.runtime.compiler import CompileError


class TestValidation:
    def test_defaults(self):
        spec = CompileSpec()
        assert spec.fusion == "full" and spec.layout == "auto"
        assert spec.threads == 0 and spec.tile_kc == 0 and spec.tile_oc == 0
        assert spec.im2col_cache

    @pytest.mark.parametrize("bad", [
        dict(fusion="max"), dict(layout="diagonal"), dict(threads=-1),
        dict(threads=257), dict(tile_kc=-1), dict(tile_oc=3),
        dict(tile_oc=16),
    ])
    def test_rejects_bad_values(self, bad):
        with pytest.raises(ValueError):
            CompileSpec(**bad)

    def test_frozen(self):
        with pytest.raises(Exception):
            CompileSpec().fusion = "none"

    def test_evolve_and_json(self):
        spec = CompileSpec().evolve(fusion="requant", threads=2)
        assert spec.fusion == "requant" and spec.threads == 2
        js = spec.to_json()
        assert js == {"fusion": "requant", "layout": "auto", "threads": 2,
                      "tile_kc": 0, "tile_oc": 0, "im2col_cache": True}

    def test_resolution(self):
        assert CompileSpec(threads=4).resolved_threads() == 4
        assert CompileSpec().resolved_threads() >= 1
        assert CompileSpec().tile_bytes() == 512 * 1024
        assert CompileSpec(tile_kc=64).tile_bytes() == 64 * 1024


class TestFromArgs:
    def test_maps_cli_flags(self):
        args = argparse.Namespace(fusion_level="requant", threads=2,
                                  tile_kc=256, tile_oc=8, im2col_cache=False)
        spec = CompileSpec.from_args(args)
        assert spec == CompileSpec(fusion="requant", threads=2, tile_kc=256,
                                   tile_oc=8, im2col_cache=False)

    def test_missing_attrs_keep_defaults(self):
        assert CompileSpec.from_args(argparse.Namespace()) == CompileSpec()

    def test_none_values_keep_defaults(self):
        args = argparse.Namespace(fusion_level=None, threads=None,
                                  tile_kc=None, tile_oc=None,
                                  im2col_cache=None)
        assert CompileSpec.from_args(args) == CompileSpec()

    def test_legacy_runtime_flag_fills_layout(self):
        spec = CompileSpec.from_args(argparse.Namespace(runtime="batch"))
        assert spec.layout == "batch"
        # an explicit --layout wins over the legacy value
        spec = CompileSpec.from_args(
            argparse.Namespace(runtime="batch", layout="channel"))
        assert spec.layout == "channel"
        # the non-layout runtime values are not layouts
        assert CompileSpec.from_args(
            argparse.Namespace(runtime="auto")).layout == "auto"


class TestPlanCompile:
    def test_plan_records_spec(self, deployed_factory):
        d, x, ref = deployed_factory("resnet20")
        spec = CompileSpec(fusion="requant", threads=1)
        plan = Plan.compile(d.qnn, spec)
        assert plan.spec is spec
        assert np.array_equal(plan(x), ref)

    def test_verification_report_embeds_spec(self, deployed_factory):
        d, _, _ = deployed_factory("resnet20")
        spec = CompileSpec(fusion="full", threads=2)
        rep = Plan.compile(d.qnn, spec).verify(input_shape=(3, 32, 32))
        assert rep.ok
        assert rep.to_json()["compile_spec"] == spec.to_json()

    def test_legacy_layout_kwarg_warns_and_routes(self, deployed_factory):
        d, x, ref = deployed_factory("resnet20")
        with pytest.warns(DeprecationWarning, match="CompileSpec.layout"):
            plan = Plan.compile(d.qnn, layout="batch")
        assert plan.layout == "batch" and plan.spec.layout == "batch"
        assert np.array_equal(plan(x), ref)

    def test_legacy_layout_kwarg_rejects_unknown(self, deployed_factory):
        d, _, _ = deployed_factory("resnet20")
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            with pytest.raises(CompileError, match="unknown layout"):
                Plan.compile(d.qnn, layout="sideways")

    def test_spec_path_emits_no_warning(self, deployed_factory):
        d, _, _ = deployed_factory("resnet20")
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            Plan.compile(d.qnn, CompileSpec(layout="batch"))


def _calibrated_vgg(seed=11):
    rng = np.random.default_rng(seed)
    qm = quantize_model(build_model("vgg8", num_classes=10, width_mult=0.5),
                        QConfig(8, 8))
    calibrate_model(qm, [rng.standard_normal((4, 3, 32, 32))
                         .astype(np.float32) for _ in range(2)])
    return qm


class TestDeployPlumbing:
    def test_deploy_spec_carries_compile_spec(self):
        cspec = CompileSpec(fusion="requant", threads=1)
        d = deploy(_calibrated_vgg(), DeploySpec(compile=cspec))
        assert d.plan is not None and d.plan.spec is cspec
        assert d.spec.to_json()["compile"] == cspec.to_json()

    def test_deploy_spec_rejects_non_spec_compile(self):
        with pytest.raises(ValueError, match="CompileSpec"):
            DeploySpec(compile="full")

    def test_legacy_runtime_layout_warns_and_folds(self):
        with pytest.warns(DeprecationWarning, match="compile.layout"):
            d = deploy(_calibrated_vgg(), DeploySpec(runtime="batch"))
        assert d.plan is not None and d.plan.layout == "batch"
