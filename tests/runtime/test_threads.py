"""Thread/tile exactness matrix: any partition, bitwise the same program.

The native kernel's thread pool partitions each conv into disjoint
(sample-block × output-channel-chunk) tasks; the tiling knobs change the
blocking only.  Because the accumulator certificate bounds every partial
sum under the exact-f32 limit, *every* combination must produce outputs
bitwise identical to the unfused single-thread plan — and to the
interpreted tree.
"""
from __future__ import annotations

import numpy as np
import pytest

from repro.runtime import CompileSpec, Plan

SWEEP_MODELS = ("resnet20", "mobilenet-v1", "vgg8")


@pytest.mark.parametrize("model", SWEEP_MODELS)
@pytest.mark.parametrize("threads", [1, 2, 8])
def test_thread_sweep_is_bit_exact(deployed_factory, model, threads):
    d, x, ref = deployed_factory(model)
    plan = Plan.compile(d.qnn, CompileSpec(fusion="full", threads=threads))
    out = plan(x)
    assert np.array_equal(out, ref), (
        f"{model}: fused plan at threads={threads} diverges from the tree")
    base = Plan.compile(d.qnn, CompileSpec(fusion="requant", threads=1))
    assert np.array_equal(base(x), out), (
        f"{model}: threads={threads} diverges from unfused single-thread")


@pytest.mark.parametrize("tile_oc", [4, 8])
@pytest.mark.parametrize("tile_kc", [64, 0])
def test_tile_sweep_is_bit_exact(deployed_factory, tile_oc, tile_kc):
    d, x, ref = deployed_factory("resnet20")
    plan = Plan.compile(d.qnn, CompileSpec(fusion="full", threads=2,
                                           tile_oc=tile_oc, tile_kc=tile_kc))
    assert np.array_equal(plan(x), ref), (
        f"tile_oc={tile_oc} tile_kc={tile_kc} diverges from the tree")


def test_threads_apply_to_batch_layout_replication(deployed_factory):
    # the batch layout ignores the pool (replication kernels run inline)
    # but the spec must still compile and stay exact
    d, x, ref = deployed_factory("resnet20")
    plan = Plan.compile(d.qnn, CompileSpec(fusion="full", threads=8,
                                           layout="batch"))
    assert plan.layout == "batch"
    assert np.array_equal(plan(x), ref)


def test_oversized_thread_count_is_clamped(deployed_factory):
    # the ABI caps workers at 16; a larger spec value must not corrupt
    # results or crash — it clamps
    d, x, ref = deployed_factory("resnet20")
    plan = Plan.compile(d.qnn, CompileSpec(fusion="full", threads=256))
    assert np.array_equal(plan(x), ref)


def test_determinism_across_repeat_calls(deployed_factory):
    d, x, _ = deployed_factory("resnet20")
    plan = Plan.compile(d.qnn, CompileSpec(fusion="full", threads=8))
    outs = [plan(x) for _ in range(3)]
    assert all(np.array_equal(outs[0], o) for o in outs[1:])
