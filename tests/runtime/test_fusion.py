"""Plan-level fusion: legality proofs, bit-exactness, profiler attribution.

The ``full`` fusion level collapses conv → requant → residual chains into
single ``conv_mq_res`` ops.  The contracts under test:

* every fusion level produces *bitwise* identical outputs (the fused
  epilogue replicates the standalone op sequence exactly);
* legality is decided by the liveness oracle — a register with any extra
  reader, or the program output, is never folded away;
* fused programs keep attributing wall time to the original source layers
  (``constituents`` shares sum to 1.0 and the ≥90% wall-attribution
  invariant of the sampled profiler survives fusion).
"""
from __future__ import annotations

import numpy as np
import pytest

from repro.runtime import CompileSpec, Plan
from repro.runtime.fusion import fuse_plan
from repro.runtime.program import (ConvMQOp, ConvMQResOp, MulQuantOp,
                                   ResidualOp)

RESIDUAL_MODELS = ("resnet20", "resnet18")


class TestBitExactAcrossLevels:
    @pytest.mark.parametrize("model", ["resnet20", "mobilenet-v1", "vit-7"])
    @pytest.mark.parametrize("fusion", ["none", "requant", "full"])
    def test_levels_match_tree(self, deployed_factory, model, fusion):
        d, x, ref = deployed_factory(model)
        plan = Plan.compile(d.qnn, CompileSpec(fusion=fusion))
        assert np.array_equal(plan(x), ref), (
            f"{model}: fusion={fusion} plan diverges from the tree")

    @pytest.mark.parametrize("model", RESIDUAL_MODELS)
    def test_full_actually_fuses_residual_chains(self, deployed_factory,
                                                 model):
        d, _, _ = deployed_factory(model)
        plan = Plan.compile(d.qnn, CompileSpec(fusion="full"))
        assert plan.fusion_stats["fused"] > 0
        assert any(isinstance(op, ConvMQResOp) for op in plan.ops)

    def test_requant_level_has_no_fused_residuals(self, deployed_factory):
        d, _, _ = deployed_factory("resnet20")
        plan = Plan.compile(d.qnn, CompileSpec(fusion="requant"))
        assert plan.fusion_stats == {"fused": 0, "folded_smq": 0}
        assert not any(isinstance(op, ConvMQResOp) for op in plan.ops)


class TestFusePassProperties:
    @pytest.fixture(scope="class")
    def base(self, deployed_factory):
        d, x, ref = deployed_factory("resnet20")
        plan = Plan.compile(d.qnn, CompileSpec(fusion="requant"))
        return plan, x, ref

    def test_op_count_shrinks_by_stats(self, base):
        plan, _, _ = base
        ops, stats = fuse_plan(plan.ops, plan.output_reg)
        assert stats["fused"] > 0
        # each fused chain removes the conv; each folded shortcut requant
        # removes its mulquant; the residual slot becomes the fused op
        assert len(ops) == len(plan.ops) - stats["fused"] \
            - stats["folded_smq"]

    def test_eliminated_registers_never_referenced(self, base):
        plan, _, _ = base
        ops, _ = fuse_plan(plan.ops, plan.output_reg)
        written = {op.dst for op in ops}
        eliminated = {op.dst for op in plan.ops} - written
        assert plan.output_reg not in eliminated
        for op in ops:
            assert not (set(op.src) & eliminated), (
                f"{op.name} reads an eliminated register")

    def test_dataflow_stays_closed(self, base):
        plan, _, _ = base
        ops, _ = fuse_plan(plan.ops, plan.output_reg)
        defined = {0}
        for op in ops:
            assert set(op.src) <= defined, f"{op.name}: use before def"
            defined.add(op.dst)
        assert plan.output_reg in defined

    def test_extra_reader_forbids_fusion(self, base):
        plan, _, _ = base
        fused_ops, stats = fuse_plan(plan.ops, plan.output_reg)
        fused_names = {op.name for op in fused_ops
                       if isinstance(op, ConvMQResOp)}
        conv = next(op for op in plan.ops if isinstance(op, ConvMQOp)
                    and op.name in fused_names)
        # tap the conv's destination with a second reader: the liveness
        # oracle must refuse to fold that chain now
        some_mq = next(op.mq for op in plan.ops
                       if isinstance(op, MulQuantOp))
        tap = MulQuantOp("debug.tap", (conv.dst,),
                         max(op.dst for op in plan.ops) + 1, some_mq)
        tapped_ops, tapped_stats = fuse_plan(plan.ops + [tap],
                                             plan.output_reg)
        assert tapped_stats["fused"] <= stats["fused"]
        assert any(isinstance(op, ConvMQOp) and op.name == conv.name
                   for op in tapped_ops), (
            "conv with a second reader was fused away")

    def test_output_register_never_fused(self, base):
        plan, _, _ = base
        # pretend the first fusable conv's destination is the program
        # output: that chain must survive unfused
        fused_ops, _ = fuse_plan(plan.ops, plan.output_reg)
        fused_names = {op.name for op in fused_ops
                       if isinstance(op, ConvMQResOp)}
        conv = next(op for op in plan.ops if isinstance(op, ConvMQOp)
                    and op.name in fused_names)
        ops2, _ = fuse_plan(plan.ops, output_reg=conv.dst)
        assert any(isinstance(op, ConvMQOp) and op.name == conv.name
                   for op in ops2)

    def test_fused_constituent_shares_sum_to_one(self, base):
        plan, _, _ = base
        ops, _ = fuse_plan(plan.ops, plan.output_reg)
        for op in ops:
            parts = op.constituents()
            assert abs(sum(share for _, _, share in parts) - 1.0) < 1e-9
            if isinstance(op, ConvMQResOp):
                kinds = [kind for kind, _, _ in parts]
                assert kinds[0] == "conv_mq" and kinds[-1] == "residual"

    def test_fusion_is_idempotent(self, base):
        plan, _, _ = base
        ops1, stats1 = fuse_plan(plan.ops, plan.output_reg)
        ops2, stats2 = fuse_plan(ops1, plan.output_reg)
        assert stats2 == {"fused": 0, "folded_smq": 0}
        assert len(ops2) == len(ops1)


class TestProfilerAttribution:
    def test_op_report_names_invariant_under_fusion(self, deployed_factory):
        d, x, _ = deployed_factory("resnet20")
        fused = Plan.compile(d.qnn, CompileSpec(fusion="full"))
        unfused = Plan.compile(d.qnn, CompileSpec(fusion="requant"))
        fused(x), unfused(x)
        names = lambda p: {(r["kind"], r["name"]) for r in p.op_report()}
        assert names(fused) == names(unfused)

    def test_op_report_seconds_conserved(self, deployed_factory):
        d, x, _ = deployed_factory("resnet20")
        plan = Plan.compile(d.qnn, CompileSpec(fusion="full"))
        for _ in range(3):
            plan(x)
        rows = plan.op_report()
        total = float(plan._op_seconds.sum())
        assert sum(r["seconds"] for r in rows) == pytest.approx(total)
        assert sum(r["share"] for r in rows) == pytest.approx(1.0)

    def test_sampled_profile_attribution_survives_fusion(
            self, deployed_factory):
        d, x, _ = deployed_factory("resnet20")
        plan = Plan.compile(d.qnn, CompileSpec(fusion="full"))
        assert plan.fusion_stats["fused"] > 0
        prof = plan.enable_profiling(sample_every=1)
        for _ in range(4):
            plan(x)
        rep = prof.report()
        assert rep["sampled_batches"] == 4
        assert rep["attributed_fraction"] >= 0.90, rep["attributed_fraction"]
        per_op = {(r["kind"], r["name"]) for r in rep["per_op"]}
        for op in plan.ops:
            if isinstance(op, ConvMQResOp):
                assert ("residual", op.res_name) in per_op
                if op.smq is not None:
                    assert ("mulquant", op.smq_name) in per_op
