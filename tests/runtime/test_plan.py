"""Plan invariants: determinism, serving, fallbacks, error paths."""
from __future__ import annotations

import os

import numpy as np
import pytest

from repro.runtime import CompileError, Plan
from repro.runtime import ckernel


def test_compile_is_deterministic(deployed_factory):
    """Two compiles of the same model produce the identical program."""
    d, x, _ = deployed_factory("resnet20")
    p1 = Plan.compile(d.qnn)
    p2 = Plan.compile(d.qnn)
    assert p1.signature() == p2.signature()
    assert p1.describe() == p2.describe()
    assert [op.kind for op in p1.ops] == [op.kind for op in p2.ops]
    assert np.array_equal(p1(x), p2(x))


def test_signature_differs_across_models(deployed_factory):
    d1, _, _ = deployed_factory("resnet20")
    d2, _, _ = deployed_factory("vgg8")
    assert Plan.compile(d1.qnn).signature() != Plan.compile(d2.qnn).signature()


def test_serve_shared_memory_roundtrip(deployed_factory):
    """serve(workers=2) shards across the pool and preserves batch order."""
    d, x, _ = deployed_factory("resnet20")
    plan = Plan.compile(d.qnn)
    batches = [x + np.float32(i) for i in range(5)]
    inline = [plan(b) for b in batches]
    served = list(plan.serve(batches, workers=2))
    assert len(served) == len(inline)
    for got, want in zip(served, inline):
        assert np.array_equal(got, want)


def test_serve_inline_fallback(deployed_factory):
    d, x, _ = deployed_factory("resnet20")
    plan = Plan.compile(d.qnn)
    outs = list(plan.serve([x, x], workers=0))
    assert len(outs) == 2 and np.array_equal(outs[0], plan(x))


def test_numpy_fallback_without_ckernel(deployed_factory, monkeypatch):
    """With the kill switch set, auto layout degrades to the bit-exact
    batch replication instead of the native kernel."""
    d, x, ref = deployed_factory("resnet20")
    monkeypatch.setenv("REPRO_NO_CKERNEL", "1")
    ckernel.reset_for_tests()
    try:
        assert ckernel.load() is None
        plan = Plan.compile(d.qnn, layout="auto")
        assert plan.layout == "batch"
        assert np.array_equal(ref, plan(x))
    finally:
        monkeypatch.delenv("REPRO_NO_CKERNEL")
        ckernel.reset_for_tests()


def test_channel_layout_rejects_vit(deployed_factory):
    d, _, _ = deployed_factory("vit-7")
    with pytest.raises(CompileError):
        Plan.compile(d.qnn, layout="channel")


def test_unknown_layout_rejected(deployed_factory):
    d, _, _ = deployed_factory("resnet20")
    with pytest.raises(CompileError):
        Plan.compile(d.qnn, layout="diagonal")


def test_compile_rejects_unfused_model():
    from repro.core.qconfig import QConfig
    from repro.core.qmodels import quantize_model
    from repro.models import build_model

    qm = quantize_model(build_model("resnet20", num_classes=10, width=8),
                        QConfig(8, 8))
    with pytest.raises(CompileError):
        Plan.compile(qm)


def test_op_report_and_reset(deployed_factory):
    d, x, _ = deployed_factory("resnet20")
    plan = Plan.compile(d.qnn)
    plan(x)
    rows = plan.op_report()
    assert rows and all(r["calls"] == 1 for r in rows)
    assert {r["kind"] for r in rows} >= {"conv_mq", "residual", "gap_mq"}
    plan.reset_op_stats()
    assert all(r["calls"] == 0 for r in plan.op_report())
