"""Fig. 3 ablation: fusion modes vs precision (paper §3.2.1).

The workflow figure's underlying claim — validated numerically here — is
that (a) the automatic fusion produces an integer-only model equivalent to
the fake-quant model, and (b) the 8-bit "Pre-Fusing" scheme (fold BN into
weights) destabilizes below 8 bits, while the channel-wise scaling scheme
(MulQuant carries gamma*) keeps working — the reason Torch2Chip supports
both (paper Eq. 14 vs Eq. 15, Park & Yoo 2020).

Sweep: {ResNet-20, MobileNet-V1} x {8, 6, 4 bits} x {channel, prefuse}.
"""
import numpy as np
import pytest

from benchmarks.conftest import EPOCHS, get_or_train, print_table
from repro.core import T2C
from repro.core.qconfig import QConfig
from repro.core.qmodels import quantize_model
from repro.core.t2c import calibrate_model
from repro.models import build_model
from repro.tensor import Tensor, no_grad
from repro.trainer import Trainer, evaluate
from repro.utils import seed_everything

ARCHS = [("resnet20", dict(width=8), 0.1), ("mobilenet-v1", dict(width_mult=1.0), 0.2)]
BITS = (8, 6, 4)


@pytest.fixture(scope="module")
def fp_models(cifar_data):
    train, test = cifar_data
    models = {}
    for arch, kwargs, lr in ARCHS:
        def builder(arch=arch, kwargs=kwargs):
            seed_everything(90)
            return build_model(arch, num_classes=10, **kwargs)

        def factory(arch=arch, kwargs=kwargs, lr=lr):
            m = builder()
            Trainer(m, train, test, epochs=EPOCHS, batch_size=64, lr=lr).fit()
            return m

        models[arch] = get_or_train(f"fig3_{arch}_fp", factory, builder)
    return models


@pytest.fixture(scope="module")
def fig3(fp_models, cifar_data):
    train, test = cifar_data
    results = {}
    rows = []
    for arch, _, _ in ARCHS:
        model = fp_models[arch]
        fp_acc = evaluate(model, test)
        for bits in BITS:
            for mode in ("channel", "prefuse"):
                qm = quantize_model(model, QConfig(bits, bits))
                calibrate_model(qm, [train.images[i * 64:(i + 1) * 64] for i in range(8)])
                fq_acc = evaluate(qm, test)
                T2C(qm, mode=mode).fuse()
                int_acc = evaluate(qm, test)
                results[(arch, bits, mode)] = dict(fp=fp_acc, fq=fq_acc, integer=int_acc)
                rows.append([arch, f"{bits}/{bits}", mode, f"{fq_acc:.4f}",
                             f"{int_acc:.4f}", f"{int_acc - fq_acc:+.4f}"])
    print_table("Fig 3 ablation: fusion mode vs precision",
                ["Model", "W/A", "Fusion", "FakeQuant", "Integer", "Int-FQ gap"], rows)
    return results


class TestFig3Claims:
    def test_8bit_integer_equivalence_both_modes(self, fig3):
        for arch, _, _ in ARCHS:
            for mode in ("channel", "prefuse"):
                r = fig3[(arch, 8, mode)]
                assert abs(r["integer"] - r["fq"]) < 0.04, (arch, mode)

    def test_channel_mode_faithful_at_all_precisions(self, fig3):
        for (arch, bits, mode), r in fig3.items():
            if mode == "channel":
                assert r["integer"] >= r["fq"] - 0.08, (arch, bits)

    def test_prefuse_degrades_sub8bit_on_mobilenet(self, fig3):
        """The depthwise net is where pre-fusing breaks at low precision."""
        gap_pf = fig3[("mobilenet-v1", 4, "prefuse")]["integer"] - fig3[("mobilenet-v1", 4, "prefuse")]["fq"]
        gap_ch = fig3[("mobilenet-v1", 4, "channel")]["integer"] - fig3[("mobilenet-v1", 4, "channel")]["fq"]
        assert gap_ch >= gap_pf - 0.02  # channel at least as faithful

    def test_lower_precision_lower_accuracy(self, fig3):
        for arch, _, _ in ARCHS:
            a8 = fig3[(arch, 8, "channel")]["integer"]
            a4 = fig3[(arch, 4, "channel")]["integer"]
            assert a4 <= a8 + 0.03


def test_fusion_conversion_latency(benchmark, fp_models, cifar_data):
    """pytest-benchmark target: full T2C fuse() of a calibrated ResNet-20."""
    train, _ = cifar_data
    model = fp_models["resnet20"]

    def convert():
        qm = quantize_model(model, QConfig(8, 8))
        calibrate_model(qm, [train.images[:64]])
        T2C(qm).fuse()
        return qm

    benchmark(convert)
