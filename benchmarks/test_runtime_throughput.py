"""Compiled-runtime throughput: fused Plan vs unfused Plan vs module tree.

Full-width ResNet-20 at batch 64 — the deployment-serving workload from the
runtime design brief.  Three contracts:

* the fused default-spec plan is *bitwise* identical to the interpreted
  deploy model AND to the unfused single-thread plan;
* when the native kernel is available the fused plan clears a 4x
  steady-state floor over the tree (raised from the pre-fusion 3x), and the
  unfused baseline still clears the original 3x floor;
* results append to the trajectory in ``benchmarks/BENCH_runtime.json`` —
  prior rows are preserved so the speedup history across PRs stays visible.

The run executes under a telemetry session so the per-op ``plan.<kind>``
spans are recorded in the trace.
"""
from __future__ import annotations

import json
import os
import time

import numpy as np
import pytest

from repro import telemetry
from repro.core import DeploySpec, deploy
from repro.core.qconfig import QConfig
from repro.core.qmodels import quantize_model
from repro.core.t2c import calibrate_model
from repro.models import build_model
from repro.runtime import CompileSpec, Plan, ckernel
from repro.tensor import no_grad
from repro.tensor.tensor import Tensor
from repro.utils import seed_everything

OUT_PATH = os.path.join(os.path.dirname(__file__), "BENCH_runtime.json")

BATCH = 64
WARMUP = 2
TIMED = 5
TREE_TIMED = 2


def _steady_state(fn, x, iters):
    best = float("inf")
    for _ in range(iters):
        t0 = time.perf_counter()
        fn(x)
        best = min(best, time.perf_counter() - t0)
    return best


def test_runtime_throughput():
    seed_everything(0)
    rng = np.random.default_rng(0)
    qm = quantize_model(build_model("resnet20", num_classes=10),
                        QConfig(8, 8))
    calibrate_model(qm, [rng.standard_normal((8, 3, 32, 32)).astype(np.float32)
                         for _ in range(2)])

    with telemetry.TelemetrySession() as session:
        d = deploy(qm, DeploySpec(runtime="auto"))
        plan = d.plan
        x = rng.standard_normal((BATCH, 3, 32, 32)).astype(np.float32)

        with no_grad():
            ref = d.qnn(Tensor(x)).data
        out = plan(x)
        assert out.dtype == ref.dtype and out.shape == ref.shape
        assert np.array_equal(ref, out), "compiled plan diverges bitwise"

        for _ in range(WARMUP):
            plan(x)
        plan.reset_op_stats()
        plan_s = _steady_state(plan, x, TIMED)

        # unfused single-thread baseline: the fused plan must match it
        # bitwise and must not be slower
        base = Plan.compile(d.qnn, CompileSpec(fusion="requant", threads=1))
        assert np.array_equal(base(x), out), (
            "fused plan diverges bitwise from the unfused plan")
        for _ in range(WARMUP):
            base(x)
        base_s = _steady_state(base, x, TIMED)

        def tree(batch):
            with no_grad():
                return d.qnn(Tensor(batch)).data

        tree_s = _steady_state(tree, x, TREE_TIMED)
        trace = telemetry.get_tracer().to_chrome_trace()

    span_names = {ev.get("name", "") for ev in trace.get("traceEvents", [])}
    assert any(n.startswith("plan.") for n in span_names), (
        "per-op plan spans missing from the telemetry trace")

    speedup = tree_s / plan_s
    per_op = [r for r in plan.op_report() if r["calls"] > 0]
    result = {
        "model": "resnet20",
        "layout": plan.layout,
        "batch_size": BATCH,
        "warmup": WARMUP,
        "timed_iters": TIMED,
        "bit_exact": True,
        "plan_ms_per_batch": round(plan_s * 1e3, 3),
        "tree_ms_per_batch": round(tree_s * 1e3, 3),
        "imgs_per_sec": round(BATCH / plan_s, 1),
        "tree_imgs_per_sec": round(BATCH / tree_s, 1),
        "speedup": round(speedup, 2),
        "ckernel": ckernel.available(),
        "compile": plan.spec.to_json(),
        "fusion_stats": plan.fusion_stats,
        "per_op": per_op,
    }
    doc = {
        "model": "resnet20",
        "current": result,
        "baseline_unfused": {
            "plan_ms_per_batch": round(base_s * 1e3, 3),
            "imgs_per_sec": round(BATCH / base_s, 1),
            "speedup": round(tree_s / base_s, 2),
            "compile": base.spec.to_json(),
        },
        "fused_speedup_vs_unfused": round(base_s / plan_s, 3),
        "trajectory": _trajectory() + [{
            "model": "resnet20",
            "layout": plan.layout,
            "imgs_per_sec": round(BATCH / plan_s, 1),
            "plan_ms_per_batch": round(plan_s * 1e3, 3),
            "speedup_vs_tree": round(speedup, 2),
            "compile": plan.spec.to_json(),
        }],
    }
    with open(OUT_PATH, "w") as fh:
        json.dump(doc, fh, indent=2)
        fh.write("\n")

    print(f"\nplan[{plan.layout}] {result['plan_ms_per_batch']} ms/batch "
          f"({result['imgs_per_sec']} imgs/s)  unfused "
          f"{base_s*1e3:.1f} ms/batch  tree "
          f"{result['tree_ms_per_batch']} ms/batch  speedup {speedup:.2f}x")
    for row in sorted(per_op, key=lambda r: -r["seconds"])[:8]:
        print(f"  {row['kind']:<12} {row['seconds']*1e3:8.2f} ms "
              f"({row['calls']} calls)")

    if not ckernel.available():
        pytest.skip("native kernel unavailable: throughput floor not "
                    "applicable to the pure-numpy fallback")
    assert plan.layout == "channel"
    # the unfused baseline keeps the original floor; the fused default
    # must clear a raised one and never lose to its own baseline
    assert tree_s / base_s >= 3.0, (
        f"unfused steady-state speedup {tree_s / base_s:.2f}x below the "
        f"3x floor (plan {base_s*1e3:.1f} ms vs tree {tree_s*1e3:.1f} ms)")
    assert speedup >= 4.0, (
        f"fused steady-state speedup {speedup:.2f}x below the raised 4x "
        f"floor (plan {plan_s*1e3:.1f} ms vs tree {tree_s*1e3:.1f} ms)")
    assert plan_s <= base_s * 1.10, (
        f"fused plan ({plan_s*1e3:.1f} ms) is slower than the unfused "
        f"baseline ({base_s*1e3:.1f} ms) beyond noise")


def _trajectory() -> list:
    """Prior BENCH rows (wrapping the legacy flat layout once)."""
    if not os.path.exists(OUT_PATH):
        return []
    try:
        with open(OUT_PATH) as fh:
            old = json.load(fh)
    except (OSError, ValueError):
        return []
    if isinstance(old.get("trajectory"), list):
        return old["trajectory"]
    if "imgs_per_sec" in old:
        keep = ("model", "layout", "imgs_per_sec", "plan_ms_per_batch",
                "speedup")
        return [{k: old[k] for k in keep if k in old}]
    return []
