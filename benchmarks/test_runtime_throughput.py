"""Compiled-runtime throughput: Plan vs interpreted module tree.

Full-width ResNet-20 at batch 64 — the deployment-serving workload from the
runtime design brief.  The compiled plan must be *bitwise* identical to the
interpreted deploy model, and (when the native kernel is available) at least
3x faster in steady state.  Results land in ``benchmarks/BENCH_runtime.json``
with the per-op breakdown, and the run executes under a telemetry session so
the per-op ``plan.<kind>`` spans are recorded in the trace.
"""
from __future__ import annotations

import json
import os
import time

import numpy as np
import pytest

from repro import telemetry
from repro.core import DeploySpec, deploy
from repro.core.qconfig import QConfig
from repro.core.qmodels import quantize_model
from repro.core.t2c import calibrate_model
from repro.models import build_model
from repro.runtime import ckernel
from repro.tensor import no_grad
from repro.tensor.tensor import Tensor
from repro.utils import seed_everything

OUT_PATH = os.path.join(os.path.dirname(__file__), "BENCH_runtime.json")

BATCH = 64
WARMUP = 2
TIMED = 5
TREE_TIMED = 2


def _steady_state(fn, x, iters):
    best = float("inf")
    for _ in range(iters):
        t0 = time.perf_counter()
        fn(x)
        best = min(best, time.perf_counter() - t0)
    return best


def test_runtime_throughput():
    seed_everything(0)
    rng = np.random.default_rng(0)
    qm = quantize_model(build_model("resnet20", num_classes=10),
                        QConfig(8, 8))
    calibrate_model(qm, [rng.standard_normal((8, 3, 32, 32)).astype(np.float32)
                         for _ in range(2)])

    with telemetry.TelemetrySession() as session:
        d = deploy(qm, DeploySpec(runtime="auto"))
        plan = d.plan
        x = rng.standard_normal((BATCH, 3, 32, 32)).astype(np.float32)

        with no_grad():
            ref = d.qnn(Tensor(x)).data
        out = plan(x)
        assert out.dtype == ref.dtype and out.shape == ref.shape
        assert np.array_equal(ref, out), "compiled plan diverges bitwise"

        for _ in range(WARMUP):
            plan(x)
        plan.reset_op_stats()
        plan_s = _steady_state(plan, x, TIMED)

        def tree(batch):
            with no_grad():
                return d.qnn(Tensor(batch)).data

        tree_s = _steady_state(tree, x, TREE_TIMED)
        trace = telemetry.get_tracer().to_chrome_trace()

    span_names = {ev.get("name", "") for ev in trace.get("traceEvents", [])}
    assert any(n.startswith("plan.") for n in span_names), (
        "per-op plan spans missing from the telemetry trace")

    speedup = tree_s / plan_s
    per_op = [r for r in plan.op_report() if r["calls"] > 0]
    result = {
        "model": "resnet20",
        "layout": plan.layout,
        "batch_size": BATCH,
        "warmup": WARMUP,
        "timed_iters": TIMED,
        "bit_exact": True,
        "plan_ms_per_batch": round(plan_s * 1e3, 3),
        "tree_ms_per_batch": round(tree_s * 1e3, 3),
        "imgs_per_sec": round(BATCH / plan_s, 1),
        "tree_imgs_per_sec": round(BATCH / tree_s, 1),
        "speedup": round(speedup, 2),
        "ckernel": ckernel.available(),
        "per_op": per_op,
    }
    with open(OUT_PATH, "w") as fh:
        json.dump(result, fh, indent=2)
        fh.write("\n")

    print(f"\nplan[{plan.layout}] {result['plan_ms_per_batch']} ms/batch "
          f"({result['imgs_per_sec']} imgs/s)  tree "
          f"{result['tree_ms_per_batch']} ms/batch  speedup {speedup:.2f}x")
    for row in sorted(per_op, key=lambda r: -r["seconds"])[:8]:
        print(f"  {row['kind']:<12} {row['seconds']*1e3:8.2f} ms "
              f"({row['calls']} calls)")

    if not ckernel.available():
        pytest.skip("native kernel unavailable: throughput floor not "
                    "applicable to the pure-numpy fallback")
    assert plan.layout == "channel"
    assert speedup >= 3.0, (
        f"steady-state speedup {speedup:.2f}x below the 3x floor "
        f"(plan {plan_s*1e3:.1f} ms vs tree {tree_s*1e3:.1f} ms)")
