"""Table 2: integer-only DNN zoo on the CIFAR-10 stand-in.

Paper rows (model / method / W-A / accuracy / model size):
  SAWB+PACT ResNet-20 QAT 2/2 + 4/4; RCF ResNet-18 QAT 4/4 + 8/8;
  RCF ViT-7 QAT 8/8; PROFIT MobileNet-V1 QAT 4/4 + 8/8;
  AdaRound MobileNet-V1 PTQ 8/8; PyTorch-style float-scale PTQ 8/8.

Reproduced claims:
  * every QAT config trains to a working model; 8/8 ~= fp; 4/4 within a few
    points; 2/2 degrades the most for its model;
  * integer-only accuracy tracks the fake-quant accuracy for every row;
  * exported model size scales as wbit/32 of the fp32 size;
  * Torch2Chip integer-scale deployment >= the float-scale PyTorch-style
    baseline for MobileNet 8/8.
"""
import numpy as np
import pytest

from benchmarks.conftest import EPOCHS, get_or_train, print_table
from repro.core import T2C
from repro.core.qconfig import QConfig
from repro.export.report import model_size_mb
from repro.models import build_model
from repro.optim import AdamW
from repro.trainer import PTQTrainer, Trainer, evaluate
from repro.trainer.profit import PROFITTrainer
from repro.trainer.qat import QATTrainer
from repro.utils import seed_everything

QAT_ROWS = [
    # (row id, model name, model kwargs, qcfg, trainer kind)
    # "qat-ws" = warm-start QAT from a trained fp32 model: the paper trains
    # 200 epochs from scratch, which the 6-epoch CPU budget cannot match for
    # the deeper ResNet-18 at 4 bits (see DESIGN.md scale note).
    ("SAWB+PACT 2/2", "resnet20", dict(width=8),
     QConfig(2, 2, wq="sawb", aq="pact"), "qat"),
    ("SAWB+PACT 4/4", "resnet20", dict(width=8),
     QConfig(4, 4, wq="sawb", aq="pact"), "qat"),
    ("RCF 4/4", "resnet18", dict(width=8),
     QConfig(4, 4, wq="rcf_weight", aq="rcf_act"), "qat-ws"),
    ("RCF 8/8", "resnet18", dict(width=8),
     QConfig(8, 8, wq="rcf_weight", aq="rcf_act"), "qat-ws"),
    ("RCF ViT-7 8/8", "vit-7", dict(embed_dim=64),
     QConfig(8, 8, wq="rcf_weight", aq="minmax"), "qat-adam"),
    ("PROFIT MobileNet 4/4", "mobilenet-v1", dict(width_mult=1.0),
     QConfig(4, 4, wq="sawb", aq="pact"), "profit"),
    ("PROFIT MobileNet 8/8", "mobilenet-v1", dict(width_mult=1.0),
     QConfig(8, 8, wq="sawb", aq="pact"), "profit"),
]


def _build(model_name, kwargs, seed):
    seed_everything(seed)
    return build_model(model_name, num_classes=10, **kwargs)


def _train_qat(row, cifar_data):
    rid, model_name, kwargs, qcfg, kind = row
    train, test = cifar_data
    seed = abs(hash(rid)) % 1000

    def builder():
        from repro.core.qmodels import quantize_model
        return quantize_model(_build(model_name, kwargs, seed), qcfg)

    def factory():
        model = _build(model_name, kwargs, seed)
        common = dict(train_set=train, test_set=test, epochs=EPOCHS, batch_size=64)
        if kind == "profit":
            t = PROFITTrainer(model, qcfg=qcfg, phases=3, lr=0.2, **common)
        elif kind == "qat-adam":
            from repro.core.qmodels import quantize_model
            qm = quantize_model(model, qcfg)
            opt = AdamW(qm.parameters(), lr=1e-3, weight_decay=0.05)
            t = QATTrainer(qm, optimizer=opt, **common)
        elif kind == "qat-ws":
            fp_epochs = max(EPOCHS // 2, 1)
            Trainer(model, train, test, epochs=fp_epochs, batch_size=64, lr=0.1).fit()
            t = QATTrainer(model, qcfg=qcfg, lr=0.02, **common)
        else:
            t = QATTrainer(model, qcfg=qcfg, lr=0.1, **common)
        t.fit()
        return t.qmodel

    key = "table2_" + rid.lower().replace(" ", "_").replace("/", "-").replace(":", "")
    if kind == "qat-ws":
        key += "_ws"
    return get_or_train(key, factory, builder)


@pytest.fixture(scope="module")
def table2(cifar_data):
    train, test = cifar_data
    results = {}
    rows = []
    for row in QAT_ROWS:
        rid, model_name, kwargs, qcfg, _ = row
        qm = _train_qat(row, cifar_data)
        fq_acc = evaluate(qm, test)
        qnn = T2C(qm).nn2chip()
        int_acc = evaluate(qnn, test)
        fp_model = _build(model_name, kwargs, 0)
        size = model_size_mb(fp_model, qcfg.wbit)
        results[rid] = dict(fq=fq_acc, integer=int_acc, size=size,
                            params=fp_model.num_parameters())
        rows.append([rid, model_name, f"{qcfg.wbit}/{qcfg.abit}",
                     f"{fq_acc:.4f}", f"{int_acc:.4f}", f"{size:.3f}"])

    # PTQ rows on a shared fp32 MobileNet.
    def fp_factory():
        seed_everything(200)
        m = build_model("mobilenet-v1", num_classes=10, width_mult=1.0)
        Trainer(m, train, test, epochs=EPOCHS, batch_size=64, lr=0.2).fit()
        return m

    def fp_builder():
        seed_everything(200)
        return build_model("mobilenet-v1", num_classes=10, width_mult=1.0)

    fp = get_or_train("table2_mobilenet_fp", fp_factory, fp_builder)
    fp_acc = evaluate(fp, test)
    for rid, qcfg, reconstruct, float_scale, mode in [
        ("AdaRound PTQ 8/8", QConfig(8, 8, wq="adaround"), True, False, "channel"),
        ("PyTorch-style PTQ 8/8", QConfig(8, 8), False, True, "prefuse"),
    ]:
        qm = PTQTrainer(fp, train, qcfg=qcfg, calib_batches=8, batch_size=64,
                        reconstruct=reconstruct, recon_iters=80).fit()
        fq_acc = evaluate(qm, test)
        T2C(qm, mode=mode, float_scale=float_scale).fuse()
        int_acc = evaluate(qm, test)
        size = model_size_mb(fp, qcfg.wbit)
        results[rid] = dict(fq=fq_acc, integer=int_acc, size=size, fp=fp_acc)
        rows.append([rid, "mobilenet-v1", "8/8", f"{fq_acc:.4f}", f"{int_acc:.4f}", f"{size:.3f}"])

    print_table("Table 2: CIFAR-10 (synthetic) integer-only DNN zoo",
                ["Method", "Model", "W/A", "FakeQuant", "Integer", "Size(MB)"], rows)
    return results


class TestTable2Claims:
    def test_all_rows_learned(self, table2):
        for rid, r in table2.items():
            assert r["integer"] > 0.4, f"{rid} failed to learn (acc={r['integer']})"

    def test_integer_tracks_fakequant(self, table2):
        for rid, r in table2.items():
            # 2-bit grids leave sub-LSB residual effects a larger relative
            # footprint; the deployment claim is correspondingly looser there.
            tol = 0.2 if "2/2" in rid else 0.08
            assert abs(r["fq"] - r["integer"]) < tol, f"{rid} integer path diverged"

    def test_2bit_worse_than_4bit(self, table2):
        assert table2["SAWB+PACT 2/2"]["integer"] <= table2["SAWB+PACT 4/4"]["integer"] + 0.02

    def test_8bit_at_least_4bit(self, table2):
        assert table2["RCF 8/8"]["integer"] >= table2["RCF 4/4"]["integer"] - 0.03
        assert (table2["PROFIT MobileNet 8/8"]["integer"]
                >= table2["PROFIT MobileNet 4/4"]["integer"] - 0.03)

    def test_model_size_scales_with_bits(self, table2):
        assert table2["SAWB+PACT 2/2"]["size"] == pytest.approx(
            table2["SAWB+PACT 4/4"]["size"] / 2, rel=0.01)
        assert table2["RCF 4/4"]["size"] == pytest.approx(
            table2["RCF 8/8"]["size"] / 2, rel=0.01)

    def test_t2c_integer_competitive_with_float_scale_baseline(self, table2):
        assert (table2["AdaRound PTQ 8/8"]["integer"]
                >= table2["PyTorch-style PTQ 8/8"]["integer"] - 0.02)


def test_qat_epoch_throughput(benchmark, cifar_data):
    """pytest-benchmark target: one QAT optimization step (train path)."""
    from repro.core.qmodels import quantize_model
    from repro.optim import SGD
    from repro.tensor import Tensor
    from repro.tensor import functional as F

    train, _ = cifar_data
    seed_everything(0)
    qm = quantize_model(build_model("resnet20", num_classes=10, width=8),
                        QConfig(4, 4, wq="sawb", aq="pact"))
    opt = SGD(qm.parameters(), lr=0.1, momentum=0.9)
    qm.train()
    x, y = train.images[:64], train.labels[:64]

    def step():
        opt.zero_grad()
        F.cross_entropy(qm(Tensor(x)), y).backward()
        opt.step()

    benchmark(step)
