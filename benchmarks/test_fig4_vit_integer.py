"""Fig. 4 ablation: integer-only ViT with LUT non-linearities (paper §3.2.2).

Validates the quantized-attention workflow of Fig. 4 numerically:
  * integer-only ViT (LUT softmax + LUT GELU) tracks the fake-quant model;
  * LUT probability resolution sweep: more bits -> closer to float softmax,
    with accuracy saturating around 8 bits;
  * LayerNorm statistics mode: pre-computed running stats (fully integer,
    lower latency on hardware) costs a modest accuracy delta vs instant
    statistics.
"""
import numpy as np
import pytest

from benchmarks.conftest import get_or_train, print_table
from repro.core import T2C
from repro.core.lut import lut_softmax_reference_error
from repro.core.qconfig import QConfig
from repro.core.qmodels import quantize_model
from repro.core.t2c import calibrate_model
from repro.models import build_model
from repro.optim import AdamW
from repro.trainer import Trainer, evaluate
from repro.utils import seed_everything

VIT_EPOCHS = 5


def _train_vit(cifar_data, ln_running_stats, key):
    train, test = cifar_data

    def builder():
        seed_everything(95)
        return build_model("vit-7", num_classes=10, embed_dim=64,
                           ln_running_stats=ln_running_stats)

    def factory():
        m = builder()
        opt = AdamW(m.parameters(), lr=1e-3, weight_decay=0.05)
        Trainer(m, train, test, epochs=VIT_EPOCHS, batch_size=50, optimizer=opt).fit()
        return m

    return get_or_train(key, factory, builder)


@pytest.fixture(scope="module")
def vit_instant(cifar_data):
    return _train_vit(cifar_data, False, "fig4_vit_instant")


@pytest.fixture(scope="module")
def vit_running(cifar_data):
    return _train_vit(cifar_data, True, "fig4_vit_running")


@pytest.fixture(scope="module")
def fig4(vit_instant, vit_running, cifar_data):
    train, test = cifar_data
    results = {}
    rows = []
    for label, model in (("instant-LN", vit_instant), ("running-LN", vit_running)):
        fp_acc = evaluate(model, test)
        results[(label, "fp")] = fp_acc
        for prob_bits in (2, 4, 8, 12):
            qm = quantize_model(model, QConfig(8, 8, prob_bits=prob_bits))
            calibrate_model(qm, [train.images[i * 64:(i + 1) * 64] for i in range(8)])
            fq = evaluate(qm, test)
            T2C(qm).fuse()
            ii = evaluate(qm, test)
            results[(label, prob_bits)] = dict(fq=fq, integer=ii)
            rows.append([label, prob_bits, f"{fp_acc:.4f}", f"{fq:.4f}", f"{ii:.4f}"])
    print_table("Fig 4 ablation: integer-only ViT-7 (8/8) with LUT softmax/GELU",
                ["LayerNorm", "prob bits", "fp32", "FakeQuant", "Integer"], rows)
    return results


class TestFig4Claims:
    def test_integer_vit_tracks_fakequant_at_8bit_lut(self, fig4):
        for label in ("instant-LN", "running-LN"):
            r = fig4[(label, 8)]
            assert abs(r["integer"] - r["fq"]) < 0.06, label

    def test_lut_resolution_matters(self, fig4):
        """2-bit probability LUT must hurt vs 8-bit."""
        for label in ("instant-LN", "running-LN"):
            assert fig4[(label, 2)]["integer"] <= fig4[(label, 8)]["integer"] + 0.02

    def test_lut_saturates_by_8_bits(self, fig4):
        for label in ("instant-LN", "running-LN"):
            assert abs(fig4[(label, 12)]["integer"] - fig4[(label, 8)]["integer"]) < 0.05

    def test_both_ln_modes_deployable(self, fig4):
        assert fig4[("running-LN", 8)]["integer"] > 0.5
        assert fig4[("instant-LN", 8)]["integer"] > 0.5

    def test_lut_softmax_error_decreases_with_bits(self):
        errs = [lut_softmax_reference_error(0.05, pb) for pb in (2, 4, 8, 12)]
        assert errs[0] > errs[1] > errs[2] > errs[3]


def test_integer_vit_inference_latency(benchmark, vit_instant, cifar_data):
    """pytest-benchmark target: integer-only ViT forward (LUT path)."""
    from repro.tensor import Tensor, no_grad

    train, test = cifar_data
    qm = quantize_model(vit_instant, QConfig(8, 8))
    calibrate_model(qm, [train.images[:64]])
    T2C(qm).fuse()
    x = Tensor(test.images[:32])

    def run():
        with no_grad():
            return qm(x)

    benchmark(run)
