"""Table 1: PTQ ResNet-50 on the ImageNet stand-in.

Paper rows:
  AIMET  (AdaRound, 8/8, float scales)      75.45 (-0.55)
  OpenVINO (MinMax, 8/8, float scales)      75.98 (+0.02)
  Torch2Chip (QDrop, 4/4, INT(12,4))        74.40 (-1.60)
  Torch2Chip (QDrop, 8/8, INT(12,4))        75.96 (-0.04)

Reproduced claims (shape, not absolutes — see DESIGN.md):
  * every 8/8 recipe is within ~2 points of the fp32 baseline;
  * QDrop 4/4 degrades by a small-but-visible margin (more than 8/8);
  * Torch2Chip's INT16 fixed-point scales cost essentially nothing compared
    to float scales at 8/8 while being hardware-deployable.
"""
import numpy as np
import pytest

from benchmarks.conftest import EPOCHS, get_or_train, print_table
from repro.core import T2C
from repro.core.qconfig import QConfig
from repro.models import build_model
from repro.tensor import Tensor, no_grad
from repro.trainer import PTQTrainer, Trainer, evaluate
from repro.utils import seed_everything


def _builder():
    seed_everything(50)
    return build_model("resnet50", num_classes=20, width=8)


@pytest.fixture(scope="module")
def fp_model(imagenet_data):
    train, test = imagenet_data

    def factory():
        model = _builder()
        Trainer(model, train, test, epochs=EPOCHS, batch_size=64, lr=0.1).fit()
        return model

    return get_or_train("table1_resnet50_fp", factory, _builder)


ROWS = [
    ("AIMET AdaRound", QConfig(8, 8, wq="adaround", aq="minmax"), True, True),
    ("OpenVINO MinMax", QConfig(8, 8, wq="minmax_channel", aq="minmax"), False, True),
    ("T2C QDrop 4/4", QConfig(4, 4, wq="adaround", aq="qdrop"), True, False),
    ("T2C QDrop 8/8", QConfig(8, 8, wq="adaround", aq="qdrop"), True, False),
]


from benchmarks.conftest import apply_first_last_8bit as _apply_first_last_8bit


@pytest.fixture(scope="module")
def table1(fp_model, imagenet_data):
    train, test = imagenet_data
    fp_acc = evaluate(fp_model, test)
    results = {"fp32": fp_acc}
    for name, qcfg, reconstruct, float_scale in ROWS:
        from repro.core.qmodels import quantize_model

        qm = quantize_model(fp_model, qcfg)
        if qcfg.wbit < 8:
            _apply_first_last_8bit(qm)
        qm = PTQTrainer(qm, train, calib_batches=6, batch_size=64,
                        reconstruct=reconstruct, recon_iters=60).fit()
        T2C(qm, float_scale=float_scale).fuse()
        results[name] = evaluate(qm, test)
    rows = [["fp32 baseline", "-", "-", f"{fp_acc:.4f}", "-"]]
    for name, qcfg, _, float_scale in ROWS:
        acc = results[name]
        rows.append([name, f"{qcfg.wbit}/{qcfg.abit}",
                     "Float" if float_scale else "INT(12,4)",
                     f"{acc:.4f}", f"{acc - fp_acc:+.4f}"])
    print_table("Table 1: ImageNet-1K (synthetic) PTQ ResNet-50",
                ["Toolkit/Method", "W/A", "Scale&Bias", "Accuracy", "Delta"], rows)
    return results


class TestTable1Claims:
    def test_8bit_recipes_near_fp(self, table1):
        fp = table1["fp32"]
        for name in ("AIMET AdaRound", "OpenVINO MinMax", "T2C QDrop 8/8"):
            assert table1[name] >= fp - 0.03, f"{name} degraded too much"

    def test_4bit_degrades_more_than_8bit(self, table1):
        assert table1["T2C QDrop 4/4"] <= table1["T2C QDrop 8/8"] + 0.01

    def test_4bit_still_usable(self, table1):
        # The paper's QDrop 4/4 loses 1.6 points with 20k reconstruction
        # iterations per block on 1024 calibration images; at this substrate's
        # budget (60 iters, 384 images) the 4/4 row keeps an order of
        # magnitude above chance (20 classes -> 0.05) and improves
        # monotonically with reconstruction fidelity (see EXPERIMENTS.md).
        assert table1["T2C QDrop 4/4"] >= 0.35

    def test_fixed_point_scales_match_float(self, fp_model, imagenet_data):
        """INT16 scales vs float scales, same quantized model: ~no cost."""
        train, test = imagenet_data
        qm = PTQTrainer(fp_model, train, qcfg=QConfig(8, 8), calib_batches=8,
                        batch_size=64).fit()
        T2C(qm, float_scale=True).fuse()
        acc_float = evaluate(qm, test)
        qm2 = PTQTrainer(fp_model, train, qcfg=QConfig(8, 8), calib_batches=8,
                         batch_size=64).fit()
        T2C(qm2, float_scale=False).fuse()
        acc_fixed = evaluate(qm2, test)
        assert abs(acc_float - acc_fixed) <= 0.02


def test_integer_inference_throughput(benchmark, fp_model, imagenet_data):
    """pytest-benchmark target: deployed integer-only forward pass."""
    train, test = imagenet_data
    qm = PTQTrainer(fp_model, train, qcfg=QConfig(8, 8), calib_batches=4,
                    batch_size=64).fit()
    qnn = T2C(qm).nn2chip()
    x = Tensor(test.images[:32])

    def run():
        with no_grad():
            return qnn(x)

    benchmark(run)
