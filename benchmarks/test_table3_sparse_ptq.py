"""Table 3: sparse + low-precision ResNet-50 (synthetic ImageNet stand-in).

Paper rows:
  GraNet 80% + PTQ 8/8  -> 75.15 (-0.85)
  GraNet 80% + PTQ 4/4  -> 73.38 (-2.62)
  N:M 2:4   + PTQ 8/8   -> 75.44 (-0.75)
  N:M 2:4   + PTQ 4/4   -> 74.16 (-1.84)

Reproduced claims:
  * gradual sparsification from scratch hits the target sparsity while
    training to a working model;
  * PTQ on the sparse model loses little at 8/8 and more at 4/4;
  * pruned weights survive as raw zeros in the exported integer tensors
    (sparsity is *in* the deployed model, not a side mask).
"""
import numpy as np
import pytest

from benchmarks.conftest import apply_first_last_8bit, cache_path, get_or_train, print_table

#: sparse-training epochs (the cubic ramp reaches the target by the end).
#: Sparse training warm-starts from the dense fp32 checkpoint (shared with
#: Table 1): the paper prunes over a 200-epoch from-scratch schedule, which
#: the CPU budget cannot match — pruning while fine-tuning a trained dense
#: model preserves the claims under test (sparsity reached, zeros exported,
#: 8/8 near-lossless, 4/4 degrading more).
EPOCHS = 4
from repro.core import T2C
from repro.core.qconfig import QConfig
from repro.models import build_model
from repro.trainer import PTQTrainer, SparseTrainer, evaluate
from repro.utils import seed_everything

CONFIGS = [
    ("GraNet 80%", "granet", dict(sparsity=0.8), 0.8),
    ("N:M 2:4", "nm", dict(n=2, m=4), 0.5),
]


def _builder(seed):
    def build():
        seed_everything(seed)
        return build_model("resnet50", num_classes=20, width=8)
    return build


def integer_sparsity(qnn) -> float:
    ws = [p.data for n, p in qnn.named_parameters()
          if n.endswith("weight") and p.data.ndim == 4]
    total = sum(w.size for w in ws)
    return sum(int((w == 0).sum()) for w in ws) / total


def _load_dense_checkpoint(model):
    """Warm-start from Table 1's dense fp32 ResNet-50 if it is cached."""
    import os

    path = cache_path("table1_resnet50_fp")
    if os.path.exists(path):
        data = np.load(path)
        model.load_state_dict({k: data[k] for k in data.files}, strict=False)
    return model


@pytest.fixture(scope="module")
def sparse_models(imagenet_data):
    train, test = imagenet_data
    out = {}
    for rid, pruner, pk, target in CONFIGS:
        seed = 60 + len(rid)

        def factory(pruner=pruner, pk=pk, seed=seed):
            model = _load_dense_checkpoint(_builder(seed)())
            t = SparseTrainer(model, pruner=pruner, pruner_kwargs=pk,
                              train_set=train, test_set=test, epochs=EPOCHS,
                              batch_size=64, lr=0.05, update_every=10)
            t.fit()
            return model

        key = "table3v2_" + rid.lower().replace(" ", "_").replace(":", "").replace("%", "")
        out[rid] = get_or_train(key, factory, _builder(seed))
    return out


@pytest.fixture(scope="module")
def table3(sparse_models, imagenet_data):
    train, test = imagenet_data
    results = {}
    rows = []
    for rid, pruner, pk, target in CONFIGS:
        model = sparse_models[rid]
        fp_acc = evaluate(model, test)
        for wbit in (8, 4):
            if wbit < 8:
                # sub-8-bit on a deep bottleneck net: QDrop protocol
                # (AdaRound + QDrop, block reconstruction, first/last at 8b)
                from repro.core.qmodels import quantize_model

                qm = quantize_model(model, QConfig(4, 4, wq="adaround", aq="qdrop"))
                apply_first_last_8bit(qm)
                qm = PTQTrainer(qm, train, calib_batches=6, batch_size=64,
                                reconstruct=True, recon_iters=60).fit()
            else:
                qm = PTQTrainer(model, train, qcfg=QConfig(wbit, wbit),
                                calib_batches=8, batch_size=64).fit()
            qnn = T2C(qm).nn2chip()
            acc = evaluate(qnn, test)
            spars = integer_sparsity(qnn)
            key = f"{rid} {wbit}/{wbit}"
            results[key] = dict(acc=acc, fp=fp_acc, sparsity=spars, target=target)
            rows.append([rid, f"{wbit}/{wbit}", f"{target:.0%}", f"{spars:.2%}",
                         f"{acc:.4f}", f"{acc - fp_acc:+.4f}"])
    print_table("Table 3: sparse + quantized ResNet-50 (synthetic ImageNet)",
                ["Method", "W/A", "Target sparsity", "Integer sparsity", "Acc", "Delta vs sparse-fp32"],
                rows)
    return results


class TestTable3Claims:
    def test_8bit_close_to_sparse_fp(self, table3):
        for rid, _, _, _ in CONFIGS:
            r = table3[f"{rid} 8/8"]
            assert r["acc"] >= r["fp"] - 0.04, f"{rid} 8/8 dropped too far"

    def test_4bit_degrades_more(self, table3):
        for rid, _, _, _ in CONFIGS:
            assert table3[f"{rid} 4/4"]["acc"] <= table3[f"{rid} 8/8"]["acc"] + 0.02

    def test_zeros_survive_into_integer_model(self, table3):
        for key, r in table3.items():
            assert r["sparsity"] >= r["target"] * 0.9, f"{key}: zeros lost in deployment"

    def test_sparse_models_learned(self, table3):
        for key, r in table3.items():
            assert r["fp"] > 0.4


def test_sparse_mask_update_throughput(benchmark, imagenet_data):
    """pytest-benchmark target: one GraNet mask update on ResNet-50."""
    from repro.pruning import GraNetPruner
    seed_everything(0)
    model = build_model("resnet50", num_classes=20, width=8)
    pruner = GraNetPruner(model, sparsity=0.8)
    grads = {n: np.random.default_rng(0).standard_normal(p.data.shape).astype(np.float32)
             for n, p in pruner.targets}

    benchmark(lambda: pruner.step(0.7, grads=grads))
