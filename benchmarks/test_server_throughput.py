"""Online-gateway throughput: Poisson open-loop load vs raw plan rate.

The serving acceptance bar from the runtime design brief: offered load at
80% of the raw compiled-plan throughput must be *sustained* — >= 70% of raw
answered, p99 latency under the per-request deadline, zero failures, every
answer bitwise identical to single-sample execution on the interpreted
tree.  Results land in ``benchmarks/BENCH_server.json`` via the same
``repro.cli serve-bench`` path a user would run, so the recorded numbers
are exactly what the CLI reports (and directly comparable to
``BENCH_runtime.json`` — shared percentile summary).

Open-loop caveat: ``achieved_rate = ok / wall`` includes the tail drain
after the last arrival, which dilutes the rate at small request counts; the
run is sized (1000 requests) so that dilution stays well under the margin
between the 80% offered and the 70% floor.
"""
from __future__ import annotations

import json
import os

from repro import cli

OUT_PATH = os.path.join(os.path.dirname(__file__), "BENCH_server.json")

REQUESTS = 1000
RATE_FRACTION = 0.8
SUSTAIN_FLOOR = 0.7
DEADLINE_MS = 250.0


def test_server_throughput():
    rc = cli.main([
        "serve-bench", "--model", "resnet20",
        "--requests", str(REQUESTS),
        "--rate-fraction", str(RATE_FRACTION),
        "--deadline-ms", str(DEADLINE_MS),
        "--out", OUT_PATH,
    ])
    assert rc == 0, "serve-bench reported failures or bitwise mismatches"

    with open(OUT_PATH) as fh:
        result = json.load(fh)
    gw = result["gateway"]

    print(f"\nraw plan {result['raw_imgs_per_sec']} imgs/s  offered "
          f"{gw['offered_rate_hz']} req/s "
          f"({result['rate_fraction_of_raw']:.0%} of raw)  answered "
          f"{gw['achieved_rate_hz']} req/s "
          f"({result['sustained_fraction_of_raw']:.0%} of raw)")
    print(f"latency p50 {gw['latency_ms']['p50']}  p95 "
          f"{gw['latency_ms']['p95']}  p99 {gw['latency_ms']['p99']} ms  "
          f"deadline {gw['deadline_ms']:.0f} ms  mean batch "
          f"{gw['mean_batch_size']}")

    assert gw["bit_exact"] is True, (
        f"{gw['mismatches']} responses diverged from single-sample tree")
    assert gw["failed"] == 0, f"{gw['failed']} requests failed outright"
    assert gw["requests"] == REQUESTS
    assert gw["latency_ms"]["p99"] < DEADLINE_MS, (
        f"p99 {gw['latency_ms']['p99']} ms blows the {DEADLINE_MS} ms "
        f"deadline")
    assert result["sustained_fraction_of_raw"] >= SUSTAIN_FLOOR, (
        f"gateway sustained only {result['sustained_fraction_of_raw']:.0%} "
        f"of raw at {result['rate_fraction_of_raw']:.0%} offered "
        f"(shed={gw['shed']})")
