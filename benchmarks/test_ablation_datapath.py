"""Ablations of the deployment-datapath design choices (DESIGN.md).

Three decisions the integer path depends on, each swept here:

1. **MulQuant power-of-two multiplier normalization** — without the shift,
   fused scales (~1e-3) underflow the INT(4,12) grid and per-layer error
   explodes.
2. **Residual pre-add domain refinement (res_shift)** — adding residual
   branches directly on the consumer activation grid costs up to a full LSB
   per junction; a 16x finer pre-add domain recovers fake-quant fidelity at
   4-bit.
3. **Fixed-point format width sweep** — INT(4,12) vs coarser formats, i.e.
   the paper's "user-defined integer and fractional precision" knob.
"""
import numpy as np
import pytest

from benchmarks.conftest import get_or_train, print_table
from repro.core import T2C
from repro.core.fixed_point import FixedPointFormat
from repro.core.mulquant import MulQuant
from repro.core.qconfig import QConfig
from repro.core.qmodels import quantize_model
from repro.core.t2c import calibrate_model
from repro.models import build_model
from repro.tensor import Tensor
from repro.trainer import Trainer, evaluate
from repro.utils import seed_everything


@pytest.fixture(scope="module")
def fp_resnet(cifar_data):
    train, test = cifar_data

    def builder():
        seed_everything(90)
        return build_model("resnet20", num_classes=10, width=8)

    def factory():
        m = builder()
        Trainer(m, train, test, epochs=6, batch_size=64, lr=0.1).fit()
        return m

    return get_or_train("fig3_resnet20_fp", factory, builder)


def _deploy_acc(model, cifar_data, wbit, res_shift=4, fmt=None):
    train, test = cifar_data
    qm = quantize_model(model, QConfig(wbit, wbit))
    calibrate_model(qm, [train.images[i * 64:(i + 1) * 64] for i in range(8)])
    fq = evaluate(qm, test)
    from repro.core.fusion import build_fuser
    fuser = build_fuser(qm, fmt=fmt or FixedPointFormat(4, 12), res_shift=res_shift)
    t2c = T2C(qm, fuser=fuser)
    t2c.fuse()
    return fq, evaluate(qm, test)


class TestResShiftAblation:
    def test_fine_pre_add_domain_recovers_4bit_fidelity(self, fp_resnet, cifar_data):
        rows = []
        accs = {}
        for shift in (0, 2, 4):
            fq, ii = _deploy_acc(fp_resnet, cifar_data, wbit=4, res_shift=shift)
            accs[shift] = ii
            rows.append([f"res_shift={shift} ({1 << shift}x)", f"{fq:.4f}", f"{ii:.4f}",
                         f"{ii - fq:+.4f}"])
        print_table("Ablation: residual pre-add domain refinement (ResNet-20, 4/4)",
                    ["config", "FakeQuant", "Integer", "gap"], rows)
        assert accs[4] >= accs[0], "finer pre-add domain must not hurt"
        assert accs[4] >= accs[0] + 0.02 or accs[0] > accs[4] - 0.02


class TestMultiplierNormalization:
    def test_without_shift_tiny_scales_collapse(self, rng):
        """Direct MulQuant-level ablation: encode a typical fused scale with
        and without the power-of-two normalization."""
        scale = 0.0017
        acc = rng.integers(-5000, 5000, 2000).astype(np.float32)
        ref = np.round(acc.astype(np.float64) * scale)

        normalized = MulQuant(scale, fmt=FixedPointFormat(4, 12))
        err_norm = np.abs(normalized(Tensor(acc)).data - ref).mean()

        raw = MulQuant(scale, fmt=FixedPointFormat(4, 12))
        raw.shift = 0  # disable the normalization
        from repro.core.fixed_point import to_fixed_point
        raw.scale.data = to_fixed_point(np.atleast_1d(scale), raw.fmt)
        err_raw = np.abs(raw(Tensor(acc)).data - ref).mean()

        print(f"\nAblation: multiplier normalization: err(normalized)={err_norm:.3f} "
              f"err(raw)={err_raw:.3f}")
        assert err_norm < err_raw

    def test_shift_matches_float_reference_closely(self, rng):
        for scale in (1e-4, 3e-3, 0.7, 12.0):
            mq = MulQuant(scale, fmt=FixedPointFormat(4, 12))
            assert float(mq.effective_scale[0]) == pytest.approx(scale, rel=2e-3)


class TestFixedPointFormatSweep:
    def test_format_width_vs_accuracy(self, fp_resnet, cifar_data):
        rows = []
        accs = {}
        for fmt in (FixedPointFormat(4, 12), FixedPointFormat(4, 8), FixedPointFormat(4, 4)):
            fq, ii = _deploy_acc(fp_resnet, cifar_data, wbit=8, fmt=fmt)
            accs[fmt.frac_bits] = ii
            rows.append([str(fmt), f"{fq:.4f}", f"{ii:.4f}"])
        print_table("Ablation: MulQuant fixed-point format (ResNet-20, 8/8)",
                    ["format", "FakeQuant", "Integer"], rows)
        # 12 fractional bits must match the paper-configuration accuracy;
        # very coarse formats may degrade
        assert accs[12] >= accs[4] - 0.01
