"""Observability + SDC-defense overhead budget: < 5% throughput, combined.

The live-observability layer (request-scoped tracing, sampled per-op
profiling, flight recorder, rolling SLO windows, periodic status export)
and the runtime SDC defenses (1-in-N sampled ABFT column-checksum
verification plus the background memory scrubber) are sold as cheap
enough to leave on in production paths.  This benchmark holds them to
that: the same closed-loop request stream is pushed through one gateway
with everything off and one with everything on, and the
answered-requests-per-second ratio must stay above 0.95.

Closed-loop (waves of submits, wait for all answers) rather than Poisson
open-loop: the offered rate then adapts to the machine, so the comparison
is self-normalizing and stable on a noisy CI box.  The two configurations
run in *interleaved* rounds (off, on, off, on, ...) with best-of taken per
side — sequential A-then-B runs confound the comparison with machine-load
drift that dwarfs the effect being measured.
"""
from __future__ import annotations

import time

import numpy as np
import pytest

from repro.core import DeploySpec, deploy
from repro.core.qconfig import QConfig
from repro.core.qmodels import quantize_model
from repro.core.t2c import calibrate_model
from repro.models import build_model
from repro.server import ModelRegistry, Server
from repro.utils import seed_everything

pytestmark = pytest.mark.obs

WAVE = 32           #: requests per closed-loop wave
WAVES = 8           #: waves per timed run
ROUNDS = 5          #: interleaved (off, on) rounds; best-of per side
MAX_OVERHEAD = 0.05  #: the acceptance budget


def _deployed():
    seed_everything(0)
    rng = np.random.default_rng(0)
    qm = quantize_model(build_model("resnet20", num_classes=10, width=8),
                        QConfig(8, 8))
    calibrate_model(qm, [rng.standard_normal((4, 3, 32, 32)).astype(np.float32)
                         for _ in range(2)])
    d = deploy(qm, DeploySpec(runtime="auto"))
    samples = [rng.standard_normal((3, 32, 32)).astype(np.float32)
               for _ in range(8)]
    return d, samples


def _throughput(server: Server, model: str, samples) -> float:
    """Answered requests/sec over a closed-loop run (best throughput is
    what matters; the first wave warms bindings and pools)."""
    # warm-up wave (binding, pool spawn, code paths) — untimed
    for p in [server.submit(model, samples[i % len(samples)])
              for i in range(WAVE)]:
        assert p.result(timeout=120).ok
    n = 0
    t0 = time.perf_counter()
    for _ in range(WAVES):
        pendings = [server.submit(model, samples[i % len(samples)])
                    for i in range(WAVE)]
        for p in pendings:
            assert p.result(timeout=120).ok
            n += 1
    return n / (time.perf_counter() - t0)


def _run_once(deployed, samples, tmp_path, obs: bool, tag: str) -> float:
    reg = ModelRegistry()
    reg.register("resnet20", "1", deployed)
    cfg = dict(max_batch=16, workers=0, default_deadline_s=60.0,
               max_linger_s=0.002, tracing=False)
    if obs:
        cfg.update(tracing=True, profile_every=4,
                   dump_dir=str(tmp_path / "dumps"),
                   # runtime SDC defense rides the same budget: sampled
                   # ABFT checks inline, CRC scrubber in the background
                   abft_every=4, scrub_interval_s=0.25)
    with Server(reg, **cfg) as srv:
        if obs:
            srv.start_status_export(str(tmp_path / f"obs_{tag}"),
                                    interval_s=0.25)
        return _throughput(srv, "resnet20", samples)


def test_full_observability_stack_under_five_percent(tmp_path):
    deployed, samples = _deployed()
    off = on = 0.0
    for r in range(ROUNDS):
        off = max(off, _run_once(deployed, samples, tmp_path, False, f"b{r}"))
        on = max(on, _run_once(deployed, samples, tmp_path, True, f"o{r}"))
    overhead = 1.0 - on / off
    print(f"\nobservability off {off:8.1f} req/s")
    print(f"observability on  {on:8.1f} req/s   overhead {overhead:+.2%} "
          f"(budget {MAX_OVERHEAD:.0%})")
    assert on > 0 and off > 0
    assert overhead < MAX_OVERHEAD, (
        f"full observability stack costs {overhead:.1%} throughput "
        f"(> {MAX_OVERHEAD:.0%} budget)")
