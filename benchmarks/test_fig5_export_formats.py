"""Fig. 5: versatile parameter extraction with multiple output formats.

Validates the extraction fan-out of Fig. 5 end-to-end: a deployed model is
exported as decimal / hexadecimal / binary text (RTL `$readmem*` style) and
as the packed qint container, every format round-trips bit-exactly, and the
qint payload achieves the expected compression over fp32.
"""
import json
import os

import numpy as np
import pytest

from benchmarks.conftest import get_or_train, print_table
from repro.core import T2C
from repro.core.qconfig import QConfig
from repro.core.qmodels import quantize_model
from repro.core.t2c import calibrate_model
from repro.export.formats import load_tensor
from repro.export.qint import load_qint
from repro.export.writer import export_model
from repro.models import build_model
from repro.trainer import Trainer, evaluate
from repro.utils import seed_everything


@pytest.fixture(scope="module")
def deployed(cifar_data):
    train, test = cifar_data

    def builder():
        seed_everything(90)
        return build_model("resnet20", num_classes=10, width=8)

    def factory():
        m = builder()
        Trainer(m, train, test, epochs=6, batch_size=64, lr=0.1).fit()
        return m

    model = get_or_train("fig3_resnet20_fp", factory, builder)  # shared cache
    qm = quantize_model(model, QConfig(4, 4))
    calibrate_model(qm, [train.images[i * 64:(i + 1) * 64] for i in range(8)])
    qnn = T2C(qm).nn2chip()
    return qnn


@pytest.fixture(scope="module")
def exported(deployed, tmp_path_factory):
    out = str(tmp_path_factory.mktemp("fig5"))
    manifest = export_model(deployed, out, formats=("dec", "hex", "bin", "qint"))
    return out, manifest


class TestFig5Claims:
    def test_all_formats_roundtrip_bit_exact(self, deployed, exported):
        out, manifest = exported
        state = deployed.state_dict()
        checked = 0
        for name, entry in manifest["tensors"].items():
            if not entry["integer"]:
                continue
            ref = state[name]
            for fmt in ("dec", "hex", "bin"):
                arr = load_tensor(os.path.join(out, entry["files"][fmt]),
                                  fmt, entry["bits"], shape=entry["shape"])
                np.testing.assert_array_equal(arr, ref, err_msg=f"{name}:{fmt}")
            qarr, _ = load_qint(os.path.join(out, entry["files"]["qint"][:-4]))
            np.testing.assert_array_equal(qarr, ref, err_msg=f"{name}:qint")
            checked += 1
        assert checked > 20  # the whole model, not a token tensor

    def test_qint_compression_ratio(self, deployed, exported):
        out, manifest = exported
        fp_bytes = 0
        qint_bytes = 0
        rows = []
        for name, entry in manifest["tensors"].items():
            if not entry["integer"] or "weight" not in name:
                continue
            n = int(np.prod(entry["shape"]))
            fp_bytes += n * 4
            qint_bytes += os.path.getsize(os.path.join(out, entry["files"]["qint"]))
        ratio = fp_bytes / qint_bytes
        rows.append(["weights", f"{fp_bytes/1e3:.1f} kB", f"{qint_bytes/1e3:.1f} kB", f"{ratio:.2f}x"])
        print_table("Fig 5: export formats / compression", ["tensors", "fp32", "qint", "ratio"], rows)
        # 4-bit weights stored in int8 containers: exactly 4x over fp32
        assert ratio == pytest.approx(4.0, rel=0.01)

    def test_hex_words_are_fixed_width(self, exported):
        out, manifest = exported
        name, entry = next((n, e) for n, e in manifest["tensors"].items()
                           if e["integer"] and "weight" in n)
        with open(os.path.join(out, entry["files"]["hex"])) as f:
            widths = {len(line.strip()) for line in f if line.strip()}
        assert len(widths) == 1  # $readmemh requires uniform words

    def test_manifest_complete(self, deployed, exported):
        _, manifest = exported
        state_names = set(deployed.state_dict())
        assert state_names == set(manifest["tensors"])


def test_export_throughput(benchmark, deployed, tmp_path):
    """pytest-benchmark target: full model export in hex."""
    count = [0]

    def run():
        d = str(tmp_path / f"run{count[0]}")
        count[0] += 1
        export_model(deployed, d, formats=("hex",))

    benchmark(run)
