"""Plan-verification overhead budget: the full static proof must be cheap
enough to run on every deploy, registry admission and server swap.

The gate re-proves dataflow liveness, aliasing, interval overflow safety and
shift-exactness over the compiled resnet20 plan.  The acceptance bar is one
full verification (cache-bypassing) in under a second — orders of magnitude
below a single model build, so ``verify_plan=True`` can stay the default.
Results land in ``benchmarks/BENCH_lint.json``.
"""
from __future__ import annotations

import json
import os
import time

import numpy as np

from repro.core import DeploySpec, deploy
from repro.core.qconfig import QConfig
from repro.core.qmodels import quantize_model
from repro.core.t2c import calibrate_model
from repro.models import build_model
from repro.utils import seed_everything

OUT_PATH = os.path.join(os.path.dirname(__file__), "BENCH_lint.json")

ROUNDS = 5          #: timed full verifications; best-of is recorded
BUDGET_S = 1.0      #: the acceptance bar per full verification


def _deployed():
    seed_everything(0)
    rng = np.random.default_rng(0)
    qm = quantize_model(build_model("resnet20", num_classes=10),
                        QConfig(8, 8))
    calibrate_model(qm, [rng.standard_normal((4, 3, 32, 32)).astype(np.float32)
                         for _ in range(2)])
    return deploy(qm, DeploySpec(runtime="auto"))


def test_full_plan_verification_under_one_second():
    d = _deployed()
    plan = d.plan
    module_bits = d.lint_report.min_accum_bits() if d.lint_report else None

    best = float("inf")
    for _ in range(ROUNDS):
        t0 = time.perf_counter()
        report = plan.verify(input_shape=(3, 32, 32),
                             module_bits=module_bits, refresh=True)
        best = min(best, time.perf_counter() - t0)
        assert report.ok

    t0 = time.perf_counter()
    cached = plan.verify()
    cached_s = time.perf_counter() - t0
    assert cached.ok

    row = {
        "model": "resnet20",
        "ops": report.num_ops,
        "registers": report.num_regs,
        "accumulator_rows": len(report.rows),
        "shift_certificates": len(report.shift_certificates),
        "full_verify_s": round(best, 6),
        "cached_verify_s": round(cached_s, 6),
        "budget_s": BUDGET_S,
    }
    with open(OUT_PATH, "w") as f:
        json.dump(row, f, indent=2, sort_keys=True)
        f.write("\n")

    print(f"\nfull plan verification: {best * 1e3:8.2f} ms "
          f"({report.num_ops} ops, {len(report.rows)} accumulator rows)")
    print(f"cached re-check:        {cached_s * 1e6:8.1f} us")
    assert best < BUDGET_S, (
        f"full plan verification took {best:.3f}s (> {BUDGET_S}s budget); "
        f"the deploy/registry/swap gates cannot afford it")
