"""Benchmark harness plumbing.

Each ``test_table*`` / ``test_fig*`` module regenerates one table or figure
of the paper on the synthetic substrate, prints the rows, and asserts the
paper's qualitative claims (who wins, direction of deltas).  Expensive
training runs are cached as state dicts under ``benchmarks/.cache`` keyed by
a config string, so re-running the suite is cheap.

Scale note: models/datasets are CPU-sized (see DESIGN.md); the *relative*
numbers are the reproduction target, not ImageNet absolutes.
"""
from __future__ import annotations

import os
from typing import Callable, Dict

import numpy as np
import pytest

from repro.data import make_dataset
from repro.data.transforms import standard_train_transform
from repro.models import build_model
from repro.nn.module import Module
from repro.utils import seed_everything

CACHE_DIR = os.path.join(os.path.dirname(__file__), ".cache")


def pytest_collection_modifyitems(items):
    """Mark everything under benchmarks/ so tier-1 filters (`-m "not
    benchmark"`) exclude these runs even when the path is collected."""
    for item in items:
        item.add_marker(pytest.mark.benchmark)

#: benchmark-wide workload scale (kept CPU-friendly)
TRAIN_N = 2000
TEST_N = 500
NOISE = 0.5
EPOCHS = 6


def cache_path(key: str) -> str:
    os.makedirs(CACHE_DIR, exist_ok=True)
    return os.path.join(CACHE_DIR, key + ".npz")


def get_or_train(key: str, factory: Callable[[], Module], builder: Callable[[], Module]) -> Module:
    """Return ``builder()`` with cached weights, training via ``factory`` on miss.

    ``factory`` must build AND train a model, returning it; ``builder`` must
    build an architecture-identical untrained model (for cache loads).
    """
    path = cache_path(key)
    if os.path.exists(path):
        model = builder()
        data = np.load(path)
        # non-strict: tolerates buffers added to the code after a cache was
        # written (e.g. quantizer init flags)
        model.load_state_dict({k: data[k] for k in data.files}, strict=False)
        model.eval()
        return model
    model = factory()
    model.eval()
    np.savez(path, **model.state_dict())
    return model


@pytest.fixture
def rng():
    return np.random.default_rng(0)


@pytest.fixture(scope="session")
def cifar_data():
    seed_everything(0)
    ds = make_dataset("synthetic-cifar10", noise=NOISE)
    return ds.splits(TRAIN_N, TEST_N, transform=standard_train_transform())


@pytest.fixture(scope="session")
def imagenet_data():
    seed_everything(0)
    ds = make_dataset("synthetic-imagenet", noise=NOISE)
    return ds.splits(TRAIN_N, TEST_N, transform=standard_train_transform())


def apply_first_last_8bit(qm) -> None:
    """QDrop/BRECQ W4A4 evaluation protocol: the stem conv and the classifier
    stay at 8 bits (Wei et al., 2022 §4.1)."""
    from repro.core.quantizers import AdaRoundQuantizer, MinMaxQuantizer

    qm.input_q = MinMaxQuantizer(nbit=8, unsigned=False)
    qm.stem.conv.aq = qm.input_q
    qm.stem.conv.wq = AdaRoundQuantizer(nbit=8)
    qm.fc.linear.wq = AdaRoundQuantizer(nbit=8)
    qm.fc.linear.aq = MinMaxQuantizer(nbit=8, unsigned=True)


def print_table(title: str, header: list, rows: list) -> None:
    widths = [max(len(str(h)), max((len(str(r[i])) for r in rows), default=0)) for i, h in enumerate(header)]
    print(f"\n=== {title} ===")
    print("  ".join(str(h).ljust(w) for h, w in zip(header, widths)))
    for r in rows:
        print("  ".join(str(c).ljust(w) for c, w in zip(r, widths)))
