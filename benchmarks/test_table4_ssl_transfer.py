"""Table 4: compressed transfer learning from SSL pre-training.

Paper rows (MobileNet-V1 1x, 8/8 PTQ after fine-tuning):
  supervised-from-scratch: CIFAR-10 89.74, CIFAR-100 65.98, Aircraft 60.09,
                           Flowers 72.23, Food-101 56.41
  XD SSL pre-trained:      CIFAR-10 94.37, CIFAR-100 74.29, Aircraft 68.44,
                           Flowers 86.42, Food-101 70.21

Reproduced claim: XD self-supervised pre-training on the (synthetic)
ImageNet stand-in beats supervised-from-scratch transfer on the majority of
downstream tasks after identical fine-tuning + 8/8 PTQ compression, and on
average by a clear margin.
"""
import numpy as np
import pytest

from benchmarks.conftest import get_or_train, print_table
from repro.core import T2C
from repro.core.qconfig import QConfig
from repro.data import SyntheticTaskSuite
from repro.data.transforms import standard_train_transform
from repro.models import build_model
from repro.trainer import PTQTrainer, SSLTrainer, Trainer, evaluate
from repro.utils import seed_everything

SSL_EPOCHS = 4
#: deliberately small downstream budget — the regime where pre-training pays
FT_EPOCHS = 4
FT_TRAIN = 400
FT_TEST = 400


def _student_builder():
    seed_everything(70)
    return build_model("mobilenet-v1", num_classes=10, width_mult=1.0)


@pytest.fixture(scope="module")
def ssl_encoder():
    suite = SyntheticTaskSuite()
    pre_train, _ = suite.pretrain(noise=0.5).splits(2400, 100)

    def factory():
        student = _student_builder()
        seed_everything(71)
        teacher = build_model("resnet20", num_classes=10, width=16)
        SSLTrainer(student, pre_train, student_dim=student.out_channels,
                   teacher=teacher, teacher_dim=64, embed_dim=64,
                   epochs=SSL_EPOCHS, batch_size=64, lr=3e-3).fit()
        return student

    return get_or_train("table4_ssl_mobilenet", factory, _student_builder)


def _finetune_and_compress(init_state, train, test, seed, num_classes):
    seed_everything(seed)
    model = build_model("mobilenet-v1", num_classes=num_classes, width_mult=1.0)
    if init_state is not None:
        merged = model.state_dict()
        merged.update({k: v for k, v in init_state.items() if not k.startswith("fc.")})
        model.load_state_dict(merged)
    Trainer(model, train, test, epochs=FT_EPOCHS, batch_size=64, lr=0.05).fit()
    qm = PTQTrainer(model, train, qcfg=QConfig(8, 8), calib_batches=8, batch_size=64).fit()
    T2C(qm).fuse()
    return evaluate(qm, test)


@pytest.fixture(scope="module")
def pretrained_encoder():
    """Supervised pre-training on the pre-train corpus: the *stand-in* for
    the SSL foundation model.

    Correlation-based contrastive pre-training needs tens of thousands of
    large-batch steps (the paper pre-trains on ImageNet-1K with a full
    schedule); the CPU budget allows a few hundred, after which the XD
    encoder carries ~no signal (EXPERIMENTS.md).  A supervised encoder on
    the same corpus IS learnable at this scale, so it stands in to verify
    the table's transfer claim — "a pre-trained foundation beats
    from-scratch after identical fine-tuning + 8/8 compression" — while the
    SSL rows are reported for the record.
    """
    suite = SyntheticTaskSuite()
    pre_train, pre_test = suite.pretrain(noise=0.5).splits(2400, 400)

    def builder():
        seed_everything(72)
        return build_model("mobilenet-v1", num_classes=20, width_mult=1.0)

    def factory():
        m = builder()
        Trainer(m, pre_train, pre_test, epochs=6, batch_size=64, lr=0.2).fit()
        return m

    return get_or_train("table4_pretrained_sup", factory, builder)


@pytest.fixture(scope="module")
def table4(ssl_encoder, pretrained_encoder):
    suite = SyntheticTaskSuite()
    ssl_state = {k: v for k, v in ssl_encoder.state_dict().items()
                 if not k.startswith("fc.")}
    pre_state = {k: v for k, v in pretrained_encoder.state_dict().items()
                 if not k.startswith("fc.")}
    results = {}
    rows = []
    for task_name in suite.DOWNSTREAM:
        task = suite.downstream(task_name, noise=0.5)
        # CIFAR-100 analogue: cap classes so the head stays small
        if task.num_classes > 20:
            task = suite.downstream(task_name, noise=0.5, num_classes=20)
        train, test = task.splits(FT_TRAIN, FT_TEST, transform=standard_train_transform())
        n_cls = task.num_classes
        sup = _finetune_and_compress(None, train, test, seed=80, num_classes=n_cls)
        ssl = _finetune_and_compress(ssl_state, train, test, seed=80, num_classes=n_cls)
        pre = _finetune_and_compress(pre_state, train, test, seed=80, num_classes=n_cls)
        results[task_name] = dict(supervised=sup, ssl=ssl, pretrained=pre)
        rows.append([task_name, f"{sup:.4f}", f"{pre:.4f}", f"{ssl:.4f}",
                     f"{pre - sup:+.4f}"])
    avg = {k: float(np.mean([r[k] for r in results.values()]))
           for k in ("supervised", "ssl", "pretrained")}
    rows.append(["AVERAGE", f"{avg['supervised']:.4f}", f"{avg['pretrained']:.4f}",
                 f"{avg['ssl']:.4f}", f"{avg['pretrained'] - avg['supervised']:+.4f}"])
    print_table("Table 4: transfer fine-tuning of MobileNet-V1 + PTQ 8/8 (integer-only)",
                ["Task", "From scratch", "Pretrained(sup stand-in)", "XD-SSL(budgeted)",
                 "Pretrain gain"], rows)
    results["__avg__"] = avg
    return results


class TestTable4Claims:
    def test_pretrained_foundation_wins_on_average(self, table4):
        """The table's transfer claim, via the learnable stand-in encoder."""
        avg = table4["__avg__"]
        assert avg["pretrained"] > avg["supervised"], avg

    def test_pretrained_wins_majority_of_tasks(self, table4):
        wins = sum(1 for k, r in table4.items()
                   if not k.startswith("__") and r["pretrained"] >= r["supervised"])
        total = sum(1 for k in table4 if not k.startswith("__"))
        assert wins >= (total + 1) // 2

    @pytest.mark.xfail(reason="XD contrastive pre-training needs ImageNet-scale "
                              "step counts; at the CPU budget the SSL encoder "
                              "carries no signal (see EXPERIMENTS.md)",
                       strict=False)
    def test_ssl_wins_on_average(self, table4):
        avg = table4["__avg__"]
        assert avg["ssl"] > avg["supervised"]

    def test_pipeline_end_to_end(self, table4):
        for k, r in table4.items():
            if k.startswith("__"):
                continue
            assert 0.0 <= r["ssl"] <= 1.0 and 0.0 <= r["pretrained"] <= 1.0


def test_ssl_step_throughput(benchmark):
    """pytest-benchmark target: one XD optimization step."""
    from repro.ssl import XDModel
    from repro.optim import AdamW
    from repro.tensor import Tensor

    seed_everything(0)
    suite = SyntheticTaskSuite()
    pre_train, _ = suite.pretrain(noise=0.5).splits(128, 16)
    student = build_model("mobilenet-v1", num_classes=10, width_mult=1.0)
    teacher = build_model("resnet20", num_classes=10, width=16)
    pair = XDModel(student, teacher, student.out_channels, 64, embed_dim=64)
    opt = AdamW(pair.parameters(), lr=3e-3)
    x = Tensor(pre_train.images[:64])

    def step():
        opt.zero_grad()
        pair.loss(x, x).backward()
        opt.step()

    benchmark(step)
