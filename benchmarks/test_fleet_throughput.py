"""Fleet serving: replication must buy real throughput and lose nothing.

The acceptance bar from the fleet design brief, all through the same
``repro.cli fleet-bench`` path a user would run:

* **drill** — a 3-replica fleet serves a real deployed model bit-exactly,
  walks a canary 10% -> 100% -> promote (still bit-exact), and survives a
  seeded replica kill with zero lost requests;
* **capacity** — a fleet of 2 must reach >= 1.5x the single-server
  saturated throughput, and must keep up (nothing shed, nothing failed)
  at 80% of its combined headroom.

Both capacity legs are measured *saturated* so the achieved rate reflects
service capability rather than one Poisson trace's realized span.  Results
land in ``benchmarks/BENCH_fleet.json`` with a cross-PR trajectory row,
exactly what the CLI reports.
"""
from __future__ import annotations

import json
import os

from repro import cli

OUT_PATH = os.path.join(os.path.dirname(__file__), "BENCH_fleet.json")

REPLICAS = 3
REQUESTS = 120
CANARY_REQUESTS = 60
CAPACITY_REQUESTS = 250
SPEEDUP_FLOOR = 1.5


def test_fleet_throughput():
    rc = cli.main([
        "fleet-bench", "--model", "resnet20",
        "--replicas", str(REPLICAS),
        "--requests", str(REQUESTS),
        "--canary-requests", str(CANARY_REQUESTS),
        "--capacity-requests", str(CAPACITY_REQUESTS),
        "--speedup-floor", str(SPEEDUP_FLOOR),
        "--out", OUT_PATH,
    ])
    assert rc == 0, "fleet-bench reported drill or capacity failures"

    with open(OUT_PATH) as fh:
        result = json.load(fh)
    drill = result["drill"]
    cap = result["capacity"]

    print(f"\ndrill: {REPLICAS} replicas, bit-exact {result['bit_exact']}, "
          f"lost {result['requests_lost']}, chaos ok {result['chaos_ok']}")
    print(f"capacity: single {result['capacity_single_hz']} req/s  "
          f"fleet-of-2 {result['capacity_fleet2_hz']} req/s  "
          f"speedup {result['speedup_fleet2_vs_single']}x  "
          f"keep-up at {cap['keepup_offered_rate_hz']} req/s: "
          f"{cap['keepup']['achieved_rate_hz']} achieved")

    # drill: correctness under replication, rollout and chaos
    assert result["bit_exact"] is True, (
        "fleet answers diverged from single-sample tree execution")
    assert result["requests_lost"] == 0, (
        f"{result['requests_lost']} requests lost across the drill")
    assert result["chaos_ok"] is True, "replica-kill fault was missed"
    assert result["promoted_version"] == ["2"], (
        f"canary promote left replicas on {result['promoted_version']}")
    for leg in ("base", "canary_10pct", "post_promote"):
        assert drill[leg]["failed"] == 0, f"{leg}: outright failures"

    # capacity: replication must pay for itself
    assert result["speedup_fleet2_vs_single"] >= SPEEDUP_FLOOR, (
        f"fleet-of-2 speedup {result['speedup_fleet2_vs_single']}x "
        f"below the {SPEEDUP_FLOOR}x floor")
    assert result["keepup_ok"] is True, (
        f"fleet shed {cap['keepup']['shed']} / failed "
        f"{cap['keepup']['failed']} at 80% of combined headroom")

    # the trajectory keeps one row per bench run across PRs
    assert result["trajectory"], "trajectory must carry at least this run"
    assert result["trajectory"][-1]["speedup_fleet2_vs_single"] == \
        result["speedup_fleet2_vs_single"]
